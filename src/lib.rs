//! Workspace umbrella crate: hosts the cross-crate integration tests under
//! `tests/` and the runnable examples under `examples/`. The actual library
//! code lives in the `crates/` members.
