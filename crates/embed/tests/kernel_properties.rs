//! Property tests: every cached distance path (store kernel, condensed
//! pairwise matrix, normalized view) agrees with the naive
//! `Distance::between` path within 1e-6 for all three metrics, across
//! arbitrary dimensions (including dimension 1) and degenerate inputs
//! (including zero vectors).

use dust_embed::{Distance, EmbeddingStore, PairwiseMatrix, Vector};
use proptest::prelude::*;

const METRICS: [Distance; 3] = [Distance::Cosine, Distance::Euclidean, Distance::Manhattan];

/// Pad/truncate generated rows to a shared dimension and append a zero
/// vector so the cosine zero-norm convention is always exercised.
fn points_of_dim(dim: usize, rows: Vec<Vec<f32>>) -> Vec<Vector> {
    let mut pts: Vec<Vector> = rows
        .into_iter()
        .map(|mut row| {
            row.truncate(dim);
            while row.len() < dim {
                row.push(0.0);
            }
            Vector::new(row)
        })
        .collect();
    // Always include an all-zero vector: the cosine kernel's zero-norm
    // convention must match the naive path exactly.
    pts.push(Vector::zeros(dim));
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Store-kernel distances match the naive path within 1e-6 (the kernel
    /// differs only in floating-point summation order).
    #[test]
    fn store_distances_match_naive(
        dim in 1usize..8,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 8), 1..24),
    ) {
        let pts = points_of_dim(dim, rows);
        let store = EmbeddingStore::from_vectors(&pts);
        for metric in METRICS {
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    let naive = metric.between(&pts[i], &pts[j]);
                    let cached = store.distance(metric, i, j);
                    prop_assert!(
                        (naive - cached).abs() <= 1e-6,
                        "{metric:?} ({i},{j}): naive {naive} vs cached {cached}"
                    );
                }
            }
        }
    }

    /// Pairwise-matrix entries (the single pairwise implementation, built
    /// in parallel for large inputs) match the naive path within 1e-6,
    /// scaled by magnitude for the `f32`-stored entries.
    #[test]
    fn pairwise_matrix_matches_naive(
        dim in 1usize..6,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 2..32),
    ) {
        let pts = points_of_dim(dim, rows);
        for metric in METRICS {
            let matrix = PairwiseMatrix::compute(&pts, metric);
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let naive = metric.between(&pts[i], &pts[j]);
                    let tolerance = 1e-6 * naive.abs().max(1.0);
                    prop_assert!(
                        (naive - matrix.get(i, j)).abs() <= tolerance,
                        "{metric:?} ({i},{j}): naive {naive} vs matrix {}",
                        matrix.get(i, j)
                    );
                    prop_assert!((matrix.get(i, j) - matrix.get(j, i)).abs() == 0.0);
                }
            }
        }
    }

    /// The pre-normalized view's `1 − dot` cosine distance stays within
    /// 1e-6 of the naive cosine path (unit rounding is its only error).
    #[test]
    fn normalized_view_cosine_matches_naive(
        dim in 1usize..8,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 8), 1..24),
    ) {
        let pts = points_of_dim(dim, rows);
        let view = EmbeddingStore::from_vectors(&pts).normalized_view();
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i == j {
                    continue;
                }
                let naive = Distance::Cosine.between(&pts[i], &pts[j]);
                let fast = view.cosine_distance(i, j);
                prop_assert!(
                    (naive - fast).abs() <= 1e-6,
                    "({i},{j}): naive {naive} vs normalized {fast}"
                );
            }
        }
    }

    /// Dimension-1 vectors, including zeros and negatives, agree on every
    /// path (regression guard for the degenerate shapes).
    #[test]
    fn dimension_one_agrees_everywhere(
        values in prop::collection::vec(-100.0f32..100.0, 2..16),
    ) {
        let mut pts: Vec<Vector> = values.into_iter().map(|v| Vector::new(vec![v])).collect();
        pts.push(Vector::zeros(1));
        let store = EmbeddingStore::from_vectors(&pts);
        for metric in METRICS {
            let matrix = PairwiseMatrix::from_store(&store, metric);
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let naive = metric.between(&pts[i], &pts[j]);
                    let tolerance = 1e-6 * naive.abs().max(1.0);
                    prop_assert!((store.distance(metric, i, j) - naive).abs() <= 1e-6);
                    prop_assert!((matrix.get(i, j) - naive).abs() <= tolerance);
                }
            }
        }
    }
}

/// The zero-vector cosine convention is identical across all paths: the
/// naive path, the store kernel, and the normalized view all report
/// similarity 0 (distance 1) against a zero vector.
#[test]
fn zero_vector_convention_is_shared() {
    let pts = vec![Vector::zeros(3), Vector::new(vec![1.0, 2.0, -1.0])];
    let store = EmbeddingStore::from_vectors(&pts);
    let view = store.normalized_view();
    let naive = Distance::Cosine.between(&pts[0], &pts[1]);
    assert_eq!(naive, 1.0);
    assert_eq!(store.distance(Distance::Cosine, 0, 1), 1.0);
    assert_eq!(view.cosine_distance(0, 1), 1.0);
}
