//! Property tests: every cached distance path (store kernel, condensed
//! pairwise matrix, normalized view) agrees with the naive
//! `Distance::between` path within 1e-6 for all three metrics, across
//! arbitrary dimensions (including dimension 1) and degenerate inputs
//! (including zero vectors).

use dust_embed::{Distance, EmbeddingStore, PairwiseMatrix, Vector};
use proptest::prelude::*;

const METRICS: [Distance; 3] = [Distance::Cosine, Distance::Euclidean, Distance::Manhattan];

/// Pad/truncate generated rows to a shared dimension and append a zero
/// vector so the cosine zero-norm convention is always exercised.
fn points_of_dim(dim: usize, rows: Vec<Vec<f32>>) -> Vec<Vector> {
    let mut pts: Vec<Vector> = rows
        .into_iter()
        .map(|mut row| {
            row.truncate(dim);
            while row.len() < dim {
                row.push(0.0);
            }
            Vector::new(row)
        })
        .collect();
    // Always include an all-zero vector: the cosine kernel's zero-norm
    // convention must match the naive path exactly.
    pts.push(Vector::zeros(dim));
    pts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Store-kernel distances match the naive path within 1e-6 (the kernel
    /// differs only in floating-point summation order).
    #[test]
    fn store_distances_match_naive(
        dim in 1usize..8,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 8), 1..24),
    ) {
        let pts = points_of_dim(dim, rows);
        let store = EmbeddingStore::from_vectors(&pts);
        for metric in METRICS {
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    let naive = metric.between(&pts[i], &pts[j]);
                    let cached = store.distance(metric, i, j);
                    prop_assert!(
                        (naive - cached).abs() <= 1e-6,
                        "{metric:?} ({i},{j}): naive {naive} vs cached {cached}"
                    );
                }
            }
        }
    }

    /// Pairwise-matrix entries (the single pairwise implementation, built
    /// in parallel for large inputs) match the naive path within 1e-6,
    /// scaled by magnitude for the `f32`-stored entries.
    #[test]
    fn pairwise_matrix_matches_naive(
        dim in 1usize..6,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 2..32),
    ) {
        let pts = points_of_dim(dim, rows);
        for metric in METRICS {
            let matrix = PairwiseMatrix::compute(&pts, metric);
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let naive = metric.between(&pts[i], &pts[j]);
                    let tolerance = 1e-6 * naive.abs().max(1.0);
                    prop_assert!(
                        (naive - matrix.get(i, j)).abs() <= tolerance,
                        "{metric:?} ({i},{j}): naive {naive} vs matrix {}",
                        matrix.get(i, j)
                    );
                    prop_assert!((matrix.get(i, j) - matrix.get(j, i)).abs() == 0.0);
                }
            }
        }
    }

    /// The pre-normalized view's `1 − dot` cosine distance stays within
    /// 1e-6 of the naive cosine path (unit rounding is its only error).
    #[test]
    fn normalized_view_cosine_matches_naive(
        dim in 1usize..8,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 8), 1..24),
    ) {
        let pts = points_of_dim(dim, rows);
        let view = EmbeddingStore::from_vectors(&pts).normalized_view();
        for i in 0..pts.len() {
            for j in 0..pts.len() {
                if i == j {
                    continue;
                }
                let naive = Distance::Cosine.between(&pts[i], &pts[j]);
                let fast = view.cosine_distance(i, j);
                prop_assert!(
                    (naive - fast).abs() <= 1e-6,
                    "({i},{j}): naive {naive} vs normalized {fast}"
                );
            }
        }
    }

    /// Dimension-1 vectors, including zeros and negatives, agree on every
    /// path (regression guard for the degenerate shapes).
    #[test]
    fn dimension_one_agrees_everywhere(
        values in prop::collection::vec(-100.0f32..100.0, 2..16),
    ) {
        let mut pts: Vec<Vector> = values.into_iter().map(|v| Vector::new(vec![v])).collect();
        pts.push(Vector::zeros(1));
        let store = EmbeddingStore::from_vectors(&pts);
        for metric in METRICS {
            let matrix = PairwiseMatrix::from_store(&store, metric);
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    let naive = metric.between(&pts[i], &pts[j]);
                    let tolerance = 1e-6 * naive.abs().max(1.0);
                    prop_assert!((store.distance(metric, i, j) - naive).abs() <= 1e-6);
                    prop_assert!((matrix.get(i, j) - naive).abs() <= tolerance);
                }
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Tombstoning an arbitrary subset of rows and compacting leaves every
    /// surviving pairwise distance bit-identical to the original store, on
    /// all three metrics (rows/norms move verbatim — no recomputation).
    #[test]
    fn compaction_preserves_distances_bit_for_bit(
        dim in 1usize..8,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 8), 2..24),
        removal_seed in prop::collection::vec(0u8..4, 2..25),
    ) {
        let pts = points_of_dim(dim, rows);
        let reference = EmbeddingStore::from_vectors(&pts);
        let mut store = reference.clone();
        // remove roughly a quarter of the rows, pattern driven by the seed
        let removed: Vec<usize> = (0..pts.len())
            .filter(|&i| removal_seed[i % removal_seed.len()] == 0)
            .collect();
        for &i in &removed {
            store.remove_row(i);
        }
        prop_assert_eq!(store.num_live(), pts.len() - removed.len());
        // distances among live rows are untouched by tombstoning alone
        let live: Vec<usize> = store.live_indices().collect();
        for metric in METRICS {
            for &i in &live {
                for &j in &live {
                    prop_assert!(
                        store.distance(metric, i, j).to_bits()
                            == reference.distance(metric, i, j).to_bits()
                    );
                }
            }
        }
        // ... and survive physical compaction bit-for-bit
        let remap = store.compact();
        prop_assert_eq!(store.len(), live.len());
        for metric in METRICS {
            for &i in &live {
                for &j in &live {
                    let (ni, nj) = (remap[i].unwrap(), remap[j].unwrap());
                    prop_assert!(
                        store.distance(metric, ni, nj).to_bits()
                            == reference.distance(metric, i, j).to_bits(),
                        "{metric:?} ({i},{j})→({ni},{nj}) drifted across compaction"
                    );
                }
            }
        }
        for &i in &removed {
            prop_assert!(remap[i].is_none());
        }
    }

    /// Remove/re-add round trip: pushing vectors onto a store that was
    /// emptied by tombstone + compaction produces a store indistinguishable
    /// (distance-wise) from a fresh `from_vectors` build.
    #[test]
    fn remove_readd_round_trip_matches_fresh_build(
        dim in 1usize..6,
        rows in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 6), 2..16),
    ) {
        let pts = points_of_dim(dim, rows);
        let mut store = EmbeddingStore::from_vectors(&pts);
        for i in 0..pts.len() {
            store.remove_row(i);
        }
        store.compact();
        prop_assert!(store.is_empty());
        for p in &pts {
            store.push(p);
        }
        let fresh = EmbeddingStore::from_vectors(&pts);
        prop_assert_eq!(store.len(), fresh.len());
        prop_assert_eq!(store.dim(), fresh.dim());
        for metric in METRICS {
            for i in 0..pts.len() {
                for j in 0..pts.len() {
                    prop_assert!(
                        store.distance(metric, i, j).to_bits()
                            == fresh.distance(metric, i, j).to_bits()
                    );
                }
            }
        }
    }
}

/// The zero-vector cosine convention is identical across all paths: the
/// naive path, the store kernel, and the normalized view all report
/// similarity 0 (distance 1) against a zero vector.
#[test]
fn zero_vector_convention_is_shared() {
    let pts = vec![Vector::zeros(3), Vector::new(vec![1.0, 2.0, -1.0])];
    let store = EmbeddingStore::from_vectors(&pts);
    let view = store.normalized_view();
    let naive = Distance::Cosine.between(&pts[0], &pts[1]);
    assert_eq!(naive, 1.0);
    assert_eq!(store.distance(Distance::Cosine, 0, 1), 1.0);
    assert_eq!(view.cosine_distance(0, 1), 1.0);
}
