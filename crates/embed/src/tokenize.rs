//! Tokenization and TF-IDF utilities.
//!
//! The paper's column-level serializations concatenate cell values into one
//! "sentence" and select at most 512 representative tokens by TF-IDF
//! (following Starmie / DeepJoin). The tokenizer here is intentionally
//! simple: lower-cased word tokens plus optional character n-grams (used by
//! the FastText-like encoder).

use std::collections::HashMap;

/// Split text into lower-cased alphanumeric word tokens.
pub fn word_tokens(text: &str) -> Vec<String> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            tokens.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        tokens.push(current);
    }
    tokens
}

/// Character n-grams of a token, padded with `<` and `>` boundary markers
/// (the FastText convention).
pub fn char_ngrams(token: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let padded: Vec<char> = std::iter::once('<')
        .chain(token.chars())
        .chain(std::iter::once('>'))
        .collect();
    if padded.len() < n {
        return vec![padded.iter().collect()];
    }
    padded.windows(n).map(|w| w.iter().collect()).collect()
}

/// Term-frequency map of a token sequence.
pub fn term_frequencies(tokens: &[String]) -> HashMap<String, usize> {
    let mut tf = HashMap::new();
    for t in tokens {
        *tf.entry(t.clone()).or_insert(0) += 1;
    }
    tf
}

/// Corpus-level document frequencies, used to compute TF-IDF weights.
///
/// A "document" is whatever unit the caller chooses (a column, a tuple, a
/// table); the paper uses columns when selecting representative tokens.
///
/// Internally the counts are two-level: a shared baseline map behind an
/// `Arc` plus a small per-instance overlay of exact integer deltas (df `0`
/// = token dropped). Cloning the corpus shares the baseline by pointer and
/// copies only the overlay, so consecutive session snapshots share the bulk
/// of the vocabulary; when the overlay outgrows half the baseline it is
/// collapsed into a new baseline (amortized O(1) per mutation). The split
/// is invisible from outside: [`Self::idf`] stays a pure function of the
/// merged integer counts and [`Self::document_frequencies`] exports the
/// merged view, bit-identical to a corpus built fresh.
#[derive(Debug, Clone, Default)]
pub struct TfIdfCorpus {
    documents: usize,
    base: std::sync::Arc<HashMap<String, usize>>,
    overlay: HashMap<String, usize>,
}

impl TfIdfCorpus {
    /// Create an empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// The merged document frequency of one token (0 = not in the corpus).
    fn df(&self, token: &str) -> usize {
        match self.overlay.get(token) {
            Some(&df) => df,
            None => self.base.get(token).copied().unwrap_or(0),
        }
    }

    /// Fold the overlay into a fresh baseline once it stops being "small".
    /// The threshold doubles the baseline geometrically, so a long mutation
    /// stream pays amortized O(1) per touched token while clones taken
    /// between collapses share the entire baseline by pointer.
    fn maybe_collapse(&mut self) {
        if self.overlay.len() < 64 || self.overlay.len() <= self.base.len() / 2 {
            return;
        }
        self.collapse();
    }

    /// Fold the overlay into the baseline unconditionally, leaving the
    /// overlay empty. Bulk builders call this once after their add loop so
    /// that the *next* small mutation shares the entire baseline by
    /// pointer; observable state (exports, `idf`) is unchanged.
    pub fn collapse(&mut self) {
        if self.overlay.is_empty() {
            return;
        }
        let mut merged = (*self.base).clone();
        for (t, df) in self.overlay.drain() {
            if df == 0 {
                merged.remove(&t);
            } else {
                merged.insert(t, df);
            }
        }
        self.base = std::sync::Arc::new(merged);
    }

    /// The shared baseline handle, for sharing diagnostics: clones taken
    /// between overlay collapses are `Arc::ptr_eq` on it.
    pub fn base_shared(&self) -> &std::sync::Arc<HashMap<String, usize>> {
        &self.base
    }

    /// Add one document's tokens to the corpus statistics.
    pub fn add_document(&mut self, tokens: &[String]) {
        self.documents += 1;
        let mut seen = std::collections::HashSet::new();
        for t in tokens {
            if seen.insert(t) {
                self.overlay.insert(t.clone(), self.df(t) + 1);
            }
        }
        self.maybe_collapse();
    }

    /// Remove one previously-added document's tokens from the corpus
    /// statistics — the exact inverse of [`Self::add_document`].
    ///
    /// Document frequencies are integer counts, so the subtraction is
    /// *exact* (no floating-point drift is possible; this is what lets a
    /// mutated corpus stay bit-identical to one rebuilt from scratch —
    /// [`Self::idf`] is a pure function of the integer counts). Entries
    /// that reach zero are dropped so the corpus is structurally equal to
    /// a fresh build over the surviving documents. Panics if the tokens
    /// were never added — removal must mirror a prior add exactly.
    pub fn remove_document(&mut self, tokens: &[String]) {
        assert!(
            self.documents > 0,
            "remove_document on an empty corpus (document was never added)"
        );
        self.documents -= 1;
        let mut seen = std::collections::HashSet::new();
        for t in tokens {
            if !seen.insert(t) {
                continue;
            }
            let df = self.df(t);
            if df == 0 {
                panic!("removing token {t:?} that was never added");
            }
            if df == 1 && !self.base.contains_key(t.as_str()) {
                // Never in the baseline: dropping the overlay entry is the
                // same as a 0-tombstone, without growing the overlay.
                self.overlay.remove(t);
            } else {
                self.overlay.insert(t.clone(), df - 1);
            }
        }
        self.maybe_collapse();
    }

    /// Number of documents added.
    pub fn num_documents(&self) -> usize {
        self.documents
    }

    /// Export the corpus statistics as `(token, document-frequency)` pairs
    /// in sorted token order (deterministic — suitable for checksummed
    /// snapshots). Together with [`Self::num_documents`] this is the whole
    /// corpus state: [`Self::idf`] is a pure function of these integers.
    pub fn document_frequencies(&self) -> Vec<(String, usize)> {
        let mut entries: Vec<(String, usize)> = self
            .base
            .iter()
            .filter(|(t, _)| !self.overlay.contains_key(t.as_str()))
            .chain(self.overlay.iter().filter(|(_, &df)| df > 0))
            .map(|(t, &df)| (t.clone(), df))
            .collect();
        entries.sort_unstable();
        entries
    }

    /// Reassemble a corpus from exported statistics — the exact inverse of
    /// [`Self::document_frequencies`]. Integer counts round-trip exactly,
    /// so every `idf` of the restored corpus is bit-identical.
    pub fn from_document_frequencies(documents: usize, entries: Vec<(String, usize)>) -> Self {
        TfIdfCorpus {
            documents,
            base: std::sync::Arc::new(entries.into_iter().collect()),
            overlay: HashMap::new(),
        }
    }

    /// Smoothed inverse document frequency of a token.
    pub fn idf(&self, token: &str) -> f64 {
        let df = self.df(token);
        (((self.documents + 1) as f64) / ((df + 1) as f64)).ln() + 1.0
    }

    /// TF-IDF weights for a document's tokens.
    pub fn tf_idf(&self, tokens: &[String]) -> HashMap<String, f64> {
        let tf = term_frequencies(tokens);
        let len = tokens.len().max(1) as f64;
        tf.into_iter()
            .map(|(t, c)| {
                let idf = self.idf(&t);
                (t, (c as f64 / len) * idf)
            })
            .collect()
    }

    /// Select up to `limit` tokens with the highest TF-IDF weights,
    /// preserving the original token order (mirrors the 512-token budget of
    /// the column-level serializations).
    pub fn select_representative(&self, tokens: &[String], limit: usize) -> Vec<String> {
        if tokens.len() <= limit {
            return tokens.to_vec();
        }
        let weights = self.tf_idf(tokens);
        let mut scored: Vec<(usize, &String, f64)> = tokens
            .iter()
            .enumerate()
            .map(|(i, t)| (i, t, *weights.get(t).unwrap_or(&0.0)))
            .collect();
        // NaN-safe total order: an undefined weight must never displace a
        // real one (and `sort_by` is stable, so equal weights keep their
        // original token order).
        scored.sort_by(|a, b| crate::order::desc_nan_last(a.2, b.2));
        let mut keep: Vec<(usize, &String)> = scored
            .into_iter()
            .take(limit)
            .map(|(i, t, _)| (i, t))
            .collect();
        keep.sort_by_key(|(i, _)| *i);
        keep.into_iter().map(|(_, t)| t.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokens_lowercase_and_split_on_punctuation() {
        let toks = word_tokens("River Park, Brandon-MN (USA) 773");
        assert_eq!(toks, vec!["river", "park", "brandon", "mn", "usa", "773"]);
    }

    #[test]
    fn word_tokens_empty_input() {
        assert!(word_tokens("  ,,, ").is_empty());
    }

    #[test]
    fn char_ngrams_use_boundary_markers() {
        let grams = char_ngrams("park", 3);
        assert_eq!(grams.first().unwrap(), "<pa");
        assert_eq!(grams.last().unwrap(), "rk>");
        assert_eq!(grams.len(), 4);
    }

    #[test]
    fn char_ngrams_short_tokens() {
        let grams = char_ngrams("a", 5);
        assert_eq!(grams, vec!["<a>".to_string()]);
        assert!(char_ngrams("abc", 0).is_empty());
    }

    #[test]
    fn term_frequencies_count_repeats() {
        let toks: Vec<String> = ["a", "b", "a"].iter().map(|s| s.to_string()).collect();
        let tf = term_frequencies(&toks);
        assert_eq!(tf["a"], 2);
        assert_eq!(tf["b"], 1);
    }

    #[test]
    fn idf_rewards_rare_tokens() {
        let mut corpus = TfIdfCorpus::new();
        let common: Vec<String> = vec!["usa".into()];
        let rare: Vec<String> = vec!["chippewa".into()];
        for _ in 0..10 {
            corpus.add_document(&common);
        }
        corpus.add_document(&rare);
        assert!(corpus.idf("chippewa") > corpus.idf("usa"));
        assert_eq!(corpus.num_documents(), 11);
    }

    #[test]
    fn remove_document_is_the_exact_inverse_of_add() {
        // add A, B, C then remove B: every idf must be bit-identical to a
        // corpus that only ever saw A and C
        let a = word_tokens("river park usa");
        let b = word_tokens("hyde park uk uk");
        let c = word_tokens("chippewa park usa");
        let mut mutated = TfIdfCorpus::new();
        mutated.add_document(&a);
        mutated.add_document(&b);
        mutated.add_document(&c);
        mutated.remove_document(&b);
        let mut fresh = TfIdfCorpus::new();
        fresh.add_document(&a);
        fresh.add_document(&c);
        assert_eq!(mutated.num_documents(), fresh.num_documents());
        for token in ["river", "park", "usa", "uk", "hyde", "chippewa", "absent"] {
            assert_eq!(
                mutated.idf(token).to_bits(),
                fresh.idf(token).to_bits(),
                "idf({token}) drifted after remove"
            );
        }
        // removing the rest returns to the pristine empty corpus
        mutated.remove_document(&a);
        mutated.remove_document(&c);
        assert_eq!(mutated.num_documents(), 0);
        assert_eq!(
            mutated.idf("park").to_bits(),
            TfIdfCorpus::new().idf("park").to_bits()
        );
    }

    #[test]
    fn overlay_is_invisible_and_clones_share_the_baseline() {
        // Drive enough distinct tokens through add/remove to cross the
        // overlay-collapse threshold repeatedly; exports and idf must stay
        // bit-identical to a corpus built fresh over the surviving docs.
        let docs: Vec<Vec<String>> = (0..200)
            .map(|i| word_tokens(&format!("common tok{} tok{}", i, i + 1)))
            .collect();
        let mut mutated = TfIdfCorpus::new();
        for d in &docs {
            mutated.add_document(d);
        }
        for d in docs.iter().skip(100) {
            mutated.remove_document(d);
        }
        let mut fresh = TfIdfCorpus::new();
        for d in docs.iter().take(100) {
            fresh.add_document(d);
        }
        assert_eq!(mutated.document_frequencies(), fresh.document_frequencies());
        for token in ["common", "tok0", "tok100", "tok199", "absent"] {
            assert_eq!(mutated.idf(token).to_bits(), fresh.idf(token).to_bits());
        }
        // A clone mutated by one small document keeps sharing the baseline
        // by pointer — only the overlay diverges.
        let mut clone = mutated.clone();
        clone.add_document(&word_tokens("common brand_new"));
        assert!(std::sync::Arc::ptr_eq(
            mutated.base_shared(),
            clone.base_shared()
        ));
        assert_ne!(
            mutated.idf("brand_new").to_bits(),
            clone.idf("brand_new").to_bits()
        );
        // Round-trip through the exported form erases the split entirely.
        let restored = TfIdfCorpus::from_document_frequencies(
            clone.num_documents(),
            clone.document_frequencies(),
        );
        assert_eq!(
            restored.document_frequencies(),
            clone.document_frequencies()
        );
        assert_eq!(
            restored.idf("common").to_bits(),
            clone.idf("common").to_bits()
        );
    }

    #[test]
    #[should_panic(expected = "never added")]
    fn remove_unknown_document_panics() {
        let mut corpus = TfIdfCorpus::new();
        corpus.add_document(&word_tokens("river park"));
        corpus.remove_document(&word_tokens("something else"));
    }

    #[test]
    fn tf_idf_weights_are_positive() {
        let mut corpus = TfIdfCorpus::new();
        let doc: Vec<String> = word_tokens("river park usa river");
        corpus.add_document(&doc);
        let weights = corpus.tf_idf(&doc);
        assert!(weights.values().all(|w| *w > 0.0));
        assert!(weights["river"] > weights["usa"]);
    }

    #[test]
    fn representative_selection_is_deterministic_under_weight_ties() {
        // Every token distinct but all weights equal (one document, each
        // token once): the stable sort must preserve original order, so the
        // selection is exactly the prefix — on every run.
        let mut corpus = TfIdfCorpus::new();
        let tokens = word_tokens("alpha beta gamma delta epsilon");
        corpus.add_document(&tokens);
        let selected = corpus.select_representative(&tokens, 3);
        assert_eq!(selected, word_tokens("alpha beta gamma"));
        for _ in 0..10 {
            assert_eq!(corpus.select_representative(&tokens, 3), selected);
        }
    }

    #[test]
    fn representative_selection_ranks_nan_weights_last() {
        // A poisoned (NaN) weight must never displace a real-weighted token.
        // `tf_idf` itself cannot produce NaN, so exercise the sort through
        // the same comparator contract: rank a mixed weight list directly.
        let mut weights = [(0usize, f64::NAN), (1, 0.2), (2, f64::NAN), (3, 0.9)];
        weights.sort_by(|a, b| crate::order::desc_nan_last(a.1, b.1));
        assert_eq!(weights[0].0, 3);
        assert_eq!(weights[1].0, 1);
        assert!(weights[2].1.is_nan() && weights[3].1.is_nan());
    }

    #[test]
    fn representative_selection_respects_limit_and_order() {
        let mut corpus = TfIdfCorpus::new();
        for doc in ["usa usa usa", "uk usa", "canada usa"] {
            corpus.add_document(&word_tokens(doc));
        }
        let tokens = word_tokens("chippewa park usa brandon");
        let selected = corpus.select_representative(&tokens, 3);
        assert_eq!(selected.len(), 3);
        // rare informative tokens survive (the ubiquitous "usa" is dropped),
        // and original order is preserved
        assert!(selected.contains(&"chippewa".to_string()));
        assert!(!selected.contains(&"usa".to_string()));
        let idx_c = selected.iter().position(|t| t == "chippewa").unwrap();
        let idx_b = selected.iter().position(|t| t == "brandon").unwrap();
        assert!(idx_c < idx_b);
        // short documents pass through untouched
        let short = word_tokens("one two");
        assert_eq!(corpus.select_representative(&short, 10), short);
    }
}
