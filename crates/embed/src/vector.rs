//! Dense vector type and elementary linear algebra used across the
//! embedding, clustering, and diversification crates.

use serde::{Deserialize, Serialize};

/// A dense embedding vector (`f32` components).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Vector(pub Vec<f32>);

impl Vector {
    /// Create a vector from components.
    pub fn new(components: Vec<f32>) -> Self {
        Vector(components)
    }

    /// A zero vector of the given dimensionality.
    pub fn zeros(dim: usize) -> Self {
        Vector(vec![0.0; dim])
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.0.len()
    }

    /// Borrow the components.
    pub fn as_slice(&self) -> &[f32] {
        &self.0
    }

    /// Mutable access to the components.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.0
    }

    /// Dot product. Panics if dimensions differ.
    pub fn dot(&self, other: &Vector) -> f32 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in dot product");
        self.0.iter().zip(&other.0).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f32 {
        self.0.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Add another vector in place.
    pub fn add_assign(&mut self, other: &Vector) {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in add");
        for (a, b) in self.0.iter_mut().zip(&other.0) {
            *a += b;
        }
    }

    /// Subtract another vector, returning a new vector.
    pub fn sub(&self, other: &Vector) -> Vector {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch in sub");
        Vector(self.0.iter().zip(&other.0).map(|(a, b)| a - b).collect())
    }

    /// Scale in place.
    pub fn scale(&mut self, factor: f32) {
        for v in &mut self.0 {
            *v *= factor;
        }
    }

    /// Returns a copy scaled by `factor`.
    pub fn scaled(&self, factor: f32) -> Vector {
        let mut out = self.clone();
        out.scale(factor);
        out
    }

    /// L2-normalize in place (no-op for the zero vector).
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 1e-12 {
            self.scale(1.0 / n);
        }
    }

    /// Returns an L2-normalized copy.
    pub fn normalized(&self) -> Vector {
        let mut out = self.clone();
        out.normalize();
        out
    }

    /// Element-wise mean of a non-empty set of vectors.
    ///
    /// Returns `None` when `vectors` is empty. Dimensions must agree.
    pub fn mean<'a>(vectors: impl IntoIterator<Item = &'a Vector>) -> Option<Vector> {
        let mut iter = vectors.into_iter();
        let first = iter.next()?;
        let mut acc = first.clone();
        let mut count = 1usize;
        for v in iter {
            acc.add_assign(v);
            count += 1;
        }
        acc.scale(1.0 / count as f32);
        Some(acc)
    }

    /// True when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.0.iter().all(|v| v.is_finite())
    }
}

impl From<Vec<f32>> for Vector {
    fn from(v: Vec<f32>) -> Self {
        Vector(v)
    }
}

impl std::ops::Index<usize> for Vector {
    type Output = f32;
    fn index(&self, idx: usize) -> &f32 {
        &self.0[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        let a = Vector::new(vec![1.0, 2.0, 2.0]);
        let b = Vector::new(vec![2.0, 0.0, 1.0]);
        assert_eq!(a.dot(&b), 4.0);
        assert_eq!(a.norm(), 3.0);
    }

    #[test]
    fn normalization_produces_unit_vectors() {
        let mut v = Vector::new(vec![3.0, 4.0]);
        v.normalize();
        assert!((v.norm() - 1.0).abs() < 1e-6);
        // zero vector stays zero
        let mut z = Vector::zeros(4);
        z.normalize();
        assert_eq!(z.norm(), 0.0);
    }

    #[test]
    fn mean_of_vectors() {
        let a = Vector::new(vec![1.0, 3.0]);
        let b = Vector::new(vec![3.0, 5.0]);
        let m = Vector::mean([&a, &b]).unwrap();
        assert_eq!(m.as_slice(), &[2.0, 4.0]);
        assert!(Vector::mean(std::iter::empty()).is_none());
    }

    #[test]
    fn add_sub_scale() {
        let mut a = Vector::new(vec![1.0, 1.0]);
        let b = Vector::new(vec![2.0, 3.0]);
        a.add_assign(&b);
        assert_eq!(a.as_slice(), &[3.0, 4.0]);
        let d = a.sub(&b);
        assert_eq!(d.as_slice(), &[1.0, 1.0]);
        assert_eq!(a.scaled(0.5).as_slice(), &[1.5, 2.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mismatched_dot_panics() {
        let _ = Vector::zeros(2).dot(&Vector::zeros(3));
    }

    #[test]
    fn finiteness_check() {
        assert!(Vector::new(vec![1.0, 2.0]).is_finite());
        assert!(!Vector::new(vec![f32::NAN]).is_finite());
    }
}
