//! # dust-embed
//!
//! Embedding substrate for the DUST reproduction:
//!
//! * [`vector`] — dense vectors and elementary linear algebra;
//! * [`distance`] — tuple distance functions (cosine / Euclidean / Manhattan)
//!   and the workspace's single pairwise-distance implementation;
//! * [`store`] — contiguous embedding storage with cached norms (the shared
//!   distance-kernel substrate of the diversification pipeline);
//! * [`tokenize`] — word tokenization, character n-grams, TF-IDF;
//! * [`hashing`] — the deterministic feature-hashing text encoder standing in
//!   for pre-trained language models (see DESIGN.md §2);
//! * [`serialize`] — tuple serialization `[CLS] c1 v1 [SEP] ...` (Sec. 4);
//! * [`models`] — the simulated model zoo (FastText, GloVe, BERT, RoBERTa,
//!   sBERT, Ditto) plus column and tuple encoders;
//! * [`order`] — NaN-safe total-order comparators shared by every ranking
//!   in the workspace (search, diversification, token selection);
//! * [`finetune`] — the DUST fine-tuned tuple model (dropout + two linear
//!   layers trained with the cosine-embedding loss);
//! * [`pca`] — principal component analysis used for Fig. 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod distance;
pub mod finetune;
pub mod hashing;
pub mod models;
pub mod order;
pub mod pca;
pub mod serialize;
pub mod store;
pub mod tokenize;
pub mod vector;

pub use distance::{cosine_similarity, Distance, PairwiseMatrix};
pub use finetune::{
    classification_accuracy, cosine_embedding_loss, DustModel, FineTuneConfig, PairExample,
    ProjectionHead, TrainReport,
};
pub use hashing::{HashingEncoder, HashingEncoderConfig};
pub use models::{ColumnEncoder, ColumnSerialization, PretrainedModel, TupleEncoder};
pub use order::{asc_nan_last, desc_nan_last};
pub use pca::Pca;
pub use serialize::{serialize_default, serialize_tuple, SerializeOptions, CLS, SEP};
pub use store::{EmbeddingStore, NormalizedView};
pub use tokenize::{char_ngrams, term_frequencies, word_tokens, TfIdfCorpus};
pub use vector::Vector;
