//! Total-order comparators for ranking possibly-NaN scores.
//!
//! Search techniques, diversifiers, and the TF-IDF token selector all rank
//! candidates by floating-point scores (unionability, marginal
//! contribution, distance to the query, token weight) that become `NaN` as
//! soon as one embedding coordinate is `NaN`. Sorting such scores with
//! `partial_cmp(..).unwrap_or(Equal)` silently degrades: `NaN` compares
//! `Equal` to *everything*, so a single poisoned score can leave the whole
//! order dependent on the incoming element order (or, upstream of a
//! `HashMap`, on iteration order). The comparators here are total: `NaN`
//! always ranks **last** — a candidate with an undefined score never
//! displaces one with a real score — and every call site stays
//! deterministic.
//!
//! They live in `dust-embed` (the lowest crate in the workspace that deals
//! in floating-point scores) so the search, diversification, and
//! tokenization layers all share the one implementation; `dust-diversify`
//! re-exports them under its historical `order` path. Pinned by
//! `crates/diversify/tests/nan_scores.rs` and the NaN-ranking tests in
//! `dust-search`.

use std::cmp::Ordering;

/// Descending order on scores, `NaN` last (i.e. treated as worse than every
/// real score, including `-∞`). Non-NaN values compare via
/// [`f64::total_cmp`], which agrees with the usual order on every real
/// score a ranking produces.
pub fn desc_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => b.total_cmp(&a),
    }
}

/// Ascending order on costs (e.g. distance to the query), `NaN` still last
/// — an undefined cost is worse than any real one, not "smallest".
pub fn asc_nan_last(a: f64, b: f64) -> Ordering {
    match (a.is_nan(), b.is_nan()) {
        (true, true) => Ordering::Equal,
        (true, false) => Ordering::Greater,
        (false, true) => Ordering::Less,
        (false, false) => a.total_cmp(&b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_on_real_scores() {
        let mut v = vec![1.0, 5.0, -2.0, 3.0];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(v, vec![5.0, 3.0, 1.0, -2.0]);
    }

    #[test]
    fn nan_ranks_after_every_real_score() {
        let mut v = [f64::NAN, 1.0, f64::NEG_INFINITY, f64::NAN, 7.0];
        v.sort_by(|a, b| desc_nan_last(*a, *b));
        assert_eq!(v[0], 7.0);
        assert_eq!(v[1], 1.0);
        assert_eq!(v[2], f64::NEG_INFINITY);
        assert!(v[3].is_nan() && v[4].is_nan());
    }

    #[test]
    fn ascending_variant_still_ranks_nan_last() {
        let mut v = [f64::NAN, 3.0, 1.0, f64::INFINITY];
        v.sort_by(|a, b| asc_nan_last(*a, *b));
        assert_eq!(v[0], 1.0);
        assert_eq!(v[1], 3.0);
        assert_eq!(v[2], f64::INFINITY);
        assert!(v[3].is_nan());
    }

    #[test]
    fn is_a_total_order() {
        // antisymmetry + transitivity smoke check over a mixed sample
        let sample = [f64::NAN, f64::INFINITY, 1.0, 0.0, -0.0, f64::NEG_INFINITY];
        for &a in &sample {
            assert_eq!(desc_nan_last(a, a), Ordering::Equal);
            for &b in &sample {
                assert_eq!(desc_nan_last(a, b), desc_nan_last(b, a).reverse());
            }
        }
    }
}
