//! The simulated embedding-model zoo and the column / tuple encoders built
//! on top of it.
//!
//! The paper evaluates column alignment with FastText, GloVe, BERT, RoBERTa
//! and sBERT under two serializations (cell-level and column-level), and
//! evaluates tuple representation with pre-trained BERT / RoBERTa / sBERT,
//! the entity-matching model Ditto, and the fine-tuned DUST models. Here
//! each named model is a configuration of the deterministic
//! [`HashingEncoder`] (see DESIGN.md §2 for the substitution rationale):
//!
//! * word-embedding models (FastText, GloVe) — no anisotropy, subword
//!   n-grams for FastText;
//! * transformer models (BERT, RoBERTa, sBERT) — anisotropic, with capacity
//!   (dimension / hash collisions) increasing from BERT to RoBERTa;
//! * Ditto — an entity-matching-tuned space: moderate anisotropy, strong
//!   IDF weighting so that entity-identifying tokens dominate.

use crate::hashing::{HashingEncoder, HashingEncoderConfig};
use crate::serialize::{serialize_tuple, SerializeOptions};
use crate::tokenize::{word_tokens, TfIdfCorpus};
use crate::vector::Vector;
use dust_table::{Column, Tuple};
use serde::{Deserialize, Serialize};

/// The named embedding models evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PretrainedModel {
    /// FastText word embeddings (subword n-grams).
    FastText,
    /// GloVe word embeddings.
    Glove,
    /// BERT-base.
    Bert,
    /// RoBERTa-base.
    Roberta,
    /// Sentence-BERT.
    SBert,
    /// Ditto (entity matching fine-tuned transformer).
    Ditto,
}

impl PretrainedModel {
    /// All models used in the column-alignment experiment (Table 1).
    pub fn alignment_models() -> Vec<PretrainedModel> {
        vec![
            PretrainedModel::FastText,
            PretrainedModel::Glove,
            PretrainedModel::Bert,
            PretrainedModel::Roberta,
            PretrainedModel::SBert,
        ]
    }

    /// All baseline models used in the tuple-representation experiment (Fig. 6).
    pub fn tuple_models() -> Vec<PretrainedModel> {
        vec![
            PretrainedModel::Bert,
            PretrainedModel::Roberta,
            PretrainedModel::SBert,
            PretrainedModel::Ditto,
        ]
    }

    /// Whether this is a (contextual) language model rather than a static
    /// word embedding. Only language models have a column-level variant in
    /// Table 1.
    pub fn is_language_model(&self) -> bool {
        !matches!(self, PretrainedModel::FastText | PretrainedModel::Glove)
    }

    /// Human-readable name as used in the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            PretrainedModel::FastText => "FastText",
            PretrainedModel::Glove => "Glove",
            PretrainedModel::Bert => "BERT",
            PretrainedModel::Roberta => "RoBERTa",
            PretrainedModel::SBert => "sBERT",
            PretrainedModel::Ditto => "Ditto",
        }
    }

    /// The encoder configuration simulating this model.
    pub fn encoder_config(&self) -> HashingEncoderConfig {
        match self {
            PretrainedModel::FastText => HashingEncoderConfig {
                dim: 300,
                seed: 0xFA57,
                hashes_per_token: 4,
                use_char_ngrams: true,
                char_ngram_size: 3,
                anisotropy: 0.0,
                idf_weighting: false,
                token_limit: 512,
            },
            PretrainedModel::Glove => HashingEncoderConfig {
                dim: 300,
                seed: 0x6107E,
                hashes_per_token: 3,
                use_char_ngrams: false,
                char_ngram_size: 3,
                anisotropy: 0.0,
                idf_weighting: false,
                token_limit: 512,
            },
            PretrainedModel::Bert => HashingEncoderConfig {
                dim: 192,
                seed: 0xBE27,
                hashes_per_token: 2,
                use_char_ngrams: false,
                char_ngram_size: 3,
                anisotropy: 1.6,
                idf_weighting: false,
                token_limit: 512,
            },
            PretrainedModel::Roberta => HashingEncoderConfig {
                dim: 768,
                seed: 0x20BE27A,
                hashes_per_token: 4,
                use_char_ngrams: false,
                char_ngram_size: 3,
                anisotropy: 1.4,
                idf_weighting: true,
                token_limit: 512,
            },
            PretrainedModel::SBert => HashingEncoderConfig {
                dim: 384,
                seed: 0x5BE27,
                hashes_per_token: 4,
                use_char_ngrams: false,
                char_ngram_size: 3,
                anisotropy: 1.2,
                idf_weighting: true,
                token_limit: 512,
            },
            PretrainedModel::Ditto => HashingEncoderConfig {
                dim: 384,
                seed: 0xD1770,
                hashes_per_token: 4,
                use_char_ngrams: false,
                char_ngram_size: 3,
                anisotropy: 0.8,
                idf_weighting: true,
                token_limit: 512,
            },
        }
    }

    /// Instantiate the encoder for this model.
    pub fn encoder(&self) -> HashingEncoder {
        HashingEncoder::new(self.encoder_config())
    }
}

/// How a column is serialized before embedding (Table 1's two variants).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ColumnSerialization {
    /// Embed each cell value independently and average the cell embeddings.
    CellLevel,
    /// Concatenate all cell values into one "sentence" (with a TF-IDF token
    /// budget) and embed it once.
    ColumnLevel,
}

impl ColumnSerialization {
    /// Name as used in the paper's Table 1.
    pub fn name(&self) -> &'static str {
        match self {
            ColumnSerialization::CellLevel => "Cell-level",
            ColumnSerialization::ColumnLevel => "Column-level",
        }
    }
}

/// Embeds table columns with a chosen model and serialization.
#[derive(Debug, Clone)]
pub struct ColumnEncoder {
    model: PretrainedModel,
    serialization: ColumnSerialization,
    encoder: HashingEncoder,
}

impl ColumnEncoder {
    /// Create a column encoder.
    pub fn new(model: PretrainedModel, serialization: ColumnSerialization) -> Self {
        ColumnEncoder {
            model,
            serialization,
            encoder: model.encoder(),
        }
    }

    /// The underlying model.
    pub fn model(&self) -> PretrainedModel {
        self.model
    }

    /// The serialization strategy.
    pub fn serialization(&self) -> ColumnSerialization {
        self.serialization
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Embed a column. `corpus` supplies IDF statistics for the
    /// column-level serialization; pass an empty corpus when unavailable.
    pub fn embed_column(&self, column: &Column, corpus: &TfIdfCorpus) -> Vector {
        match self.serialization {
            ColumnSerialization::CellLevel => {
                let mut cell_embeddings = Vec::new();
                for value in column.values() {
                    if value.is_null() {
                        continue;
                    }
                    let text = value.render();
                    if text.trim().is_empty() {
                        continue;
                    }
                    cell_embeddings.push(self.encoder.embed_text(&text));
                }
                match Vector::mean(cell_embeddings.iter()) {
                    Some(mut mean) => {
                        mean.normalize();
                        mean
                    }
                    None => Vector::zeros(self.encoder.dim()),
                }
            }
            ColumnSerialization::ColumnLevel => {
                let mut sentence = String::new();
                for value in column.values() {
                    if value.is_null() {
                        continue;
                    }
                    sentence.push_str(&value.render());
                    sentence.push(' ');
                }
                self.encoder.embed_text_with_corpus(&sentence, corpus)
            }
        }
    }

    /// The corpus "document" a column contributes to [`Self::build_corpus`]:
    /// its non-null values concatenated and word-tokenized. Exposed so
    /// incremental corpus maintenance (`TfIdfCorpus::add_document` /
    /// `remove_document` per added/removed table) tokenizes exactly the way
    /// the full build does — the two cannot drift.
    pub fn column_document_tokens(column: &Column) -> Vec<String> {
        let mut text = String::new();
        for v in column.values() {
            if !v.is_null() {
                text.push_str(&v.render());
                text.push(' ');
            }
        }
        word_tokens(&text)
    }

    /// Build a TF-IDF corpus where each document is one column's values.
    pub fn build_corpus<'a>(columns: impl IntoIterator<Item = &'a Column>) -> TfIdfCorpus {
        let mut corpus = TfIdfCorpus::new();
        for col in columns {
            corpus.add_document(&Self::column_document_tokens(col));
        }
        // One deliberate collapse after the bulk add loop: the first
        // mutation applied to a clone of this corpus then shares the whole
        // baseline by pointer instead of starting from a half-full overlay.
        corpus.collapse();
        corpus
    }
}

/// Embeds serialized tuples with a pre-trained (non-fine-tuned) model.
///
/// This is the baseline side of Fig. 6; the fine-tuned DUST model lives in
/// [`crate::finetune`].
#[derive(Debug, Clone)]
pub struct TupleEncoder {
    model: PretrainedModel,
    encoder: HashingEncoder,
    options: SerializeOptions,
}

impl TupleEncoder {
    /// Create a tuple encoder for a model with default serialization.
    pub fn new(model: PretrainedModel) -> Self {
        TupleEncoder {
            model,
            encoder: model.encoder(),
            options: SerializeOptions::default(),
        }
    }

    /// Use an explicit column order (the query table's aligned order).
    pub fn with_column_order(mut self, order: Vec<String>) -> Self {
        self.options.column_order = Some(order);
        self
    }

    /// The underlying model.
    pub fn model(&self) -> PretrainedModel {
        self.model
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Serialization options used before embedding.
    pub fn options(&self) -> &SerializeOptions {
        &self.options
    }

    /// Embed one tuple.
    pub fn embed_tuple(&self, tuple: &Tuple) -> Vector {
        let serialized = serialize_tuple(tuple, &self.options);
        self.encoder.embed_text(&serialized)
    }

    /// Embed many tuples.
    pub fn embed_tuples(&self, tuples: &[Tuple]) -> Vec<Vector> {
        tuples.iter().map(|t| self.embed_tuple(t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::cosine_similarity;
    use dust_table::Table;

    fn parks_table() -> Table {
        Table::builder("parks")
            .column("Park Name", ["River Park", "West Lawn Park", "Hyde Park"])
            .column("Country", ["USA", "USA", "UK"])
            .build()
            .unwrap()
    }

    fn paintings_table() -> Table {
        Table::builder("paintings")
            .column(
                "Painting",
                ["Northern Lake", "Memory Landscape 2", "Starry Night"],
            )
            .column("Medium", ["Oil on canvas", "Mixed media", "Oil on canvas"])
            .build()
            .unwrap()
    }

    #[test]
    fn model_zoo_configs_are_distinct() {
        let models = PretrainedModel::alignment_models();
        assert_eq!(models.len(), 5);
        let mut seeds: Vec<u64> = models.iter().map(|m| m.encoder_config().seed).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 5, "every model must have its own hash family");
    }

    #[test]
    fn word_embedding_models_are_not_language_models() {
        assert!(!PretrainedModel::FastText.is_language_model());
        assert!(!PretrainedModel::Glove.is_language_model());
        assert!(PretrainedModel::Roberta.is_language_model());
        assert_eq!(PretrainedModel::Roberta.name(), "RoBERTa");
    }

    #[test]
    fn column_encoder_separates_topics() {
        for serialization in [
            ColumnSerialization::CellLevel,
            ColumnSerialization::ColumnLevel,
        ] {
            let enc = ColumnEncoder::new(PretrainedModel::Roberta, serialization);
            let parks = parks_table();
            let paints = paintings_table();
            let corpus =
                ColumnEncoder::build_corpus(parks.columns().iter().chain(paints.columns()));
            let park_names = enc.embed_column(parks.column_by_name("Park Name").unwrap(), &corpus);
            let park_names_again =
                enc.embed_column(parks.column_by_name("Park Name").unwrap(), &corpus);
            let painting_names =
                enc.embed_column(paints.column_by_name("Painting").unwrap(), &corpus);
            assert_eq!(park_names, park_names_again, "deterministic");
            assert!(
                cosine_similarity(&park_names, &park_names_again)
                    > cosine_similarity(&park_names, &painting_names)
            );
        }
    }

    #[test]
    fn cell_level_and_column_level_differ() {
        let cell = ColumnEncoder::new(PretrainedModel::Bert, ColumnSerialization::CellLevel);
        let col = ColumnEncoder::new(PretrainedModel::Bert, ColumnSerialization::ColumnLevel);
        let parks = parks_table();
        let corpus = ColumnEncoder::build_corpus(parks.columns());
        let a = cell.embed_column(parks.column(0).unwrap(), &corpus);
        let b = col.embed_column(parks.column(0).unwrap(), &corpus);
        assert_ne!(a, b);
        assert_eq!(cell.serialization().name(), "Cell-level");
        assert_eq!(col.serialization().name(), "Column-level");
    }

    #[test]
    fn empty_column_embeds_to_zero_vector() {
        let enc = ColumnEncoder::new(PretrainedModel::Glove, ColumnSerialization::CellLevel);
        let col = Column::from_strings("empty", ["", ""]);
        let corpus = TfIdfCorpus::new();
        let v = enc.embed_column(&col, &corpus);
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    fn tuple_encoder_places_similar_tuples_closer() {
        let enc = TupleEncoder::new(PretrainedModel::Roberta);
        let parks = parks_table();
        let paints = paintings_table();
        let park_tuples = parks.tuples();
        let paint_tuples = paints.tuples();
        let a = enc.embed_tuple(&park_tuples[0]);
        let b = enc.embed_tuple(&park_tuples[1]);
        let c = enc.embed_tuple(&paint_tuples[0]);
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
        assert_eq!(enc.embed_tuples(&park_tuples).len(), 3);
    }

    #[test]
    fn pretrained_transformers_are_anisotropic() {
        // This is the behaviour that makes un-fine-tuned models unable to
        // separate unionable from non-unionable pairs at a fixed threshold.
        let enc = TupleEncoder::new(PretrainedModel::Bert);
        let parks = parks_table().tuples();
        let paints = paintings_table().tuples();
        let sim = cosine_similarity(&enc.embed_tuple(&parks[0]), &enc.embed_tuple(&paints[0]));
        assert!(
            sim > 0.5,
            "unrelated tuples should still look similar, got {sim}"
        );
    }

    #[test]
    fn column_order_restricts_serialized_columns() {
        let enc = TupleEncoder::new(PretrainedModel::Roberta)
            .with_column_order(vec!["Country".to_string()]);
        let parks = parks_table().tuples();
        let full = TupleEncoder::new(PretrainedModel::Roberta).embed_tuple(&parks[0]);
        let restricted = enc.embed_tuple(&parks[0]);
        assert_ne!(full, restricted);
        assert!(enc.options().column_order.is_some());
    }
}
