//! The DUST fine-tuned tuple embedding model (Sec. 4).
//!
//! Architecture (Fig. 3, bottom right): a frozen base encoder produces a
//! tuple representation which is passed through a dropout layer and two
//! linear layers; the final linear layer's output is the fixed-dimension
//! tuple embedding. Training minimizes the cosine-embedding loss
//!
//! ```text
//! L(e1, e2) = 1 - cos(e1, e2)              if label = 1 (unionable)
//!             max(0, cos(e1, e2) - margin) if label = 0 (non-unionable)
//! ```
//!
//! with plain SGD, early stopping on validation loss with a patience
//! window — exactly the training loop the paper describes, with the
//! transformer backbone replaced by the deterministic hashing encoder
//! (DESIGN.md §2).

use crate::distance::cosine_similarity;
use crate::models::{PretrainedModel, TupleEncoder};
use crate::vector::Vector;
use dust_table::Tuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One training example: a pair of base embeddings and a unionability label.
#[derive(Debug, Clone)]
pub struct PairExample {
    /// Base embedding of the first tuple.
    pub a: Vector,
    /// Base embedding of the second tuple.
    pub b: Vector,
    /// `true` when the tuples come from the same table or unionable tables.
    pub unionable: bool,
}

/// Hyper-parameters of the fine-tuning head and its training loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FineTuneConfig {
    /// Hidden layer width.
    pub hidden_dim: usize,
    /// Output embedding dimensionality.
    pub output_dim: usize,
    /// Dropout probability applied to the base embedding during training.
    pub dropout: f32,
    /// SGD learning rate.
    pub learning_rate: f32,
    /// Maximum number of epochs.
    pub max_epochs: usize,
    /// Early-stopping patience (epochs without validation improvement).
    pub patience: usize,
    /// Margin of the cosine-embedding loss for non-unionable pairs.
    pub margin: f64,
    /// RNG seed (weight init, dropout masks, shuffling).
    pub seed: u64,
}

impl Default for FineTuneConfig {
    fn default() -> Self {
        FineTuneConfig {
            hidden_dim: 128,
            output_dim: 64,
            dropout: 0.1,
            learning_rate: 0.3,
            max_epochs: 100,
            patience: 10,
            margin: 0.0,
            seed: 7,
        }
    }
}

/// Report returned by [`ProjectionHead::train`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrainReport {
    /// Number of epochs actually run (early stopping may cut training short).
    pub epochs_run: usize,
    /// Training loss of the final epoch.
    pub final_train_loss: f64,
    /// Best validation loss observed.
    pub best_val_loss: f64,
    /// Validation loss after each epoch.
    pub val_losses: Vec<f64>,
}

/// The cosine-embedding loss of a single pair.
pub fn cosine_embedding_loss(e1: &Vector, e2: &Vector, unionable: bool, margin: f64) -> f64 {
    let cos = cosine_similarity(e1, e2);
    if unionable {
        1.0 - cos
    } else {
        (cos - margin).max(0.0)
    }
}

/// Dropout + two linear layers (tanh in between), trained with SGD.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProjectionHead {
    input_dim: usize,
    config: FineTuneConfig,
    /// `hidden_dim × input_dim`, row-major.
    w1: Vec<f32>,
    b1: Vec<f32>,
    /// `output_dim × hidden_dim`, row-major.
    w2: Vec<f32>,
    b2: Vec<f32>,
}

impl ProjectionHead {
    /// Create a head with small random weights.
    pub fn new(input_dim: usize, config: FineTuneConfig) -> Self {
        assert!(input_dim > 0 && config.hidden_dim > 0 && config.output_dim > 0);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let scale1 = (1.0 / input_dim as f32).sqrt();
        let scale2 = (1.0 / config.hidden_dim as f32).sqrt();
        let w1 = (0..config.hidden_dim * input_dim)
            .map(|_| rng.gen_range(-scale1..scale1))
            .collect();
        let w2 = (0..config.output_dim * config.hidden_dim)
            .map(|_| rng.gen_range(-scale2..scale2))
            .collect();
        ProjectionHead {
            input_dim,
            b1: vec![0.0; config.hidden_dim],
            b2: vec![0.0; config.output_dim],
            config,
            w1,
            w2,
        }
    }

    /// Input dimensionality expected by the head.
    pub fn input_dim(&self) -> usize {
        self.input_dim
    }

    /// Output embedding dimensionality.
    pub fn output_dim(&self) -> usize {
        self.config.output_dim
    }

    /// The configuration the head was built with.
    pub fn config(&self) -> &FineTuneConfig {
        &self.config
    }

    /// Export the trained weights: `(w1, b1, w2, b2)` exactly as stored
    /// (`w1` is `hidden_dim × input_dim` row-major, `w2` is `output_dim ×
    /// hidden_dim` row-major). Together with [`Self::input_dim`] and
    /// [`Self::config`] this is the head's whole state.
    pub fn raw_weights(&self) -> (&[f32], &[f32], &[f32], &[f32]) {
        (&self.w1, &self.b1, &self.w2, &self.b2)
    }

    /// Reassemble a head from exported weights — the exact inverse of
    /// [`Self::raw_weights`]. Weights round-trip verbatim, so every forward
    /// pass of the restored head is bit-identical to the original's.
    /// Panics if the buffer lengths disagree with the dimensions.
    pub fn from_raw_weights(
        input_dim: usize,
        config: FineTuneConfig,
        w1: Vec<f32>,
        b1: Vec<f32>,
        w2: Vec<f32>,
        b2: Vec<f32>,
    ) -> Self {
        assert_eq!(w1.len(), config.hidden_dim * input_dim, "w1 shape mismatch");
        assert_eq!(b1.len(), config.hidden_dim, "b1 shape mismatch");
        assert_eq!(
            w2.len(),
            config.output_dim * config.hidden_dim,
            "w2 shape mismatch"
        );
        assert_eq!(b2.len(), config.output_dim, "b2 shape mismatch");
        ProjectionHead {
            input_dim,
            config,
            w1,
            b1,
            w2,
            b2,
        }
    }

    /// Forward pass in evaluation mode (no dropout).
    pub fn embed(&self, x: &Vector) -> Vector {
        let (_, _, out) = self.forward(x.as_slice(), None);
        Vector::new(out)
    }

    /// Forward pass; `dropout_mask` (parallel to the input) zeroes dropped
    /// components during training.
    fn forward(&self, x: &[f32], dropout_mask: Option<&[f32]>) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        assert_eq!(x.len(), self.input_dim, "input dimension mismatch");
        let h_dim = self.config.hidden_dim;
        let o_dim = self.config.output_dim;
        let dropped: Vec<f32> = match dropout_mask {
            Some(mask) => x.iter().zip(mask).map(|(v, m)| v * m).collect(),
            None => x.to_vec(),
        };
        let mut z1 = vec![0.0f32; h_dim];
        for (i, slot) in z1.iter_mut().enumerate() {
            let row = &self.w1[i * self.input_dim..(i + 1) * self.input_dim];
            let mut acc = self.b1[i];
            for (w, v) in row.iter().zip(&dropped) {
                acc += w * v;
            }
            *slot = acc;
        }
        let h: Vec<f32> = z1.iter().map(|v| v.tanh()).collect();
        let mut out = vec![0.0f32; o_dim];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.w2[i * h_dim..(i + 1) * h_dim];
            let mut acc = self.b2[i];
            for (w, v) in row.iter().zip(&h) {
                acc += w * v;
            }
            *slot = acc;
        }
        (dropped, h, out)
    }

    /// Average loss over a set of pairs (evaluation mode).
    pub fn evaluate_loss(&self, pairs: &[PairExample]) -> f64 {
        if pairs.is_empty() {
            return 0.0;
        }
        let total: f64 = pairs
            .iter()
            .map(|p| {
                cosine_embedding_loss(
                    &self.embed(&p.a),
                    &self.embed(&p.b),
                    p.unionable,
                    self.config.margin,
                )
            })
            .sum();
        total / pairs.len() as f64
    }

    /// Train with SGD and early stopping; returns a training report.
    pub fn train(&mut self, train: &[PairExample], validation: &[PairExample]) -> TrainReport {
        let mut rng = StdRng::seed_from_u64(self.config.seed.wrapping_add(1));
        let mut best_val = f64::INFINITY;
        let mut best_weights = (
            self.w1.clone(),
            self.b1.clone(),
            self.w2.clone(),
            self.b2.clone(),
        );
        let mut epochs_without_improvement = 0usize;
        let mut val_losses = Vec::new();
        let mut final_train_loss = 0.0;
        let mut epochs_run = 0usize;
        let mut order: Vec<usize> = (0..train.len()).collect();

        for _epoch in 0..self.config.max_epochs {
            epochs_run += 1;
            shuffle(&mut order, &mut rng);
            let mut epoch_loss = 0.0;
            for &idx in &order {
                let pair = &train[idx];
                epoch_loss += self.sgd_step(pair, &mut rng);
            }
            final_train_loss = if train.is_empty() {
                0.0
            } else {
                epoch_loss / train.len() as f64
            };
            let val_loss = if validation.is_empty() {
                final_train_loss
            } else {
                self.evaluate_loss(validation)
            };
            val_losses.push(val_loss);
            if val_loss + 1e-9 < best_val {
                best_val = val_loss;
                best_weights = (
                    self.w1.clone(),
                    self.b1.clone(),
                    self.w2.clone(),
                    self.b2.clone(),
                );
                epochs_without_improvement = 0;
            } else {
                epochs_without_improvement += 1;
                if epochs_without_improvement >= self.config.patience {
                    break;
                }
            }
        }
        // Restore the best checkpoint (standard early-stopping behaviour).
        self.w1 = best_weights.0;
        self.b1 = best_weights.1;
        self.w2 = best_weights.2;
        self.b2 = best_weights.3;
        TrainReport {
            epochs_run,
            final_train_loss,
            best_val_loss: if best_val.is_finite() {
                best_val
            } else {
                final_train_loss
            },
            val_losses,
        }
    }

    /// One SGD step on a single pair; returns the pair's loss before update.
    fn sgd_step(&mut self, pair: &PairExample, rng: &mut StdRng) -> f64 {
        let mask_a = self.dropout_mask(rng);
        let mask_b = self.dropout_mask(rng);
        let (xa, ha, ea) = self.forward(pair.a.as_slice(), Some(&mask_a));
        let (xb, hb, eb) = self.forward(pair.b.as_slice(), Some(&mask_b));
        let ea_v = Vector::new(ea.clone());
        let eb_v = Vector::new(eb.clone());
        let cos = cosine_similarity(&ea_v, &eb_v);
        let loss = if pair.unionable {
            1.0 - cos
        } else {
            (cos - self.config.margin).max(0.0)
        };
        // dL/dcos. Positive pairs stop pulling once they are already very
        // close (a small satisfaction slack): without it the easiest way to
        // drive the positive loss to zero is to collapse every embedding
        // onto one direction, a well-known failure mode of contrastive
        // training that the negative-pair gradient cannot undo because it
        // vanishes as the embeddings coincide.
        let positive_slack = 0.05;
        let dcos = if pair.unionable {
            if cos < 1.0 - positive_slack {
                -1.0
            } else {
                0.0
            }
        } else if cos > self.config.margin {
            1.0
        } else {
            0.0
        };
        if dcos == 0.0 {
            return loss;
        }
        // Clip the per-sample output gradients: the cosine gradient scales
        // with 1/||e||, which is huge right after initialization (the head's
        // outputs start near zero) and would otherwise blow the weights into
        // tanh saturation on the very first steps.
        let grad_ea = clip_norm(cosine_grad(&ea, &eb, cos, dcos), 1.0);
        let grad_eb = clip_norm(cosine_grad(&eb, &ea, cos, dcos), 1.0);
        self.backprop(&xa, &ha, &grad_ea);
        self.backprop(&xb, &hb, &grad_eb);
        loss
    }

    /// Backpropagate an output gradient through both linear layers and apply
    /// the SGD update in place.
    fn backprop(&mut self, x: &[f32], h: &[f32], grad_out: &[f32]) {
        let lr = self.config.learning_rate;
        let h_dim = self.config.hidden_dim;
        // gradient wrt hidden activations
        let mut grad_h = vec![0.0f32; h_dim];
        for (i, &g) in grad_out.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &mut self.w2[i * h_dim..(i + 1) * h_dim];
            for (j, w) in row.iter_mut().enumerate() {
                grad_h[j] += *w * g;
                *w -= lr * g * h[j];
            }
            self.b2[i] -= lr * g;
        }
        // through tanh
        for (j, g) in grad_h.iter_mut().enumerate() {
            *g *= 1.0 - h[j] * h[j];
        }
        for (j, g) in grad_h.iter().enumerate() {
            if *g == 0.0 {
                continue;
            }
            let row = &mut self.w1[j * self.input_dim..(j + 1) * self.input_dim];
            for (k, w) in row.iter_mut().enumerate() {
                *w -= lr * g * x[k];
            }
            self.b1[j] -= lr * g;
        }
    }

    fn dropout_mask(&self, rng: &mut StdRng) -> Vec<f32> {
        let p = self.config.dropout;
        if p <= 0.0 {
            return vec![1.0; self.input_dim];
        }
        let keep = 1.0 - p;
        (0..self.input_dim)
            .map(|_| {
                if rng.gen::<f32>() < p {
                    0.0
                } else {
                    1.0 / keep
                }
            })
            .collect()
    }
}

/// Scale a gradient vector down so its L2 norm does not exceed `max_norm`.
fn clip_norm(mut grad: Vec<f32>, max_norm: f32) -> Vec<f32> {
    let norm = grad.iter().map(|v| v * v).sum::<f32>().sqrt();
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        for g in &mut grad {
            *g *= scale;
        }
    }
    grad
}

/// Gradient of `dL/d e_self` for the cosine similarity term.
fn cosine_grad(e_self: &[f32], e_other: &[f32], cos: f64, dcos: f64) -> Vec<f32> {
    let norm_self = (e_self.iter().map(|v| (*v as f64).powi(2)).sum::<f64>())
        .sqrt()
        .max(1e-9);
    let norm_other = (e_other.iter().map(|v| (*v as f64).powi(2)).sum::<f64>())
        .sqrt()
        .max(1e-9);
    e_self
        .iter()
        .zip(e_other)
        .map(|(s, o)| {
            let d = (*o as f64) / (norm_self * norm_other)
                - cos * (*s as f64) / (norm_self * norm_self);
            (dcos * d) as f32
        })
        .collect()
}

/// Fisher–Yates shuffle (kept local to avoid a `rand` trait import dance).
fn shuffle(order: &mut [usize], rng: &mut StdRng) {
    for i in (1..order.len()).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
}

/// The DUST tuple embedding model: a frozen base encoder plus a trained
/// projection head.
///
/// Training additionally estimates the mean of the base embeddings over the
/// training pairs and subtracts it before the head (centering). Pre-trained
/// transformer spaces are strongly anisotropic — every embedding shares a
/// large common component — and without centering the cosine-embedding loss
/// has a degenerate optimum where all embeddings collapse onto that common
/// direction; removing it makes fine-tuning stable.
#[derive(Debug, Clone)]
pub struct DustModel {
    base: TupleEncoder,
    head: ProjectionHead,
    /// Mean base embedding estimated from the training pairs.
    center: Option<Vector>,
}

impl DustModel {
    /// Create an untrained DUST model over the given backbone.
    pub fn new(backbone: PretrainedModel, config: FineTuneConfig) -> Self {
        let base = TupleEncoder::new(backbone);
        let head = ProjectionHead::new(base.dim(), config);
        DustModel {
            base,
            head,
            center: None,
        }
    }

    /// The backbone model.
    pub fn backbone(&self) -> PretrainedModel {
        self.base.model()
    }

    /// The trained projection head.
    pub fn head(&self) -> &ProjectionHead {
        &self.head
    }

    /// The training-time centering vector, if the model was trained.
    pub fn center(&self) -> Option<&Vector> {
        self.center.as_ref()
    }

    /// Reassemble a model from its parts — the inverse of
    /// [`Self::backbone`]/[`Self::head`]/[`Self::center`]. The base encoder
    /// is deterministic in the backbone, and head weights and centering
    /// round-trip verbatim, so every embedding of the restored model is
    /// bit-identical to the original's.
    pub fn from_parts(
        backbone: PretrainedModel,
        head: ProjectionHead,
        center: Option<Vector>,
    ) -> Self {
        let base = TupleEncoder::new(backbone);
        assert_eq!(
            head.input_dim(),
            base.dim(),
            "head input dim does not match the backbone"
        );
        DustModel { base, head, center }
    }

    /// Output embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.head.output_dim()
    }

    /// Base (pre-projection) embedding of a tuple.
    pub fn base_embedding(&self, tuple: &Tuple) -> Vector {
        self.base.embed_tuple(tuple)
    }

    /// Fine-tuned embedding of a tuple.
    pub fn embed_tuple(&self, tuple: &Tuple) -> Vector {
        self.head
            .embed(&self.centered(self.base.embed_tuple(tuple)))
    }

    /// Apply the training-time centering (no-op before training).
    fn centered(&self, mut embedding: Vector) -> Vector {
        if let Some(center) = &self.center {
            embedding = embedding.sub(center);
        }
        embedding
    }

    /// Embed many tuples.
    pub fn embed_tuples(&self, tuples: &[Tuple]) -> Vec<Vector> {
        tuples.iter().map(|t| self.embed_tuple(t)).collect()
    }

    /// Convert labelled tuple pairs into head training examples (applying the
    /// current centering, if any).
    pub fn prepare_pairs(&self, pairs: &[(Tuple, Tuple, bool)]) -> Vec<PairExample> {
        pairs
            .iter()
            .map(|(a, b, label)| PairExample {
                a: self.centered(self.base.embed_tuple(a)),
                b: self.centered(self.base.embed_tuple(b)),
                unionable: *label,
            })
            .collect()
    }

    /// Fine-tune the projection head on labelled tuple pairs. The training
    /// pairs also define the centering applied to every future embedding.
    pub fn train(
        &mut self,
        train_pairs: &[(Tuple, Tuple, bool)],
        validation_pairs: &[(Tuple, Tuple, bool)],
    ) -> TrainReport {
        // Estimate the anisotropy direction from the training pairs.
        if !train_pairs.is_empty() {
            let all: Vec<Vector> = train_pairs
                .iter()
                .flat_map(|(a, b, _)| [self.base.embed_tuple(a), self.base.embed_tuple(b)])
                .collect();
            self.center = Vector::mean(all.iter());
        }
        let train = self.prepare_pairs(train_pairs);
        let val = self.prepare_pairs(validation_pairs);
        self.head.train(&train, &val)
    }

    /// Accuracy of unionability classification at a cosine-distance
    /// threshold (Sec. 6.3: predicted unionable iff distance < threshold).
    pub fn classification_accuracy(&self, pairs: &[(Tuple, Tuple, bool)], threshold: f64) -> f64 {
        classification_accuracy(|t| self.embed_tuple(t), pairs, threshold)
    }
}

/// Accuracy of threshold-based unionability classification for an arbitrary
/// tuple embedder (used for the pre-trained baselines in Fig. 6).
pub fn classification_accuracy<F>(embed: F, pairs: &[(Tuple, Tuple, bool)], threshold: f64) -> f64
where
    F: Fn(&Tuple) -> Vector,
{
    if pairs.is_empty() {
        return 0.0;
    }
    let mut correct = 0usize;
    for (a, b, label) in pairs {
        let ea = embed(a);
        let eb = embed(b);
        let distance = 1.0 - cosine_similarity(&ea, &eb);
        let predicted = distance < threshold;
        if predicted == *label {
            correct += 1;
        }
    }
    correct as f64 / pairs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_table::Value;

    fn tuple(topic: &str, entity: &str, place: &str) -> Tuple {
        Tuple::new(
            vec!["Name".into(), "Kind".into(), "Place".into()],
            vec![Value::text(entity), Value::text(topic), Value::text(place)],
            format!("{topic}_table"),
            0,
        )
    }

    fn toy_pairs() -> Vec<(Tuple, Tuple, bool)> {
        let parks = [
            tuple("park", "River Park", "Fresno"),
            tuple("park", "Hyde Park", "London"),
            tuple("park", "Chippewa Park", "Brandon"),
            tuple("park", "Lawler Park", "Chicago"),
        ];
        let paintings = [
            tuple("painting", "Northern Lake", "Canada"),
            tuple("painting", "Memory Landscape", "USA"),
            tuple("painting", "Starry Night", "France"),
            tuple("painting", "Water Lilies", "France"),
        ];
        let mut pairs = Vec::new();
        for i in 0..parks.len() {
            for j in (i + 1)..parks.len() {
                pairs.push((parks[i].clone(), parks[j].clone(), true));
                pairs.push((paintings[i].clone(), paintings[j].clone(), true));
            }
        }
        for p in &parks {
            for q in &paintings {
                pairs.push((p.clone(), q.clone(), false));
            }
        }
        pairs
    }

    fn small_config() -> FineTuneConfig {
        FineTuneConfig {
            hidden_dim: 32,
            output_dim: 16,
            dropout: 0.05,
            learning_rate: 0.4,
            max_epochs: 150,
            patience: 25,
            margin: 0.0,
            seed: 3,
        }
    }

    #[test]
    fn loss_definition_matches_paper() {
        let a = Vector::new(vec![1.0, 0.0]);
        let b = Vector::new(vec![1.0, 0.0]);
        let c = Vector::new(vec![0.0, 1.0]);
        assert!(cosine_embedding_loss(&a, &b, true, 0.0).abs() < 1e-9);
        assert!((cosine_embedding_loss(&a, &c, true, 0.0) - 1.0).abs() < 1e-9);
        assert!((cosine_embedding_loss(&a, &b, false, 0.0) - 1.0).abs() < 1e-9);
        assert!(cosine_embedding_loss(&a, &c, false, 0.0).abs() < 1e-9);
        // margin shifts the non-unionable hinge
        assert!(cosine_embedding_loss(&a, &b, false, 0.5) > 0.0);
    }

    #[test]
    fn head_forward_shapes() {
        let head = ProjectionHead::new(8, small_config());
        assert_eq!(head.input_dim(), 8);
        assert_eq!(head.output_dim(), 16);
        let out = head.embed(&Vector::zeros(8));
        assert_eq!(out.dim(), 16);
    }

    #[test]
    #[should_panic(expected = "input dimension mismatch")]
    fn head_rejects_wrong_input_dim() {
        let head = ProjectionHead::new(8, small_config());
        let _ = head.embed(&Vector::zeros(4));
    }

    #[test]
    fn training_reduces_loss_on_separable_pairs() {
        let model_cfg = small_config();
        let mut model = DustModel::new(PretrainedModel::Bert, model_cfg);
        let pairs = toy_pairs();
        let before = {
            let prepared = model.prepare_pairs(&pairs);
            model.head.evaluate_loss(&prepared)
        };
        let report = model.train(&pairs, &pairs);
        let after = {
            let prepared = model.prepare_pairs(&pairs);
            model.head.evaluate_loss(&prepared)
        };
        assert!(report.epochs_run > 0);
        assert!(
            after < before,
            "training should reduce loss (before {before}, after {after})"
        );
    }

    #[test]
    fn finetuned_model_beats_pretrained_baseline() {
        // The core claim of Fig. 6: pre-trained anisotropic encoders are near
        // chance at threshold-based unionability classification, while the
        // fine-tuned head separates the classes.
        let pairs = toy_pairs();
        let threshold = 0.7;
        let baseline = TupleEncoder::new(PretrainedModel::Bert);
        let baseline_acc = classification_accuracy(|t| baseline.embed_tuple(t), &pairs, threshold);
        let mut model = DustModel::new(PretrainedModel::Bert, small_config());
        model.train(&pairs, &pairs);
        let tuned_acc = model.classification_accuracy(&pairs, threshold);
        assert!(
            tuned_acc > baseline_acc,
            "fine-tuned accuracy {tuned_acc} should beat baseline {baseline_acc}"
        );
        assert!(
            tuned_acc > 0.8,
            "fine-tuned accuracy should be high, got {tuned_acc}"
        );
    }

    #[test]
    fn early_stopping_respects_patience() {
        let cfg = FineTuneConfig {
            max_epochs: 100,
            patience: 2,
            ..small_config()
        };
        let mut head = ProjectionHead::new(4, cfg);
        // A single degenerate pair: identical vectors labelled non-unionable
        // cannot be improved, so validation loss plateaus immediately.
        let v = Vector::new(vec![1.0, 0.0, 0.0, 0.0]);
        let pairs = vec![PairExample {
            a: v.clone(),
            b: v.clone(),
            unionable: false,
        }];
        let report = head.train(&pairs, &pairs);
        assert!(report.epochs_run < 100, "early stopping should trigger");
    }

    #[test]
    fn dropout_mask_scales_kept_components() {
        let cfg = FineTuneConfig {
            dropout: 0.5,
            ..small_config()
        };
        let head = ProjectionHead::new(100, cfg);
        let mut rng = StdRng::seed_from_u64(1);
        let mask = head.dropout_mask(&mut rng);
        assert_eq!(mask.len(), 100);
        assert!(mask.contains(&0.0));
        assert!(mask.iter().any(|&m| (m - 2.0).abs() < 1e-6));
    }

    #[test]
    fn classification_accuracy_handles_empty_input() {
        let enc = TupleEncoder::new(PretrainedModel::Bert);
        assert_eq!(
            classification_accuracy(|t| enc.embed_tuple(t), &[], 0.7),
            0.0
        );
    }

    #[test]
    fn embed_tuples_is_consistent_with_embed_tuple() {
        let model = DustModel::new(PretrainedModel::Roberta, small_config());
        let ts = vec![tuple("park", "River Park", "Fresno")];
        assert_eq!(model.embed_tuples(&ts)[0], model.embed_tuple(&ts[0]));
        assert_eq!(model.dim(), 16);
        assert_eq!(model.backbone(), PretrainedModel::Roberta);
    }
}
