//! Deterministic feature-hashing text encoder.
//!
//! This is the stand-in for the paper's pre-trained language models (see
//! DESIGN.md §2). A token is mapped to a sparse signed pattern of vector
//! positions via a seeded hash; a text is the (optionally weighted) sum of
//! its token vectors. Texts that share vocabulary therefore land close in
//! cosine space, which is the property every downstream algorithm relies on.
//!
//! Two additional knobs emulate well-documented behaviours of the real
//! models:
//!
//! * `anisotropy` adds a shared bias direction to every embedding. Real
//!   pre-trained transformers are strongly anisotropic — cosine similarity
//!   between unrelated sentences is high — which is exactly why the paper
//!   finds that un-fine-tuned BERT/RoBERTa classify tuple unionability at
//!   chance level (Fig. 6). The fine-tuning head has to learn to remove this
//!   component.
//! * `dim` and `hashes_per_token` control representational capacity
//!   (collisions make a model "blurrier").

use crate::tokenize::{char_ngrams, word_tokens, TfIdfCorpus};
use crate::vector::Vector;
use serde::{Deserialize, Serialize};

/// Configuration of a [`HashingEncoder`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HashingEncoderConfig {
    /// Output dimensionality.
    pub dim: usize,
    /// Seed that makes the encoder's hash family unique (per simulated model).
    pub seed: u64,
    /// Number of hash positions each token activates.
    pub hashes_per_token: usize,
    /// Also hash character n-grams of each token (FastText-style subwords).
    pub use_char_ngrams: bool,
    /// Size of character n-grams when enabled.
    pub char_ngram_size: usize,
    /// Strength of the shared anisotropy bias component (0 disables it).
    pub anisotropy: f32,
    /// Weight rare tokens higher using a TF-IDF corpus when available.
    pub idf_weighting: bool,
    /// Maximum number of tokens taken from a text (the 512-token budget).
    pub token_limit: usize,
}

impl Default for HashingEncoderConfig {
    fn default() -> Self {
        HashingEncoderConfig {
            dim: 256,
            seed: 0x5u64,
            hashes_per_token: 4,
            use_char_ngrams: false,
            char_ngram_size: 3,
            anisotropy: 0.0,
            idf_weighting: false,
            token_limit: 512,
        }
    }
}

/// A deterministic text encoder based on signed feature hashing.
#[derive(Debug, Clone)]
pub struct HashingEncoder {
    config: HashingEncoderConfig,
    bias: Vector,
}

impl HashingEncoder {
    /// Build an encoder from a configuration.
    pub fn new(config: HashingEncoderConfig) -> Self {
        assert!(config.dim > 0, "encoder dimension must be positive");
        assert!(
            config.hashes_per_token > 0,
            "need at least one hash per token"
        );
        let bias = shared_bias(config.dim, config.seed);
        HashingEncoder { config, bias }
    }

    /// The encoder's configuration.
    pub fn config(&self) -> &HashingEncoderConfig {
        &self.config
    }

    /// Output dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// Embed a list of `(token, weight)` pairs.
    pub fn embed_weighted_tokens(&self, tokens: &[(String, f32)]) -> Vector {
        let mut out = Vector::zeros(self.config.dim);
        let limited = &tokens[..tokens.len().min(self.config.token_limit)];
        for (token, weight) in limited {
            self.add_token(&mut out, token, *weight);
            if self.config.use_char_ngrams {
                for gram in char_ngrams(token, self.config.char_ngram_size) {
                    self.add_token(&mut out, &gram, *weight * 0.5);
                }
            }
        }
        out.normalize();
        if self.config.anisotropy > 0.0 {
            let mut biased = self.bias.scaled(self.config.anisotropy);
            biased.add_assign(&out);
            biased.normalize();
            biased
        } else {
            out
        }
    }

    /// Embed free text using uniform token weights.
    pub fn embed_text(&self, text: &str) -> Vector {
        let tokens: Vec<(String, f32)> = word_tokens(text).into_iter().map(|t| (t, 1.0)).collect();
        self.embed_weighted_tokens(&tokens)
    }

    /// Embed free text with TF-IDF token weights drawn from `corpus`.
    pub fn embed_text_with_corpus(&self, text: &str, corpus: &TfIdfCorpus) -> Vector {
        let tokens = word_tokens(text);
        let selected = corpus.select_representative(&tokens, self.config.token_limit);
        let weights = corpus.tf_idf(&selected);
        let weighted: Vec<(String, f32)> = selected
            .into_iter()
            .map(|t| {
                let w = if self.config.idf_weighting {
                    *weights.get(&t).unwrap_or(&1.0) as f32
                } else {
                    1.0
                };
                (t, w.max(1e-3))
            })
            .collect();
        self.embed_weighted_tokens(&weighted)
    }

    fn add_token(&self, out: &mut Vector, token: &str, weight: f32) {
        let slice = out.as_mut_slice();
        let mut h = hash64(token.as_bytes(), self.config.seed);
        for _ in 0..self.config.hashes_per_token {
            h = splitmix64(h);
            let pos = (h % self.config.dim as u64) as usize;
            let sign = if (h >> 63) & 1 == 1 { 1.0 } else { -1.0 };
            slice[pos] += sign * weight;
        }
    }
}

/// The shared anisotropy direction for a given seed.
fn shared_bias(dim: usize, seed: u64) -> Vector {
    let mut v = Vec::with_capacity(dim);
    let mut state = seed ^ 0x9e3779b97f4a7c15;
    for _ in 0..dim {
        state = splitmix64(state);
        // map to roughly uniform in [-1, 1]
        let x = ((state >> 11) as f64 / (1u64 << 53) as f64) as f32 * 2.0 - 1.0;
        v.push(x);
    }
    let mut vec = Vector::new(v);
    vec.normalize();
    vec
}

/// FNV-1a style 64-bit hash with a seed.
pub(crate) fn hash64(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = 0xcbf29ce484222325u64 ^ seed.wrapping_mul(0x100000001b3);
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

/// SplitMix64 mixing step, used to derive successive hash positions.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::distance::cosine_similarity;

    fn encoder(anisotropy: f32) -> HashingEncoder {
        HashingEncoder::new(HashingEncoderConfig {
            dim: 128,
            anisotropy,
            ..HashingEncoderConfig::default()
        })
    }

    #[test]
    fn embeddings_are_deterministic() {
        let e = encoder(0.0);
        let a = e.embed_text("River Park USA");
        let b = e.embed_text("River Park USA");
        assert_eq!(a, b);
    }

    #[test]
    fn similar_texts_are_closer_than_dissimilar_texts() {
        let e = encoder(0.0);
        let a = e.embed_text("river park supervisor vera onate usa");
        let b = e.embed_text("west lawn park supervisor paul veliotis usa");
        let c = e.embed_text("oil on canvas painting northern lake 2006");
        assert!(cosine_similarity(&a, &b) > cosine_similarity(&a, &c));
    }

    #[test]
    fn embeddings_are_unit_norm() {
        let e = encoder(0.0);
        let v = e.embed_text("hello world");
        assert!((v.norm() - 1.0).abs() < 1e-5);
        let empty = e.embed_text("");
        assert_eq!(empty.norm(), 0.0);
    }

    #[test]
    fn anisotropy_inflates_similarity_between_unrelated_texts() {
        let plain = encoder(0.0);
        let aniso = encoder(3.0);
        let a_plain = plain.embed_text("river park usa fresno");
        let b_plain = plain.embed_text("oil painting canvas canada");
        let a_aniso = aniso.embed_text("river park usa fresno");
        let b_aniso = aniso.embed_text("oil painting canvas canada");
        assert!(
            cosine_similarity(&a_aniso, &b_aniso) > cosine_similarity(&a_plain, &b_plain) + 0.2,
            "anisotropy should push unrelated texts together"
        );
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let a = HashingEncoder::new(HashingEncoderConfig {
            seed: 1,
            ..HashingEncoderConfig::default()
        });
        let b = HashingEncoder::new(HashingEncoderConfig {
            seed: 2,
            ..HashingEncoderConfig::default()
        });
        assert_ne!(a.embed_text("park"), b.embed_text("park"));
    }

    #[test]
    fn char_ngrams_help_morphological_overlap() {
        let with = HashingEncoder::new(HashingEncoderConfig {
            use_char_ngrams: true,
            ..HashingEncoderConfig::default()
        });
        let without = encoder(0.0);
        let sim_with = cosine_similarity(&with.embed_text("parks"), &with.embed_text("park"));
        let sim_without =
            cosine_similarity(&without.embed_text("parks"), &without.embed_text("park"));
        assert!(sim_with > sim_without);
    }

    #[test]
    fn idf_weighting_uses_corpus() {
        let mut corpus = TfIdfCorpus::new();
        for doc in ["usa park", "usa museum", "usa library", "usa chippewa"] {
            corpus.add_document(&word_tokens(doc));
        }
        let enc = HashingEncoder::new(HashingEncoderConfig {
            idf_weighting: true,
            ..HashingEncoderConfig::default()
        });
        // the rare token should dominate the weighted embedding
        let v = enc.embed_text_with_corpus("usa chippewa", &corpus);
        let chippewa_only = enc.embed_text("chippewa");
        let usa_only = enc.embed_text("usa");
        assert!(cosine_similarity(&v, &chippewa_only) > cosine_similarity(&v, &usa_only));
    }

    #[test]
    fn token_limit_truncates() {
        let enc = HashingEncoder::new(HashingEncoderConfig {
            token_limit: 2,
            ..HashingEncoderConfig::default()
        });
        let a = enc.embed_text("alpha beta gamma delta");
        let b = enc.embed_text("alpha beta");
        assert_eq!(a, b);
    }

    #[test]
    fn hash_helpers_are_stable() {
        assert_eq!(hash64(b"park", 7), hash64(b"park", 7));
        assert_ne!(hash64(b"park", 7), hash64(b"park", 8));
        assert_ne!(splitmix64(1), splitmix64(2));
    }
}
