//! Contiguous embedding storage with cached norms — the shared substrate of
//! every distance computation in the workspace.
//!
//! [`EmbeddingStore`] packs a set of equal-dimension vectors into one
//! row-major `f32` buffer and caches each row's L2 norm at construction.
//! The cosine hot path then needs **no per-call norm work**: a distance is
//! one dot product plus one division by the cached norm product. The inner
//! loops accumulate in unrolled lanes (letting the compiler vectorize),
//! which reorders the floating-point sums relative to the reference
//! [`Distance::between`] path — kernel results are guaranteed within 1e-6
//! of the reference (property-tested), and identical across every cached
//! entry point, so all cache paths always agree with each other exactly.
//!
//! [`NormalizedView`] additionally pre-normalizes every row so cosine
//! distance degenerates to `1 − dot`. Batch/ANN-style serving can take the
//! extra speed; the diversification pipeline uses the cached-norm kernel,
//! whose zero-vector convention matches the reference path exactly.
//!
//! ## Mutation: tombstones + compaction
//!
//! A resident store (e.g. a `LakeSession` shard) can grow and shrink with
//! its lake. [`EmbeddingStore::push`] appends a row; [`EmbeddingStore::
//! remove_row`] marks a row dead (a *tombstone*) without moving any data,
//! so removal is O(1) and every surviving row keeps its index — parallel
//! provenance arrays stay valid. When tombstones pile up ([`EmbeddingStore::
//! should_compact`]: dead ≥ live, mirroring the workspace-compaction
//! halving rule of the clustering crate), [`EmbeddingStore::compact`]
//! physically re-packs the live rows — values, norms, and inverse norms
//! moved **verbatim**, so every distance computed through the store is
//! bit-identical before and after compaction (property-tested) — and
//! returns an old-index → new-index remap for the caller's parallel
//! arrays. Dense consumers ([`crate::PairwiseMatrix`], [`Self::rows_from`])
//! assume an all-live store; compact first if rows were removed.

use crate::distance::Distance;
use crate::vector::Vector;

/// A set of equal-dimension vectors in one contiguous row-major buffer,
/// with per-row L2 norms cached at construction.
#[derive(Debug, Clone, Default)]
pub struct EmbeddingStore {
    n: usize,
    dim: usize,
    data: Vec<f32>,
    norms: Vec<f32>,
    /// `1 / norm` per row in `f64` (0.0 encodes a zero/sub-threshold norm,
    /// which makes the cosine kernel's zero-vector convention branch-free).
    inv_norms: Vec<f64>,
    /// Tombstones: `dead[i]` marks row `i` removed but not yet compacted
    /// away. Empty ⇔ no row was ever removed (the all-live fast path).
    dead: Vec<bool>,
    /// Number of live (non-tombstoned) rows; equals `n` when `dead` is
    /// all-false.
    live: usize,
}

impl EmbeddingStore {
    /// Pack `vectors` into a store. Panics if dimensions disagree.
    pub fn from_vectors(vectors: &[Vector]) -> Self {
        let n = vectors.len();
        let dim = vectors.first().map(Vector::dim).unwrap_or(0);
        let mut data = Vec::with_capacity(n * dim);
        let mut norms = Vec::with_capacity(n);
        let mut inv_norms = Vec::with_capacity(n);
        for v in vectors {
            assert_eq!(v.dim(), dim, "dimension mismatch in embedding store");
            data.extend_from_slice(v.as_slice());
            // Same accumulation as `Vector::norm` so cached values match
            // what the reference path computes per call.
            let norm = v.as_slice().iter().map(|c| c * c).sum::<f32>().sqrt();
            norms.push(norm);
            inv_norms.push(inverse_norm(norm));
        }
        EmbeddingStore {
            n,
            dim,
            data,
            norms,
            inv_norms,
            dead: Vec::new(),
            live: n,
        }
    }

    /// Reassemble a store from raw parts captured verbatim from a live
    /// store (row-major `data`, per-row `norms` and `inv_norms` — e.g. by
    /// a snapshot writer walking [`Self::row`]/[`Self::norm`]/
    /// [`Self::inv_norm`] over the live rows). Because the cached norms
    /// round-trip as-is instead of being recomputed, every distance
    /// computed through the restored store is bit-identical to the
    /// original. All rows are live. Panics if the buffer lengths disagree.
    pub fn from_raw_parts(
        dim: usize,
        data: Vec<f32>,
        norms: Vec<f32>,
        inv_norms: Vec<f64>,
    ) -> Self {
        let n = norms.len();
        assert_eq!(inv_norms.len(), n, "norm buffers disagree on row count");
        assert_eq!(data.len(), n * dim, "data buffer is not n × dim");
        EmbeddingStore {
            n,
            dim,
            data,
            norms,
            inv_norms,
            dead: Vec::new(),
            live: n,
        }
    }

    /// Append one vector as a new live row at index `len() - 1`. An empty
    /// store adopts the vector's dimension; afterwards dimensions must
    /// match (panics otherwise).
    pub fn push(&mut self, v: &Vector) {
        if self.n == 0 {
            self.dim = v.dim();
        }
        assert_eq!(v.dim(), self.dim, "dimension mismatch in embedding store");
        self.data.extend_from_slice(v.as_slice());
        // Same accumulation as `from_vectors` so pushed rows are
        // indistinguishable from constructed ones.
        let norm = v.as_slice().iter().map(|c| c * c).sum::<f32>().sqrt();
        self.norms.push(norm);
        self.inv_norms.push(inverse_norm(norm));
        if !self.dead.is_empty() {
            self.dead.push(false);
        }
        self.n += 1;
        self.live += 1;
    }

    /// Tombstone row `i`: the row stays physically in place (indices of
    /// every other row are unchanged) but no longer counts as live. Panics
    /// if `i` is out of range or already dead.
    pub fn remove_row(&mut self, i: usize) {
        assert!(i < self.n, "row {i} out of range (len {})", self.n);
        if self.dead.is_empty() {
            self.dead = vec![false; self.n];
        }
        assert!(!self.dead[i], "row {i} removed twice");
        self.dead[i] = true;
        self.live -= 1;
    }

    /// Whether row `i` is live (not tombstoned). Out-of-range indices are
    /// not live.
    pub fn is_live(&self, i: usize) -> bool {
        i < self.n && self.dead.get(i).is_none_or(|&d| !d)
    }

    /// Number of live rows (`len()` minus tombstones).
    pub fn num_live(&self) -> usize {
        self.live
    }

    /// Indices of the live rows, ascending.
    pub fn live_indices(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.n).filter(move |&i| self.is_live(i))
    }

    /// Whether the tombstone count has reached the compaction threshold
    /// (dead ≥ live — the same halving rule as the clustering workspace's
    /// compaction policy).
    pub fn should_compact(&self) -> bool {
        let dead = self.n - self.live;
        dead > 0 && dead >= self.live
    }

    /// Physically re-pack the live rows, dropping every tombstone. Row
    /// values, norms, and inverse norms move **verbatim**, so distances
    /// between surviving rows are bit-identical before and after. Returns
    /// the old-index → new-index remap (`None` for removed rows) so callers
    /// can re-index parallel provenance arrays.
    pub fn compact(&mut self) -> Vec<Option<usize>> {
        let mut remap: Vec<Option<usize>> = Vec::with_capacity(self.n);
        if self.dead.is_empty() {
            remap.extend((0..self.n).map(Some));
            return remap;
        }
        let mut next = 0usize;
        for old in 0..self.n {
            if self.dead[old] {
                remap.push(None);
                continue;
            }
            if next != old {
                let (dst, src) = (next * self.dim, old * self.dim);
                self.data.copy_within(src..src + self.dim, dst);
                self.norms[next] = self.norms[old];
                self.inv_norms[next] = self.inv_norms[old];
            }
            remap.push(Some(next));
            next += 1;
        }
        self.n = next;
        self.live = next;
        self.data.truncate(next * self.dim);
        self.norms.truncate(next);
        self.inv_norms.truncate(next);
        self.dead = Vec::new();
        remap
    }

    /// Number of stored vectors (tombstoned rows included — see
    /// [`Self::num_live`]).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the store holds no vectors.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Dimensionality of the stored vectors.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Iterate rows `start..n` as contiguous slices (one pointer bump per
    /// row, no per-row index arithmetic — the matrix build's inner stream).
    pub fn rows_from(&self, start: usize) -> impl Iterator<Item = &[f32]> {
        let dim = self.dim.max(1);
        self.data[(start * self.dim).min(self.data.len())..].chunks_exact(dim)
    }

    /// Cached L2 norm of row `i`.
    pub fn norm(&self, i: usize) -> f32 {
        self.norms[i]
    }

    /// Cached inverse L2 norm of row `i` (0.0 for zero/sub-threshold rows).
    pub fn inv_norm(&self, i: usize) -> f64 {
        self.inv_norms[i]
    }

    /// Distance between rows `i` and `j` under `metric`, using the cached
    /// (inverse) norms — no per-call norm work. Within 1e-6 of
    /// [`Distance::between`] on the same vectors.
    pub fn distance(&self, metric: Distance, i: usize, j: usize) -> f64 {
        kernel(
            metric,
            self.row(i),
            self.inv_norms[i],
            self.row(j),
            self.inv_norms[j],
        )
    }

    /// Distance between row `i` of `self` and row `j` of `other`.
    pub fn cross_distance(
        &self,
        metric: Distance,
        i: usize,
        other: &EmbeddingStore,
        j: usize,
    ) -> f64 {
        assert_eq!(self.dim, other.dim, "dimension mismatch in distance");
        kernel(
            metric,
            self.row(i),
            self.inv_norms[i],
            other.row(j),
            other.inv_norms[j],
        )
    }

    /// Distance between row `i` and an external vector (the vector's norm is
    /// computed once per call; the row's norm comes from the cache).
    pub fn distance_to_vector(&self, metric: Distance, i: usize, v: &Vector) -> f64 {
        assert_eq!(self.dim, v.dim(), "dimension mismatch in distance");
        kernel(
            metric,
            self.row(i),
            self.inv_norms[i],
            v.as_slice(),
            inverse_norm(v.norm()),
        )
    }

    /// Maximum cosine similarity between any row and `v` (the re-ranking
    /// kernel of tuple search). `f64::NEG_INFINITY` for an empty store.
    pub fn max_cosine_similarity(&self, v: &Vector) -> f64 {
        let inv_nv = inverse_norm(v.norm());
        (0..self.n)
            .map(|i| cosine_similarity_slices(self.row(i), self.inv_norms[i], v.as_slice(), inv_nv))
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Pre-normalized copy of the store (see [`NormalizedView`]).
    pub fn normalized_view(&self) -> NormalizedView {
        let mut data = self.data.clone();
        for i in 0..self.n {
            let norm = self.norms[i];
            if norm > 1e-12 {
                for c in &mut data[i * self.dim..(i + 1) * self.dim] {
                    *c /= norm;
                }
            }
        }
        NormalizedView {
            n: self.n,
            dim: self.dim,
            data,
            zero: self.norms.iter().map(|&n| n <= 1e-12).collect(),
        }
    }
}

/// A store view whose rows are L2-normalized, making cosine distance a bare
/// `1 − dot`. Within ~1e-6 of the exact path (unit rounding in `f32`).
#[derive(Debug, Clone)]
pub struct NormalizedView {
    n: usize,
    dim: usize,
    data: Vec<f32>,
    /// Rows that were zero vectors (cosine convention: similarity 0).
    zero: Vec<bool>,
}

impl NormalizedView {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the view holds no rows.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Unit row `i` as a slice.
    pub fn row(&self, i: usize) -> &[f32] {
        &self.data[i * self.dim..(i + 1) * self.dim]
    }

    /// Cosine distance `1 − dot(unit_i, unit_j)`, clamped to `[0, 2]`.
    pub fn cosine_distance(&self, i: usize, j: usize) -> f64 {
        if self.zero[i] || self.zero[j] {
            return 1.0;
        }
        let dot = dot_slices(self.row(i), self.row(j));
        (1.0 - (dot as f64)).clamp(0.0, 2.0)
    }
}

/// Unrolled dot product: eight parallel `f32` accumulators so the compiler
/// can vectorize (the reference path's strictly sequential sum cannot be).
#[inline]
fn dot_slices(a: &[f32], b: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 8];
    let mut chunks_a = a.chunks_exact(8);
    let mut chunks_b = b.chunks_exact(8);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for l in 0..8 {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let tail: f32 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| x * y)
        .sum();
    ((lanes[0] + lanes[1]) + (lanes[2] + lanes[3]))
        + ((lanes[4] + lanes[5]) + (lanes[6] + lanes[7]))
        + tail
}

/// Unrolled squared-Euclidean accumulation (`f64`, four lanes).
#[inline]
fn squared_diff_slices(a: &[f32], b: &[f32]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for l in 0..4 {
            let d = (ca[l] - cb[l]) as f64;
            lanes[l] += d * d;
        }
    }
    let tail: f64 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum();
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// Unrolled absolute-difference accumulation (`f64`, four lanes).
#[inline]
fn abs_diff_slices(a: &[f32], b: &[f32]) -> f64 {
    let mut lanes = [0.0f64; 4];
    let mut chunks_a = a.chunks_exact(4);
    let mut chunks_b = b.chunks_exact(4);
    for (ca, cb) in chunks_a.by_ref().zip(chunks_b.by_ref()) {
        for l in 0..4 {
            lanes[l] += ((ca[l] - cb[l]) as f64).abs();
        }
    }
    let tail: f64 = chunks_a
        .remainder()
        .iter()
        .zip(chunks_b.remainder())
        .map(|(x, y)| ((x - y) as f64).abs())
        .sum();
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// `1 / norm`, with the reference path's `< 1e-12` zero-norm convention
/// encoded as 0.0 (so `dot · inv_a · inv_b` is 0 — similarity 0 — without
/// a branch in the kernel).
#[inline]
pub(crate) fn inverse_norm(norm: f32) -> f64 {
    let norm = norm as f64;
    if norm < 1e-12 {
        0.0
    } else {
        1.0 / norm
    }
}

#[inline]
fn cosine_similarity_slices(a: &[f32], inv_na: f64, b: &[f32], inv_nb: f64) -> f64 {
    (dot_slices(a, b) as f64 * (inv_na * inv_nb)).clamp(-1.0, 1.0)
}

/// The shared distance kernel over raw rows with cached inverse norms (the
/// cosine hot path is one dot product and two multiplies — zero per-call
/// norm work and no division). Within 1e-6 of the reference
/// [`Distance::between`] path (see module docs).
#[inline]
pub(crate) fn kernel(metric: Distance, a: &[f32], inv_na: f64, b: &[f32], inv_nb: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch in distance kernel");
    match metric {
        Distance::Cosine => 1.0 - cosine_similarity_slices(a, inv_na, b, inv_nb),
        Distance::Euclidean => squared_diff_slices(a, b).sqrt(),
        Distance::Manhattan => abs_diff_slices(a, b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vectors() -> Vec<Vector> {
        vec![
            Vector::new(vec![1.0, 2.0, 2.0]),
            Vector::new(vec![-3.0, 0.5, 0.25]),
            Vector::new(vec![0.0, 0.0, 0.0]),
            Vector::new(vec![4.0, -4.0, 1.0]),
        ]
    }

    #[test]
    fn rows_and_norms_match_the_vectors() {
        let vs = vectors();
        let store = EmbeddingStore::from_vectors(&vs);
        assert_eq!(store.len(), 4);
        assert_eq!(store.dim(), 3);
        assert!(!store.is_empty());
        for (i, v) in vs.iter().enumerate() {
            assert_eq!(store.row(i), v.as_slice());
            assert_eq!(store.norm(i), v.norm());
        }
    }

    #[test]
    fn cached_distance_matches_the_reference_path() {
        let vs = vectors();
        let store = EmbeddingStore::from_vectors(&vs);
        for metric in [Distance::Cosine, Distance::Euclidean, Distance::Manhattan] {
            for i in 0..vs.len() {
                for j in 0..vs.len() {
                    let cached = store.distance(metric, i, j);
                    let reference = metric.between(&vs[i], &vs[j]);
                    assert!(
                        (cached - reference).abs() <= 1e-6,
                        "{metric:?} {i},{j}: {cached} vs {reference}"
                    );
                }
            }
        }
    }

    #[test]
    fn cross_store_and_external_vector_distances_agree() {
        let vs = vectors();
        let (left, right) = vs.split_at(2);
        let ls = EmbeddingStore::from_vectors(left);
        let rs = EmbeddingStore::from_vectors(right);
        for metric in [Distance::Cosine, Distance::Euclidean, Distance::Manhattan] {
            for (i, lv) in left.iter().enumerate() {
                for (j, rv) in right.iter().enumerate() {
                    let reference = metric.between(lv, rv);
                    let cross = ls.cross_distance(metric, i, &rs, j);
                    // Every kernel entry point computes the identical value;
                    // all are within 1e-6 of the reference path.
                    assert_eq!(
                        cross.to_bits(),
                        ls.distance_to_vector(metric, i, rv).to_bits()
                    );
                    assert!((cross - reference).abs() <= 1e-6, "{metric:?} {i},{j}");
                }
            }
        }
    }

    #[test]
    fn normalized_view_is_close_and_handles_zero_rows() {
        let vs = vectors();
        let store = EmbeddingStore::from_vectors(&vs);
        let view = store.normalized_view();
        assert_eq!(view.len(), 4);
        for i in 0..vs.len() {
            for j in 0..vs.len() {
                let exact = Distance::Cosine.between(&vs[i], &vs[j]);
                let fast = view.cosine_distance(i, j);
                assert!((exact - fast).abs() < 1e-6, "{i},{j}: {exact} vs {fast}");
            }
        }
        // zero row: similarity convention 0 => distance 1
        assert_eq!(view.cosine_distance(2, 0), 1.0);
    }

    #[test]
    fn max_cosine_similarity_matches_a_scan() {
        let vs = vectors();
        let store = EmbeddingStore::from_vectors(&vs);
        let probe = Vector::new(vec![1.0, 1.0, 0.0]);
        let expected = vs
            .iter()
            .map(|v| crate::distance::cosine_similarity(v, &probe))
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((store.max_cosine_similarity(&probe) - expected).abs() <= 1e-6);
        assert_eq!(
            EmbeddingStore::from_vectors(&[]).max_cosine_similarity(&probe),
            f64::NEG_INFINITY
        );
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mixed_dimensions_panic() {
        let _ =
            EmbeddingStore::from_vectors(&[Vector::new(vec![1.0]), Vector::new(vec![1.0, 2.0])]);
    }

    #[test]
    fn empty_store() {
        let store = EmbeddingStore::from_vectors(&[]);
        assert!(store.is_empty());
        assert_eq!(store.dim(), 0);
        assert!(store.normalized_view().is_empty());
    }

    #[test]
    fn push_matches_construction() {
        let vs = vectors();
        let built = EmbeddingStore::from_vectors(&vs);
        let mut pushed = EmbeddingStore::from_vectors(&[]);
        for v in &vs {
            pushed.push(v);
        }
        assert_eq!(pushed.len(), built.len());
        assert_eq!(pushed.dim(), built.dim());
        assert_eq!(pushed.num_live(), built.num_live());
        for metric in [Distance::Cosine, Distance::Euclidean, Distance::Manhattan] {
            for i in 0..vs.len() {
                assert_eq!(pushed.norm(i), built.norm(i));
                for j in 0..vs.len() {
                    assert_eq!(
                        pushed.distance(metric, i, j).to_bits(),
                        built.distance(metric, i, j).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn tombstones_track_liveness_without_moving_rows() {
        let vs = vectors();
        let mut store = EmbeddingStore::from_vectors(&vs);
        store.remove_row(1);
        assert_eq!(store.len(), 4, "tombstoning keeps physical rows");
        assert_eq!(store.num_live(), 3);
        assert!(!store.is_live(1));
        assert!(store.is_live(0) && store.is_live(2) && store.is_live(3));
        assert_eq!(store.live_indices().collect::<Vec<_>>(), vec![0, 2, 3]);
        assert!(!store.is_live(4), "out-of-range rows are not live");
        // surviving rows keep their indices and exact values
        for i in [0usize, 2, 3] {
            assert_eq!(store.row(i), vs[i].as_slice());
        }
        assert!(!store.should_compact(), "1 dead vs 3 live: below threshold");
        store.remove_row(3);
        assert!(store.should_compact(), "2 dead vs 2 live: at threshold");
    }

    #[test]
    #[should_panic(expected = "removed twice")]
    fn double_remove_panics() {
        let mut store = EmbeddingStore::from_vectors(&vectors());
        store.remove_row(0);
        store.remove_row(0);
    }

    #[test]
    fn compaction_is_bit_identical_and_remaps() {
        let vs = vectors();
        let mut store = EmbeddingStore::from_vectors(&vs);
        let reference = store.clone();
        store.remove_row(0);
        store.remove_row(2);
        let remap = store.compact();
        assert_eq!(remap, vec![None, Some(0), None, Some(1)]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.num_live(), 2);
        assert!(!store.should_compact());
        // distances among survivors are bit-identical to the pre-removal
        // store (rows, norms, and inverse norms moved verbatim)
        let survivors = [1usize, 3];
        for metric in [Distance::Cosine, Distance::Euclidean, Distance::Manhattan] {
            for (new_i, &old_i) in survivors.iter().enumerate() {
                assert_eq!(store.norm(new_i), reference.norm(old_i));
                for (new_j, &old_j) in survivors.iter().enumerate() {
                    assert_eq!(
                        store.distance(metric, new_i, new_j).to_bits(),
                        reference.distance(metric, old_i, old_j).to_bits()
                    );
                }
            }
        }
        // compacting an all-live store is the identity remap
        let mut dense = EmbeddingStore::from_vectors(&vs);
        assert_eq!(dense.compact(), vec![Some(0), Some(1), Some(2), Some(3)]);
        assert_eq!(dense.len(), 4);
    }

    #[test]
    fn remove_all_then_repopulate() {
        let vs = vectors();
        let mut store = EmbeddingStore::from_vectors(&vs[..2]);
        store.remove_row(0);
        store.remove_row(1);
        assert_eq!(store.num_live(), 0);
        assert!(store.should_compact());
        let remap = store.compact();
        assert_eq!(remap, vec![None, None]);
        assert!(store.is_empty());
        // a re-add lands at index 0 and is indistinguishable from a fresh
        // single-row store
        store.push(&vs[3]);
        let fresh = EmbeddingStore::from_vectors(&vs[3..4]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.row(0), fresh.row(0));
        assert_eq!(store.norm(0), fresh.norm(0));
    }
}
