//! Principal component analysis via power iteration with deflation.
//!
//! Used to regenerate Fig. 2 (2-D projection of table vs tuple embeddings)
//! and to compute spread statistics of embedding clouds.

use crate::vector::Vector;

/// Result of a PCA fit: the mean and the top principal axes.
#[derive(Debug, Clone)]
pub struct Pca {
    mean: Vector,
    components: Vec<Vector>,
    explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit `k` principal components to the data (rows are observations).
    ///
    /// Returns `None` when `data` is empty. `k` is clamped to the data
    /// dimensionality.
    pub fn fit(data: &[Vector], k: usize) -> Option<Pca> {
        let n = data.len();
        if n == 0 {
            return None;
        }
        let dim = data[0].dim();
        let k = k.min(dim);
        let mean = Vector::mean(data.iter()).expect("non-empty data");
        let centered: Vec<Vec<f64>> = data
            .iter()
            .map(|v| {
                v.as_slice()
                    .iter()
                    .zip(mean.as_slice())
                    .map(|(a, m)| (*a - *m) as f64)
                    .collect()
            })
            .collect();

        let mut components = Vec::with_capacity(k);
        let mut explained = Vec::with_capacity(k);
        // Working copy that gets deflated after each extracted component.
        let mut work = centered;
        for comp_idx in 0..k {
            let (axis, variance) = dominant_axis(&work, dim, comp_idx as u64);
            if variance <= 1e-12 {
                break;
            }
            // Deflate: remove the projection on the found axis.
            for row in &mut work {
                let proj: f64 = row.iter().zip(&axis).map(|(a, b)| a * b).sum();
                for (r, a) in row.iter_mut().zip(&axis) {
                    *r -= proj * a;
                }
            }
            components.push(Vector::new(axis.iter().map(|v| *v as f32).collect()));
            explained.push(variance);
        }
        Some(Pca {
            mean,
            components,
            explained_variance: explained,
        })
    }

    /// Number of extracted components.
    pub fn num_components(&self) -> usize {
        self.components.len()
    }

    /// Variance explained by each extracted component (descending).
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Project a vector onto the principal axes.
    pub fn transform(&self, v: &Vector) -> Vec<f64> {
        let centered: Vec<f64> = v
            .as_slice()
            .iter()
            .zip(self.mean.as_slice())
            .map(|(a, m)| (*a - *m) as f64)
            .collect();
        self.components
            .iter()
            .map(|axis| {
                centered
                    .iter()
                    .zip(axis.as_slice())
                    .map(|(a, b)| a * (*b as f64))
                    .sum()
            })
            .collect()
    }

    /// Project a batch of vectors.
    pub fn transform_all(&self, data: &[Vector]) -> Vec<Vec<f64>> {
        data.iter().map(|v| self.transform(v)).collect()
    }
}

/// Power iteration for the dominant axis of centered data; returns the unit
/// axis and the variance along it.
fn dominant_axis(centered: &[Vec<f64>], dim: usize, seed: u64) -> (Vec<f64>, f64) {
    let n = centered.len();
    // Deterministic pseudo-random start vector.
    let mut axis: Vec<f64> = (0..dim)
        .map(|i| {
            let x = crate::hashing::splitmix64(seed.wrapping_mul(31).wrapping_add(i as u64 + 1));
            (x >> 11) as f64 / (1u64 << 53) as f64 - 0.5
        })
        .collect();
    normalize(&mut axis);
    let mut variance = 0.0;
    for _ in 0..100 {
        // v <- C * axis, computed as sum_i x_i (x_i . axis) / n
        let mut next = vec![0.0; dim];
        for row in centered {
            let proj: f64 = row.iter().zip(&axis).map(|(a, b)| a * b).sum();
            for (nx, r) in next.iter_mut().zip(row) {
                *nx += proj * r;
            }
        }
        for nx in &mut next {
            *nx /= n as f64;
        }
        let norm = normalize(&mut next);
        let delta: f64 = next
            .iter()
            .zip(&axis)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        axis = next;
        variance = norm;
        if delta < 1e-10 {
            break;
        }
    }
    (axis, variance)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if norm > 1e-15 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_data() -> Vec<Vector> {
        // points along the direction (1, 2) plus tiny noise in (2, -1)
        (0..50)
            .map(|i| {
                let t = i as f32 / 10.0;
                let noise = ((i % 5) as f32 - 2.0) * 0.01;
                Vector::new(vec![t + 2.0 * noise, 2.0 * t - noise])
            })
            .collect()
    }

    #[test]
    fn first_component_captures_dominant_direction() {
        let pca = Pca::fit(&line_data(), 2).unwrap();
        assert!(pca.num_components() >= 1);
        let axis = &pca.explained_variance();
        assert!(axis[0] > 1.0);
        if axis.len() > 1 {
            assert!(axis[0] > axis[1] * 10.0, "dominant axis should dominate");
        }
    }

    #[test]
    fn transform_separates_far_points() {
        let data = line_data();
        let pca = Pca::fit(&data, 2).unwrap();
        let p0 = pca.transform(&data[0]);
        let p_last = pca.transform(&data[49]);
        assert!((p0[0] - p_last[0]).abs() > 1.0);
        assert_eq!(pca.transform_all(&data).len(), 50);
    }

    #[test]
    fn empty_data_returns_none() {
        assert!(Pca::fit(&[], 2).is_none());
    }

    #[test]
    fn constant_data_has_no_variance() {
        let data = vec![Vector::new(vec![1.0, 1.0]); 10];
        let pca = Pca::fit(&data, 2).unwrap();
        assert_eq!(pca.num_components(), 0);
    }

    #[test]
    fn k_is_clamped_to_dimension() {
        let data = line_data();
        let pca = Pca::fit(&data, 10).unwrap();
        assert!(pca.num_components() <= 2);
    }
}
