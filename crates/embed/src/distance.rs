//! Tuple distance functions (δ in the paper).
//!
//! The paper uses cosine distance throughout (matching the cosine-embedding
//! training loss) and notes that Manhattan and Euclidean distances give the
//! same relative ordering of the baselines; all three are provided.

use crate::vector::Vector;
use serde::{Deserialize, Serialize};

/// The distance function used to compare tuple embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Distance {
    /// `1 - cos(a, b)`, in `[0, 2]`. The paper's default.
    #[default]
    Cosine,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
}

impl Distance {
    /// Distance between two vectors.
    pub fn between(&self, a: &Vector, b: &Vector) -> f64 {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch in distance");
        match self {
            Distance::Cosine => 1.0 - cosine_similarity(a, b),
            Distance::Euclidean => a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
                .sqrt(),
            Distance::Manhattan => a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| ((x - y) as f64).abs())
                .sum::<f64>(),
        }
    }

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Distance::Cosine => "cosine",
            Distance::Euclidean => "euclidean",
            Distance::Manhattan => "manhattan",
        }
    }
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0 similarity.
pub fn cosine_similarity(a: &Vector, b: &Vector) -> f64 {
    let na = a.norm() as f64;
    let nb = b.norm() as f64;
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (a.dot(b) as f64 / (na * nb)).clamp(-1.0, 1.0)
}

/// Symmetric pairwise distance matrix over a slice of vectors.
///
/// The matrix is stored densely (row-major, `n × n`); diagonal entries are 0.
#[derive(Debug, Clone)]
pub struct DistanceMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DistanceMatrix {
    /// Compute the full pairwise matrix for `vectors` under `distance`.
    pub fn compute(vectors: &[Vector], distance: Distance) -> Self {
        let n = vectors.len();
        let mut data = vec![0.0; n * n];
        for i in 0..n {
            for j in (i + 1)..n {
                let d = distance.between(&vectors[i], &vectors[j]);
                data[i * n + j] = d;
                data[j * n + i] = d;
            }
        }
        DistanceMatrix { n, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[i * self.n + j]
    }

    /// Average distance between all unordered pairs (0 for fewer than 2 points).
    pub fn average(&self) -> f64 {
        if self.n < 2 {
            return 0.0;
        }
        let mut sum = 0.0;
        let mut count = 0usize;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                sum += self.get(i, j);
                count += 1;
            }
        }
        sum / count as f64
    }

    /// Minimum distance between distinct points (`f64::INFINITY` for < 2 points).
    pub fn minimum(&self) -> f64 {
        let mut min = f64::INFINITY;
        for i in 0..self.n {
            for j in (i + 1)..self.n {
                min = min.min(self.get(i, j));
            }
        }
        min
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: &[f32]) -> Vector {
        Vector::new(c.to_vec())
    }

    #[test]
    fn cosine_distance_properties() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        let d = Distance::Cosine;
        assert!((d.between(&a, &a)).abs() < 1e-9);
        assert!((d.between(&a, &b) - 1.0).abs() < 1e-9);
        let opposite = v(&[-1.0, 0.0]);
        assert!((d.between(&a, &opposite) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn euclidean_and_manhattan() {
        let a = v(&[0.0, 0.0]);
        let b = v(&[3.0, 4.0]);
        assert!((Distance::Euclidean.between(&a, &b) - 5.0).abs() < 1e-9);
        assert!((Distance::Manhattan.between(&a, &b) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn zero_vector_cosine_is_maximally_distant_from_everything_unitary() {
        let z = Vector::zeros(3);
        let a = v(&[1.0, 0.0, 0.0]);
        assert_eq!(cosine_similarity(&z, &a), 0.0);
        assert!((Distance::Cosine.between(&z, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = v(&[0.3, 0.7, 0.1]);
        let b = v(&[0.9, 0.2, 0.4]);
        for d in [Distance::Cosine, Distance::Euclidean, Distance::Manhattan] {
            assert!((d.between(&a, &b) - d.between(&b, &a)).abs() < 1e-9);
            assert!(d.between(&a, &b) >= 0.0);
        }
    }

    #[test]
    fn matrix_statistics() {
        let pts = vec![v(&[0.0, 0.0]), v(&[1.0, 0.0]), v(&[0.0, 2.0])];
        let m = DistanceMatrix::compute(&pts, Distance::Euclidean);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.minimum(), 1.0);
        let expected_avg = (1.0 + 2.0 + 5.0_f64.sqrt()) / 3.0;
        assert!((m.average() - expected_avg).abs() < 1e-9);
    }

    #[test]
    fn empty_and_singleton_matrices() {
        let m = DistanceMatrix::compute(&[], Distance::Cosine);
        assert!(m.is_empty());
        assert_eq!(m.average(), 0.0);
        let m1 = DistanceMatrix::compute(&[v(&[1.0])], Distance::Cosine);
        assert_eq!(m1.average(), 0.0);
        assert_eq!(m1.minimum(), f64::INFINITY);
    }

    #[test]
    fn distance_names() {
        assert_eq!(Distance::Cosine.name(), "cosine");
        assert_eq!(Distance::Euclidean.name(), "euclidean");
        assert_eq!(Distance::Manhattan.name(), "manhattan");
    }
}
