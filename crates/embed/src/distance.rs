//! Tuple distance functions (δ in the paper) and the workspace's single
//! pairwise-distance implementation.
//!
//! The paper uses cosine distance throughout (matching the cosine-embedding
//! training loss) and notes that Manhattan and Euclidean distances give the
//! same relative ordering of the baselines; all three are provided.
//!
//! [`Distance::between`] is the *reference* path: per-call norms, strictly
//! sequential accumulation, kept deliberately simple so property tests can
//! compare the optimized kernels against an independent implementation.
//! Hot paths go through [`EmbeddingStore`] (cached norms, vectorizable
//! kernels) and [`PairwiseMatrix`], which materializes the condensed
//! upper-triangle matrix once — in parallel row chunks for large inputs —
//! so every downstream stage (pruning, clustering, medoids, GMC/CLT
//! scoring, re-ranking) shares the same cache instead of recomputing.
//! Cached results are within 1e-6 of the reference path.

use crate::store::EmbeddingStore;
use crate::vector::Vector;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The distance function used to compare tuple embeddings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Distance {
    /// `1 - cos(a, b)`, in `[0, 2]`. The paper's default.
    #[default]
    Cosine,
    /// Euclidean (L2) distance.
    Euclidean,
    /// Manhattan (L1) distance.
    Manhattan,
}

impl Distance {
    /// Distance between two vectors — the reference path (norms computed
    /// per call, sequential accumulation). Prefer an [`EmbeddingStore`] or
    /// [`PairwiseMatrix`] on hot paths.
    pub fn between(&self, a: &Vector, b: &Vector) -> f64 {
        assert_eq!(a.dim(), b.dim(), "dimension mismatch in distance");
        match self {
            Distance::Cosine => 1.0 - cosine_similarity(a, b),
            Distance::Euclidean => a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| ((x - y) as f64).powi(2))
                .sum::<f64>()
                .sqrt(),
            Distance::Manhattan => a
                .as_slice()
                .iter()
                .zip(b.as_slice())
                .map(|(x, y)| ((x - y) as f64).abs())
                .sum::<f64>(),
        }
    }

    /// Human-readable name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Distance::Cosine => "cosine",
            Distance::Euclidean => "euclidean",
            Distance::Manhattan => "manhattan",
        }
    }
}

/// Cosine similarity in `[-1, 1]`; zero vectors yield 0 similarity.
/// Reference path (see [`Distance::between`]).
pub fn cosine_similarity(a: &Vector, b: &Vector) -> f64 {
    let na = a.norm() as f64;
    let nb = b.norm() as f64;
    if na < 1e-12 || nb < 1e-12 {
        return 0.0;
    }
    (a.dot(b) as f64 / (na * nb)).clamp(-1.0, 1.0)
}

/// Minimum number of pairs before the matrix build fans out to threads;
/// below this the thread setup costs more than it saves.
const PARALLEL_PAIR_THRESHOLD: usize = 32_768;

/// Symmetric pairwise distance matrix in condensed (upper-triangle) storage:
/// `n · (n − 1) / 2` entries, diagonal implicitly 0.
///
/// This is the only pairwise-distance implementation in the workspace;
/// agglomerative clustering, silhouette scoring, medoid selection, and the
/// diversification algorithms all read from (copies of) it.
///
/// Entries are stored as `f32`: it halves the memory traffic of the O(n²)
/// scans that dominate clustering and GMC, and tuple distances are derived
/// from `f32` embeddings, so the rounding (≤ 1e-7 relative) stays far
/// inside the workspace-wide 1e-6 agreement bound with the reference path.
#[derive(Debug, Clone, Default)]
pub struct PairwiseMatrix {
    n: usize,
    data: Vec<f32>,
}

impl PairwiseMatrix {
    /// Compute the matrix for `vectors` under `metric` (builds a temporary
    /// [`EmbeddingStore`] for cached norms).
    pub fn compute(vectors: &[Vector], metric: Distance) -> Self {
        Self::from_store(&EmbeddingStore::from_vectors(vectors), metric)
    }

    /// Compute the matrix over all rows of `store`, in parallel row chunks
    /// for large inputs.
    pub fn from_store(store: &EmbeddingStore, metric: Distance) -> Self {
        Self::build_from_store(store, None, metric)
    }

    /// Compute the matrix over `subset` (indices into `store`): entry
    /// `(r, c)` is the distance between `store[subset[r]]` and
    /// `store[subset[c]]`.
    pub fn from_store_subset(store: &EmbeddingStore, subset: &[usize], metric: Distance) -> Self {
        Self::build_from_store(store, Some(subset), metric)
    }

    /// Store-backed builder. The metric dispatch is hoisted out of the pair
    /// loops (each metric monomorphizes its own fill), the left row is
    /// derived once per row, and the right rows stream through a contiguous
    /// chunk iterator in the no-subset case. Parallel over rows above
    /// [`PARALLEL_PAIR_THRESHOLD`].
    fn build_from_store(
        store: &EmbeddingStore,
        subset: Option<&[usize]>,
        metric: Distance,
    ) -> Self {
        match metric {
            Distance::Cosine => Self::build_with(store, subset, |a, inv_a, b, inv_b| {
                crate::store::kernel(Distance::Cosine, a, inv_a, b, inv_b)
            }),
            Distance::Euclidean => Self::build_with(store, subset, |a, inv_a, b, inv_b| {
                crate::store::kernel(Distance::Euclidean, a, inv_a, b, inv_b)
            }),
            Distance::Manhattan => Self::build_with(store, subset, |a, inv_a, b, inv_b| {
                crate::store::kernel(Distance::Manhattan, a, inv_a, b, inv_b)
            }),
        }
    }

    fn build_with<F>(store: &EmbeddingStore, subset: Option<&[usize]>, pair: F) -> Self
    where
        F: Fn(&[f32], f64, &[f32], f64) -> f64 + Sync,
    {
        let n = subset.map(<[usize]>::len).unwrap_or_else(|| store.len());
        let pairs = condensed_len(n);
        let fill_row = |i: usize, row: &mut [f32]| {
            let si = subset.map(|s| s[i]).unwrap_or(i);
            let (ri, inv_i) = (store.row(si), store.inv_norm(si));
            match subset {
                None => {
                    // rows i+1.. are contiguous: stream them chunk by chunk
                    for ((slot, rj), j) in row.iter_mut().zip(store.rows_from(i + 1)).zip(i + 1..) {
                        *slot = pair(ri, inv_i, rj, store.inv_norm(j)) as f32;
                    }
                }
                Some(s) => {
                    for (offset, slot) in row.iter_mut().enumerate() {
                        let sj = s[i + 1 + offset];
                        *slot = pair(ri, inv_i, store.row(sj), store.inv_norm(sj)) as f32;
                    }
                }
            }
        };
        let mut data = vec![0.0f32; pairs];
        if pairs < PARALLEL_PAIR_THRESHOLD || rayon::current_num_threads() <= 1 {
            let mut rest = data.as_mut_slice();
            for i in 0..n.saturating_sub(1) {
                let (row, tail) = rest.split_at_mut(n - 1 - i);
                fill_row(i, row);
                rest = tail;
            }
            return PairwiseMatrix { n, data };
        }
        let mut rows: Vec<(usize, &mut [f32])> = Vec::with_capacity(n.saturating_sub(1));
        let mut rest = data.as_mut_slice();
        for i in 0..n.saturating_sub(1) {
            let (row, tail) = rest.split_at_mut(n - 1 - i);
            rows.push((i, row));
            rest = tail;
        }
        rows.into_par_iter().for_each(|(i, row)| fill_row(i, row));
        PairwiseMatrix { n, data }
    }

    /// Build an `n × n` matrix from an arbitrary symmetric pair function,
    /// serially (used by tests and naive-path baselines).
    pub fn from_fn(n: usize, pair: impl Fn(usize, usize) -> f64) -> Self {
        let mut data = vec![0.0f32; condensed_len(n)];
        let mut idx = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                data[idx] = pair(i, j) as f32;
                idx += 1;
            }
        }
        PairwiseMatrix { n, data }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the matrix holds no points.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Distance between points `i` and `j` (0 on the diagonal).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        if i == j {
            return 0.0;
        }
        self.data[self.index(i, j)] as f64
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j, "condensed matrix has no diagonal entries");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        a * self.n - a * (a + 1) / 2 + (b - a - 1)
    }

    /// Visit every unordered pair `(i, j, d)` with `i < j` in one linear
    /// pass over the condensed buffer — no per-element index arithmetic.
    /// This is the fast path for full-matrix scans (e.g. GMC's max-distance
    /// pass).
    pub fn for_each_pair(&self, mut f: impl FnMut(usize, usize, f64)) {
        let mut idx = 0usize;
        for i in 0..self.n.saturating_sub(1) {
            for j in (i + 1)..self.n {
                f(i, j, self.data[idx] as f64);
                idx += 1;
            }
        }
    }

    /// Average distance between all unordered pairs (0 for fewer than 2 points).
    pub fn average(&self) -> f64 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().map(|&d| d as f64).sum::<f64>() / self.data.len() as f64
    }

    /// Minimum distance between distinct points (`f64::INFINITY` for < 2 points).
    pub fn minimum(&self) -> f64 {
        self.data
            .iter()
            .map(|&d| d as f64)
            .fold(f64::INFINITY, f64::min)
    }

    /// The raw condensed buffer (row-major over `i < j` pairs). Exposed so
    /// clustering can seed its working copy with one memcpy.
    pub fn condensed_data(&self) -> &[f32] {
        &self.data
    }
}

#[inline]
fn condensed_len(n: usize) -> usize {
    n * n.saturating_sub(1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(c: &[f32]) -> Vector {
        Vector::new(c.to_vec())
    }

    #[test]
    fn cosine_distance_properties() {
        let a = v(&[1.0, 0.0]);
        let b = v(&[0.0, 1.0]);
        let d = Distance::Cosine;
        assert!((d.between(&a, &a)).abs() < 1e-9);
        assert!((d.between(&a, &b) - 1.0).abs() < 1e-9);
        let opposite = v(&[-1.0, 0.0]);
        assert!((d.between(&a, &opposite) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn euclidean_and_manhattan() {
        let a = v(&[0.0, 0.0]);
        let b = v(&[3.0, 4.0]);
        assert!((Distance::Euclidean.between(&a, &b) - 5.0).abs() < 1e-9);
        assert!((Distance::Manhattan.between(&a, &b) - 7.0).abs() < 1e-9);
    }

    #[test]
    fn zero_vector_cosine_is_maximally_distant_from_everything_unitary() {
        let z = Vector::zeros(3);
        let a = v(&[1.0, 0.0, 0.0]);
        assert_eq!(cosine_similarity(&z, &a), 0.0);
        assert!((Distance::Cosine.between(&z, &a) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = v(&[0.3, 0.7, 0.1]);
        let b = v(&[0.9, 0.2, 0.4]);
        for d in [Distance::Cosine, Distance::Euclidean, Distance::Manhattan] {
            assert!((d.between(&a, &b) - d.between(&b, &a)).abs() < 1e-9);
            assert!(d.between(&a, &b) >= 0.0);
        }
    }

    #[test]
    fn matrix_statistics() {
        let pts = vec![v(&[0.0, 0.0]), v(&[1.0, 0.0]), v(&[0.0, 2.0])];
        let m = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        assert_eq!(m.len(), 3);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 1), 0.0);
        assert_eq!(m.minimum(), 1.0);
        let expected_avg = (1.0 + 2.0 + 5.0_f64.sqrt()) / 3.0;
        assert!((m.average() - expected_avg).abs() < 1e-6);
    }

    #[test]
    fn empty_and_singleton_matrices() {
        let m = PairwiseMatrix::compute(&[], Distance::Cosine);
        assert!(m.is_empty());
        assert_eq!(m.average(), 0.0);
        let m1 = PairwiseMatrix::compute(&[v(&[1.0])], Distance::Cosine);
        assert_eq!(m1.average(), 0.0);
        assert_eq!(m1.minimum(), f64::INFINITY);
    }

    #[test]
    fn parallel_build_matches_serial_build_bit_for_bit() {
        // Large enough to cross PARALLEL_PAIR_THRESHOLD (n = 300 -> 44 850
        // pairs); the parallel build must match the serial kernel path
        // exactly, and the reference `Distance::between` path within 1e-6.
        let pts: Vec<Vector> = (0..300)
            .map(|i| {
                let x = (i as f32 * 0.77).sin();
                let y = (i as f32 * 0.33).cos();
                v(&[x, y, x * y])
            })
            .collect();
        let store = EmbeddingStore::from_vectors(&pts);
        for metric in [Distance::Cosine, Distance::Euclidean, Distance::Manhattan] {
            let parallel = PairwiseMatrix::compute(&pts, metric);
            let serial = PairwiseMatrix::from_fn(pts.len(), |i, j| store.distance(metric, i, j));
            for i in 0..pts.len() {
                for j in (i + 1)..pts.len() {
                    assert_eq!(
                        parallel.get(i, j).to_bits(),
                        serial.get(i, j).to_bits(),
                        "{metric:?} {i},{j}"
                    );
                    let reference = metric.between(&pts[i], &pts[j]);
                    assert!(
                        (parallel.get(i, j) - reference).abs() <= 1e-6,
                        "{metric:?} {i},{j}"
                    );
                }
            }
        }
    }

    #[test]
    fn for_each_pair_visits_every_pair_in_order() {
        let pts: Vec<Vector> = (0..12)
            .map(|i| v(&[i as f32 * 0.7, (i as f32).cos()]))
            .collect();
        let m = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        let mut seen = 0usize;
        m.for_each_pair(|i, j, d| {
            assert!(i < j);
            assert_eq!(d.to_bits(), m.get(i, j).to_bits());
            seen += 1;
        });
        assert_eq!(seen, pts.len() * (pts.len() - 1) / 2);
    }

    #[test]
    fn subset_matrix_reads_the_right_rows() {
        let pts = vec![v(&[0.0]), v(&[1.0]), v(&[5.0]), v(&[9.0])];
        let store = EmbeddingStore::from_vectors(&pts);
        let sub = PairwiseMatrix::from_store_subset(&store, &[1, 3], Distance::Euclidean);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.get(0, 1), 8.0);
    }

    #[test]
    fn distance_names() {
        assert_eq!(Distance::Cosine.name(), "cosine");
        assert_eq!(Distance::Euclidean.name(), "euclidean");
        assert_eq!(Distance::Manhattan.name(), "manhattan");
    }
}
