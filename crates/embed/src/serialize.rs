//! Tuple serialization (Sec. 4, "Serialization").
//!
//! A tuple `t` with columns `c1..cn` and values `v1..vn` is serialized as
//!
//! ```text
//! [CLS] c1 v1 [SEP] c2 v2 [SEP] ... [SEP] cn vn [SEP]
//! ```
//!
//! Null values are skipped entirely (Example 4: a tuple missing the
//! `Supervisor` value serializes only its present columns), and when a
//! column ordering is supplied (the query table's column order after
//! alignment) the serialization follows it.

use dust_table::Tuple;

/// The special classifier token.
pub const CLS: &str = "[CLS]";
/// The special separator token.
pub const SEP: &str = "[SEP]";

/// Options controlling tuple serialization.
#[derive(Debug, Clone, PartialEq)]
pub struct SerializeOptions {
    /// Include column headers before each value (the paper's default).
    pub include_headers: bool,
    /// Optional explicit column order (header names); columns not listed are
    /// omitted. When `None`, the tuple's own column order is used.
    pub column_order: Option<Vec<String>>,
}

impl Default for SerializeOptions {
    fn default() -> Self {
        SerializeOptions {
            include_headers: true,
            column_order: None,
        }
    }
}

/// Serialize a tuple as described in Sec. 4 of the paper.
pub fn serialize_tuple(tuple: &Tuple, options: &SerializeOptions) -> String {
    let mut parts: Vec<String> = vec![CLS.to_string()];
    let mut first = true;
    let emit = |parts: &mut Vec<String>, first: &mut bool, header: &str, value: &str| {
        if !*first {
            parts.push(SEP.to_string());
        }
        *first = false;
        if options.include_headers {
            parts.push(header.to_string());
        }
        parts.push(value.to_string());
    };
    match &options.column_order {
        Some(order) => {
            for header in order {
                if let Some(v) = tuple.value_for(header) {
                    if !v.is_null() {
                        emit(&mut parts, &mut first, header, &v.render());
                    }
                }
            }
        }
        None => {
            for (header, value) in tuple.non_null_pairs() {
                emit(&mut parts, &mut first, header, &value.render());
            }
        }
    }
    parts.push(SEP.to_string());
    parts.join(" ")
}

/// Serialize with default options.
pub fn serialize_default(tuple: &Tuple) -> String {
    serialize_tuple(tuple, &SerializeOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_table::Value;

    fn chippewa() -> Tuple {
        Tuple::new(
            vec![
                "Park Name".into(),
                "City".into(),
                "Country".into(),
                "Supervisor".into(),
            ],
            vec![
                Value::text("Chippewa Park"),
                Value::text("Brandon, MN"),
                Value::text("USA"),
                Value::Null,
            ],
            "table_d",
            0,
        )
    }

    #[test]
    fn serialization_matches_paper_example() {
        let t = Tuple::new(
            vec![
                "Park Name".into(),
                "Supervisor".into(),
                "City".into(),
                "Country".into(),
            ],
            vec![
                Value::text("River Park"),
                Value::text("Vera Onate"),
                Value::text("Fresno"),
                Value::text("USA"),
            ],
            "query",
            0,
        );
        let s = serialize_default(&t);
        assert_eq!(
            s,
            "[CLS] Park Name River Park [SEP] Supervisor Vera Onate [SEP] City Fresno [SEP] Country USA [SEP]"
        );
    }

    #[test]
    fn nulls_are_skipped() {
        let s = serialize_default(&chippewa());
        assert!(!s.contains("Supervisor"));
        assert_eq!(
            s,
            "[CLS] Park Name Chippewa Park [SEP] City Brandon, MN [SEP] Country USA [SEP]"
        );
    }

    #[test]
    fn explicit_column_order_is_respected() {
        let opts = SerializeOptions {
            include_headers: true,
            column_order: Some(vec!["Country".into(), "Park Name".into()]),
        };
        let s = serialize_tuple(&chippewa(), &opts);
        assert_eq!(s, "[CLS] Country USA [SEP] Park Name Chippewa Park [SEP]");
    }

    #[test]
    fn headers_can_be_omitted() {
        let opts = SerializeOptions {
            include_headers: false,
            column_order: None,
        };
        let s = serialize_tuple(&chippewa(), &opts);
        assert_eq!(s, "[CLS] Chippewa Park [SEP] Brandon, MN [SEP] USA [SEP]");
    }

    #[test]
    fn empty_tuple_serializes_to_cls_sep() {
        let t = Tuple::new(vec!["a".into()], vec![Value::Null], "t", 0);
        assert_eq!(serialize_default(&t), "[CLS] [SEP]");
    }

    #[test]
    fn column_order_ignores_unknown_headers() {
        let opts = SerializeOptions {
            include_headers: true,
            column_order: Some(vec!["Nope".into(), "Country".into()]),
        };
        let s = serialize_tuple(&chippewa(), &opts);
        assert_eq!(s, "[CLS] Country USA [SEP]");
    }
}
