//! Pipeline results and stage timings.

use dust_align::Alignment;
use dust_diversify::DiversityScores;
use dust_table::Tuple;
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Wall-clock time spent in each stage of Algorithm 1.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct StageTimings {
    /// `SearchTables` duration in seconds.
    pub search_secs: f64,
    /// `AlignColumns` (+ outer union) duration in seconds.
    pub align_secs: f64,
    /// `EmbedTuples` duration in seconds (including fine-tuning when the
    /// pipeline trains a model).
    pub embed_secs: f64,
    /// `DiversifyTuples` duration in seconds.
    pub diversify_secs: f64,
}

impl StageTimings {
    /// Total pipeline time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.search_secs + self.align_secs + self.embed_secs + self.diversify_secs
    }

    /// Record a duration into a stage field.
    pub(crate) fn record(field: &mut f64, duration: Duration) {
        *field = duration.as_secs_f64();
    }
}

/// The result of one DUST pipeline run.
#[derive(Debug, Clone)]
pub struct DustResult {
    /// The k selected diverse unionable tuples (under the query header).
    pub tuples: Vec<Tuple>,
    /// Names of the unionable tables retrieved by the search step.
    pub retrieved_tables: Vec<String>,
    /// Retrieved table names whose lake lookup failed (stale index entries,
    /// tables dropped between indexing and serving). These silently shrank
    /// the candidate pool before; now every drop is recorded so callers can
    /// alert on a lake/index skew instead of quietly returning less.
    pub dropped_tables: Vec<String>,
    /// The column alignment used for the outer union.
    pub alignment: Alignment,
    /// Number of unionable tuples produced by the outer union (before
    /// diversification).
    pub candidate_tuples: usize,
    /// Diversity scores of the selected set (Sec. 5.4 metrics).
    pub diversity: DiversityScores,
    /// Per-stage wall-clock timings.
    pub timings: StageTimings,
}

impl DustResult {
    /// Number of selected tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True when no tuples were selected.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True when every retrieved table resolved in the lake (no stale
    /// index entries were dropped).
    pub fn is_complete(&self) -> bool {
        self.dropped_tables.is_empty()
    }

    /// How many selected tuples are novel with respect to the query table
    /// (their deduplication key does not appear among the query tuples).
    pub fn novel_tuple_count(&self, query_tuples: &[Tuple]) -> usize {
        let query_keys: std::collections::HashSet<String> =
            query_tuples.iter().map(|t| t.dedup_key()).collect();
        self.tuples
            .iter()
            .filter(|t| !query_keys.contains(&t.dedup_key()))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_table::Value;

    fn tuple(name: &str) -> Tuple {
        Tuple::new(vec!["Park Name".into()], vec![Value::text(name)], "t", 0)
    }

    #[test]
    fn timings_total() {
        let timings = StageTimings {
            search_secs: 1.0,
            align_secs: 2.0,
            embed_secs: 3.0,
            diversify_secs: 4.0,
        };
        assert_eq!(timings.total_secs(), 10.0);
        let mut field = 0.0;
        StageTimings::record(&mut field, Duration::from_millis(250));
        assert!((field - 0.25).abs() < 1e-9);
    }

    #[test]
    fn novelty_counting() {
        let result = DustResult {
            tuples: vec![tuple("River Park"), tuple("Chippewa Park")],
            retrieved_tables: vec![],
            dropped_tables: vec![],
            alignment: Alignment::default(),
            candidate_tuples: 2,
            diversity: DiversityScores {
                average: 0.0,
                minimum: 0.0,
            },
            timings: StageTimings::default(),
        };
        let query = vec![tuple("River Park")];
        assert_eq!(result.novel_tuple_count(&query), 1);
        assert_eq!(result.len(), 2);
        assert!(!result.is_empty());
        assert!(result.is_complete());
        let mut skewed = result;
        skewed.dropped_tables.push("stale_table".into());
        assert!(!skewed.is_complete());
    }
}
