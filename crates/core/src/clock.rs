//! The one sanctioned wall-clock read in the library crates.
//!
//! Query results and snapshot bytes are pure functions of the lake: the
//! `no-wall-clock` dust-lint rule (and the clippy `disallowed-methods`
//! list) ban `Instant::now`/`SystemTime` everywhere outside
//! `crates/bench`. Diagnostic stage timings still need a monotonic
//! clock, so they route through this module — a single auditable
//! chokepoint that makes "time never reaches an output byte" a
//! greppable claim instead of a hope.

use std::time::Instant;

/// A monotonic timestamp for diagnostic timings (stage durations,
/// load/assemble telemetry). Never feed the result into ranked output
/// or encoded bytes.
#[allow(clippy::disallowed_methods)] // the sanctioned chokepoint itself
pub fn now() -> Instant {
    Instant::now()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_monotonic() {
        let a = now();
        let b = now();
        assert!(b >= a);
    }
}
