//! The resident serving layer: embed a lake **once**, serve **many**
//! queries — and mutate the lake **incrementally**, without ever blocking
//! a reader.
//!
//! Algorithm 1 as written re-pays lake-side work on every query: the
//! inverted value index (or the full-lake Starmie/D3L column-embedding
//! pass) is rebuilt per query, and the fine-tuned DUST tuple model is
//! retrained per query. The paper's deployment story is the opposite shape
//! — many queries against one slowly-changing lake — so [`LakeSession`]
//! hoists everything query-independent out of the per-query path:
//!
//! * **per-shard embedding stores** — every lake tuple and every lake
//!   column embedded once into [`EmbeddingStore`]s, sharded by a stable
//!   hash of the owning table's name (so splitting shards across hosts is
//!   a configuration change, not a redesign);
//! * **persistent candidate structures** — whichever structures the
//!   configured search technique needs ([`InvertedValueIndex`], Starmie
//!   contextualized column stores, D3L per-column signal embeddings),
//!   built at session construction;
//! * **one shared model** — the tuple embedder ([`DustModel`] or
//!   [`TupleEncoder`]) is constructed/trained once and reused by every
//!   query.
//!
//! [`LakeSession::query`] then runs the *identical* stage code as
//! [`DustPipeline::run`] (both call `pipeline::run_query`), so a
//! session-served result is byte-identical to a fresh pipeline run —
//! pinned by `tests/session_equivalence.rs`. [`LakeSession::query_batch`]
//! fans independent queries out over the rayon shim.
//!
//! ## Generation snapshots: reads never block on writes
//!
//! All lake-derived resident state lives in an immutable
//! `SessionSnapshot` behind an `Arc`-swapped pointer. A reader takes a
//! momentary lock only to **clone the `Arc`** (O(1), never held across
//! any work), then serves entirely from that pinned snapshot. A mutation
//! takes `&self` too: it serializes against other mutations on a writer
//! mutex, builds the **next** snapshot off to the side — cloning only the
//! `Arc`s of untouched shards and rebuilding just the FNV-owning one —
//! and atomically publishes it. Consequences, pinned by
//! `tests/session_concurrency.rs`:
//!
//! * queries and mutations interleave freely; an in-flight `add_table`
//!   never stalls a `query`, `similar_*`, or `stats` call;
//! * every query observes exactly one lake version, and the
//!   [`LakeSession::generation`] it reports is a real consistency token:
//!   the result is bit-identical to a fresh [`LakeSession::new`] over the
//!   lake at that generation;
//! * [`LakeSession::view`] pins a generation explicitly, so a caller can
//!   run many reads against one consistent version while mutations
//!   publish newer ones;
//! * a panicking batch worker surfaces as a typed
//!   [`SessionError::QueryPanicked`] in its own slot — it cannot poison
//!   shared state (snapshots are immutable; every internal lock recovers
//!   poison) and the rest of the batch still serves.
//!
//! ## Mutating the lake
//!
//! A slowly-changing lake must not pay a full session rebuild per added or
//! dropped table. [`LakeSession::add_table`] and
//! [`LakeSession::remove_table`] apply **per-shard deltas** instead:
//!
//! * the mutation routes to the FNV-owning shard — an add embeds only the
//!   new table's tuples and appends them to that shard's store; a remove
//!   tombstones that shard's rows ([`EmbeddingStore::remove_row`]) and
//!   physically compacts once dead rows reach live rows (the same halving
//!   rule as the clustering workspace compaction);
//! * the search technique's candidate structures update by exact per-table
//!   deltas — [`InvertedValueIndex`] postings are sets, Starmie/D3L column
//!   stores are keyed per table with no cross-table float aggregate, so a
//!   delta produces structures *structurally equal* to a fresh build;
//! * the lake-wide TF-IDF column corpus updates by **integer** document-
//!   frequency deltas (`TfIdfCorpus::remove_document` — exact, no
//!   floating-point subtraction anywhere), and the corpus-dependent column
//!   embeddings (every column's embedding depends on every table through
//!   IDF) are re-derived **lazily**, on the next
//!   [`LakeSession::similar_columns`] / [`LakeSession::stats`] call
//!   against the new snapshot — built *off* every lock through the same
//!   path as construction, so column readers of older generations never
//!   wait on the rebuild;
//! * a fine-tuned session retrains its (lake-derived, deterministically
//!   seeded) model and re-embeds the tuple shards — the documented
//!   recompute fallback: training is a function of the whole lake, so no
//!   exact delta exists. Sessions with an *injected* model
//!   ([`LakeSession::with_model`]) keep it: the model is not lake-derived.
//!
//! The headline guarantee, enforced by `tests/session_mutation.rs` rather
//! than prose: after **any** mutation sequence, `query` /
//! `similar_tuples` / `similar_columns` results are bit-identical to a
//! fresh [`LakeSession::new`] on the mutated lake.
//!
//! [`DustPipeline::run`]: crate::pipeline::DustPipeline
//! [`DustPipeline`]: crate::pipeline::DustPipeline
//! [`SessionError::QueryPanicked`]: crate::persist::SessionError::QueryPanicked

use crate::config::{PipelineConfig, SearchTechnique, TupleEmbedderKind};
use crate::persist::SessionError;
use crate::pipeline::run_query;
use crate::result::DustResult;
use dust_embed::{
    desc_nan_last, ColumnEncoder, Distance, DustModel, EmbeddingStore, TfIdfCorpus, TupleEncoder,
    Vector,
};
use dust_search::{
    D3lSearch, D3lSignalStats, InvertedValueIndex, OverlapSearch, StarmieColumnStore, StarmieSearch,
};
use dust_table::{Column, DataLake, Table, TableError, TableId, Tuple};
use rayon::prelude::*;
use std::collections::VecDeque;
use std::ops::Deref;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError, RwLock};

/// Construction options for a [`LakeSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    /// Number of embedding shards the lake is split into (by table-name
    /// hash). One shard is fine on a single host; more shards keep the
    /// layout ready for a multi-host split without re-embedding.
    pub num_shards: usize,
    /// Number of *previous* published generations retained for
    /// [`LakeSession::view_at`] pinned reads (the current generation is
    /// always servable on top of these). Near-free under structural
    /// sharing: a retained snapshot holds `Arc`s into its successors, so
    /// the marginal cost is one changed shard/table per mutation. `0`
    /// disables history — only the current generation can be pinned.
    pub history: usize,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions {
            num_shards: 4,
            history: 8,
        }
    }
}

/// One embedding shard: the tuples of the lake tables whose name hashes
/// into this shard, packed into a contiguous [`EmbeddingStore`]. After a
/// [`LakeSession::remove_table`] the store may carry tombstoned rows until
/// the next compaction; `tuple_refs` stays parallel to the *physical* rows,
/// so provenance lookups never need adjusting between compactions.
#[derive(Debug, Clone)]
pub struct LakeShard {
    /// Names of the member tables, in insertion order (construction inserts
    /// in lake name order; later [`LakeSession::add_table`] calls append).
    pub(crate) tables: Vec<TableId>,
    pub(crate) tuple_store: EmbeddingStore,
    /// `(table, row)` per tuple-store row, parallel to the store
    /// (tombstoned rows keep their stale entry until compaction). The
    /// table name is a shared `Arc<str>` — one allocation per member
    /// table, so cloning the owning shard on a mutation bumps refcounts
    /// instead of reallocating a string per row.
    pub(crate) tuple_refs: Vec<(Arc<str>, usize)>,
}

impl LakeShard {
    /// Names of the lake tables assigned to this shard.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// The shard's resident tuple embeddings.
    pub fn tuple_store(&self) -> &EmbeddingStore {
        &self.tuple_store
    }

    /// `(table, row)` provenance of tuple-store row `i`.
    pub fn tuple_ref(&self, i: usize) -> (&str, usize) {
        let (table, row) = &self.tuple_refs[i];
        (table, *row)
    }
}

/// One shard of resident column embeddings (the corpus-dependent side:
/// every column embedding depends on every table through IDF, so these are
/// rebuilt per generation, lazily, rather than delta-maintained).
#[derive(Debug)]
pub(crate) struct ColumnShard {
    pub(crate) store: EmbeddingStore,
    /// `(table, column header)` per store row (the header is captured at
    /// build time so serving a hit never needs a lake lookup).
    pub(crate) refs: Vec<(TableId, String)>,
}

/// The persistent candidate structures of the configured search technique.
#[derive(Debug, Clone)]
pub(crate) enum SearchStructures {
    Overlap {
        search: OverlapSearch,
        index: InvertedValueIndex,
    },
    D3l {
        search: D3lSearch,
        index: InvertedValueIndex,
        stats: D3lSignalStats,
    },
    Starmie {
        search: StarmieSearch,
        store: StarmieColumnStore,
    },
}

impl SearchStructures {
    /// Apply the exact per-table delta for an added table.
    fn add_table(&mut self, table: &Table) {
        match self {
            SearchStructures::Overlap { index, .. } => index.add_table(table),
            SearchStructures::D3l {
                search,
                index,
                stats,
            } => {
                index.add_table(table);
                stats.add_table(table, search);
            }
            SearchStructures::Starmie { search, store } => store.add_table(table, search),
        }
    }

    /// Apply the exact per-table delta for a removed table (the caller
    /// passes the removed [`Table`] because the inverted index holds no
    /// per-table value lists to subtract from).
    fn remove_table(&mut self, table: &Table) {
        match self {
            SearchStructures::Overlap { index, .. } => index.remove_table(table),
            SearchStructures::D3l { index, stats, .. } => {
                index.remove_table(table);
                stats.remove_table(table.name());
            }
            SearchStructures::Starmie { store, .. } => {
                store.remove_table(table.name());
            }
        }
    }

    /// Record the pointer identity of every per-table / per-value shared
    /// payload into `out` (see [`SessionView::sharing_fingerprint`]).
    fn sharing_fingerprint(
        &self,
        lake: &DataLake,
        out: &mut std::collections::BTreeMap<String, usize>,
    ) {
        fn postings(
            index: &InvertedValueIndex,
            out: &mut std::collections::BTreeMap<String, usize>,
        ) {
            for (value, set) in index.postings_shared() {
                out.insert(format!("posting:{value}"), Arc::as_ptr(set) as usize);
            }
        }
        match self {
            SearchStructures::Overlap { index, .. } => postings(index, out),
            SearchStructures::D3l { index, stats, .. } => {
                postings(index, out);
                for (id, _) in lake.tables_shared() {
                    if let Some(block) = stats.embeddings_shared(id) {
                        out.insert(format!("columns:{id}"), Arc::as_ptr(block) as usize);
                    }
                }
            }
            SearchStructures::Starmie { store, .. } => {
                for (id, _) in lake.tables_shared() {
                    if let Some(block) = store.embeddings_shared(id) {
                        out.insert(format!("columns:{id}"), Arc::as_ptr(block) as usize);
                    }
                }
            }
        }
    }
}

/// The session's shared tuple embedder (constructed/trained once).
#[derive(Debug)]
pub(crate) enum SessionEmbedder {
    Model(DustModel),
    Encoder(TupleEncoder),
}

impl SessionEmbedder {
    fn embed_tuple(&self, tuple: &Tuple) -> Vector {
        match self {
            SessionEmbedder::Model(m) => m.embed_tuple(tuple),
            SessionEmbedder::Encoder(e) => e.embed_tuple(tuple),
        }
    }
}

/// One immutable generation of resident state. Readers pin a snapshot
/// (cheap `Arc` clone) and serve from it; mutations build the *next*
/// snapshot off to the side and publish it atomically. Nothing in here is
/// ever written after publication — the lazily-built column side included:
/// its `OnceLock` initializes at most once, off every lock.
#[derive(Debug)]
pub(crate) struct SessionSnapshot {
    /// Number of successful mutations between [`LakeSession`] construction
    /// and this snapshot.
    pub(crate) generation: u64,
    pub(crate) lake: DataLake,
    pub(crate) embedder: Arc<SessionEmbedder>,
    pub(crate) search: Arc<SearchStructures>,
    /// Untouched shards are shared with the previous generation by `Arc`;
    /// a mutation rebuilds only the FNV-owning shard.
    pub(crate) shards: Vec<Arc<LakeShard>>,
    /// The lake-wide TF-IDF corpus, maintained by exact integer deltas.
    pub(crate) corpus: TfIdfCorpus,
    /// Column embeddings under `corpus`, built lazily on first column read
    /// of this generation (construction and restore pre-fill it). Built
    /// through the same path as construction, so the lazy result is
    /// bit-identical to a fresh session's.
    pub(crate) columns: OnceLock<Arc<Vec<ColumnShard>>>,
}

impl SessionSnapshot {
    /// The column side, built on first use (off every session lock —
    /// concurrent first readers of the same generation may wait on each
    /// other here, but never on a mutation, and never block tuple reads).
    fn columns(&self, encoder: &ColumnEncoder) -> Arc<Vec<ColumnShard>> {
        // dust-lint: lock(columns-once)
        self.columns
            .get_or_init(|| {
                Arc::new(build_column_shards(
                    &self.lake,
                    self.shards.len(),
                    encoder,
                    &self.corpus,
                ))
            })
            .clone()
    }
}

/// A ranked lake tuple returned by [`LakeSession::similar_tuples`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTuple {
    /// Owning lake table.
    pub table: TableId,
    /// Row inside the owning table.
    pub row: usize,
    /// Maximum cosine similarity to any query tuple.
    pub score: f64,
}

/// A ranked lake column returned by [`LakeSession::similar_columns`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankedColumn {
    /// Owning lake table.
    pub table: TableId,
    /// Column header.
    pub column: String,
    /// Cosine similarity to the probe column.
    pub score: f64,
}

/// Size and shape of a session's resident state (for logs and the `serve`
/// binary's startup banner). Counts are of **live** rows: tombstoned tuple
/// rows awaiting compaction are excluded.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Number of lake tables embedded.
    pub tables: usize,
    /// Total resident (live) tuple embeddings.
    pub tuples: usize,
    /// Total resident column embeddings.
    pub columns: usize,
    /// Number of embedding shards.
    pub shards: usize,
    /// `(tables, live tuples)` per shard.
    pub shard_sizes: Vec<(usize, usize)>,
    /// Dead (tombstoned, not yet compacted) tuple rows per shard.
    pub shard_dead: Vec<usize>,
    /// Tuple embedding dimensionality.
    pub tuple_dim: usize,
    /// Column embedding dimensionality.
    pub column_dim: usize,
    /// Wall-clock seconds spent building the session.
    pub build_secs: f64,
}

/// A resident lake session: construct once, serve many queries
/// concurrently, mutate incrementally — queries never block on an
/// in-flight mutation (see the module docs for the snapshot and
/// delta/rebuild contracts).
#[derive(Debug)]
pub struct LakeSession {
    pub(crate) config: PipelineConfig,
    pub(crate) options: SessionOptions,
    pub(crate) aligner_encoder: ColumnEncoder,
    /// An injected ([`Self::with_model`]) embedder is not lake-derived and
    /// is therefore kept across mutations; a config-trained fine-tuned
    /// model *is* lake-derived and must be retrained (recompute fallback).
    pub(crate) model_injected: bool,
    /// The currently-published snapshot. The lock is held only for the
    /// instant of an `Arc` clone (readers) or an `Arc` swap (the one
    /// publishing mutation) — never across embedding, search, or I/O work.
    current: RwLock<Arc<SessionSnapshot>>,
    /// Serializes mutations against each other (readers never touch it).
    mutate: Mutex<()>,
    /// Previously-published snapshots, oldest first, bounded by
    /// [`Self::history_depth`]. Pushed on every publish (near-free: each
    /// retained snapshot shares all unchanged structure with its successor
    /// by `Arc`), served by [`Self::view_at`]. Starts empty on restore —
    /// history is in-memory only, never persisted.
    history: Mutex<VecDeque<Arc<SessionSnapshot>>>,
    /// Retention depth for `history` (0 = current generation only).
    /// Atomic so a restored session — whose persisted manifest carries no
    /// history depth — can be re-tuned without `&mut`.
    history_depth: AtomicUsize,
    pub(crate) build_secs: f64,
}

/// A pinned borrow of the session's lake at one generation, returned by
/// [`LakeSession::lake`]. Dereferences to [`DataLake`]; a later mutation
/// publishes a *new* snapshot and leaves this one untouched, so the
/// borrow stays valid and consistent for as long as it is held.
#[derive(Debug)]
pub struct LakeRef {
    snap: Arc<SessionSnapshot>,
}

impl Deref for LakeRef {
    type Target = DataLake;

    fn deref(&self) -> &DataLake {
        &self.snap.lake
    }
}

/// A read view pinned to one generation of a [`LakeSession`].
///
/// Every read on the parent session ([`LakeSession::query`],
/// [`LakeSession::similar_tuples`], …) internally takes a fresh view; take
/// one explicitly to run **many** reads against a single consistent
/// generation while mutations publish newer ones, or to correlate a
/// result with the exact generation that produced it
/// ([`SessionView::generation`]). A view holds only `Arc`s — it never
/// blocks mutations, and dropping it releases the pinned state.
#[derive(Debug)]
pub struct SessionView<'a> {
    session: &'a LakeSession,
    snap: Arc<SessionSnapshot>,
}

impl LakeSession {
    /// Build a session over a lake with default options. Pre-embeds every
    /// lake tuple and column, builds the configured search technique's
    /// candidate structures, and (for a fine-tuning configuration) trains
    /// the DUST tuple model — all exactly once.
    pub fn new(lake: DataLake, config: PipelineConfig) -> Self {
        Self::with_options(lake, config, SessionOptions::default())
    }

    /// [`Self::new`] with explicit [`SessionOptions`].
    pub fn with_options(lake: DataLake, config: PipelineConfig, options: SessionOptions) -> Self {
        let embedder = match &config.embedder {
            TupleEmbedderKind::Pretrained(backbone) => {
                SessionEmbedder::Encoder(TupleEncoder::new(*backbone))
            }
            TupleEmbedderKind::FineTuned {
                backbone,
                config: ft_config,
                training_pairs,
            } => {
                // The identical training run DustPipeline::run performs per
                // query (same shared recipe, deterministic), performed once
                // per session instead.
                SessionEmbedder::Model(crate::pipeline::train_dust_model(
                    &lake,
                    *backbone,
                    ft_config,
                    *training_pairs,
                ))
            }
        };
        Self::assemble(lake, config, options, embedder, false)
    }

    /// Build a session that embeds tuples with an already-trained model
    /// (mirrors [`crate::pipeline::DustPipeline::with_model`]). The model
    /// is treated as external: mutations never retrain it.
    pub fn with_model(lake: DataLake, config: PipelineConfig, model: DustModel) -> Self {
        Self::assemble(
            lake,
            config,
            SessionOptions::default(),
            SessionEmbedder::Model(model),
            true,
        )
    }

    fn assemble(
        lake: DataLake,
        config: PipelineConfig,
        options: SessionOptions,
        embedder: SessionEmbedder,
        model_injected: bool,
    ) -> Self {
        let start = crate::clock::now();
        let num_shards = options.num_shards.max(1);
        let aligner_encoder =
            ColumnEncoder::new(config.alignment_model, config.alignment_serialization);

        // Persistent candidate structures for the configured technique.
        // Each searcher is the same `::new()` default the one-shot pipeline
        // constructs per query, so resident results match fresh ones.
        let search = match config.search {
            SearchTechnique::Overlap => SearchStructures::Overlap {
                search: OverlapSearch::new(),
                index: InvertedValueIndex::build(&lake),
            },
            SearchTechnique::D3l => {
                let search = D3lSearch::new();
                let stats = D3lSignalStats::build(&lake, &search);
                SearchStructures::D3l {
                    search,
                    index: InvertedValueIndex::build(&lake),
                    stats,
                }
            }
            SearchTechnique::Starmie => {
                let search = StarmieSearch::new();
                let store = StarmieColumnStore::build(&lake, &search);
                SearchStructures::Starmie { search, store }
            }
        };

        let shards = build_tuple_shards(&lake, num_shards, &embedder)
            .into_iter()
            .map(Arc::new)
            .collect();
        let corpus = ColumnEncoder::build_corpus(lake.tables().flat_map(|t| t.columns().iter()));
        let column_shards = build_column_shards(&lake, num_shards, &aligner_encoder, &corpus);
        let columns = OnceLock::new();
        let _ = columns.set(Arc::new(column_shards));

        LakeSession {
            config,
            options: SessionOptions {
                num_shards,
                ..options
            },
            aligner_encoder,
            model_injected,
            current: RwLock::new(Arc::new(SessionSnapshot {
                generation: 0,
                lake,
                embedder: Arc::new(embedder),
                search: Arc::new(search),
                shards,
                corpus,
                columns,
            })),
            mutate: Mutex::new(()),
            history: Mutex::new(VecDeque::new()),
            history_depth: AtomicUsize::new(options.history),
            build_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// Reassemble a session from restored (snapshot-decoded) parts — the
    /// persistence layer's constructor, bypassing embedding and training.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_restored(
        lake: DataLake,
        config: PipelineConfig,
        options: SessionOptions,
        aligner_encoder: ColumnEncoder,
        embedder: SessionEmbedder,
        model_injected: bool,
        search: SearchStructures,
        shards: Vec<LakeShard>,
        corpus: TfIdfCorpus,
        column_shards: Vec<ColumnShard>,
        generation: u64,
        build_secs: f64,
    ) -> Self {
        let columns = OnceLock::new();
        let _ = columns.set(Arc::new(column_shards));
        LakeSession {
            config,
            options,
            aligner_encoder,
            model_injected,
            current: RwLock::new(Arc::new(SessionSnapshot {
                generation,
                lake,
                embedder: Arc::new(embedder),
                search: Arc::new(search),
                shards: shards.into_iter().map(Arc::new).collect(),
                corpus,
                columns,
            })),
            mutate: Mutex::new(()),
            history: Mutex::new(VecDeque::new()),
            history_depth: AtomicUsize::new(options.history),
            build_secs,
        }
    }

    /// The currently-published snapshot (an O(1) `Arc` clone; the lock is
    /// released before this returns). Poison is recovered everywhere the
    /// pointer lock is taken: the guarded value is always a fully-formed
    /// `Arc`, so a panic elsewhere can never leave it half-written.
    fn snapshot(&self) -> Arc<SessionSnapshot> {
        // dust-lint: lock(session-current)
        self.current
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Atomically publish the next generation, retaining the displaced
    /// snapshot in the bounded history ring (evicting the oldest past the
    /// configured depth). The pointer lock is released before the history
    /// lock is taken — readers are never behind both.
    fn publish(&self, next: SessionSnapshot) {
        let next = Arc::new(next);
        let prev = {
            // dust-lint: lock(session-current)
            let mut current = self.current.write().unwrap_or_else(PoisonError::into_inner);
            std::mem::replace(&mut *current, next)
        };
        let depth = self.history_depth.load(Ordering::Relaxed);
        // dust-lint: lock(session-history)
        let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        history.push_back(prev);
        while history.len() > depth {
            history.pop_front();
        }
    }

    /// Pin the current generation and return a read view over it. All
    /// reads through the view observe one consistent lake version no
    /// matter how many mutations publish in the meantime.
    pub fn view(&self) -> SessionView<'_> {
        SessionView {
            session: self,
            snap: self.snapshot(),
        }
    }

    /// Pin a **specific** generation and return a read view over it — the
    /// current generation, or any of the last [`Self::history_depth`]
    /// published ones still in the history ring. Reads through the view
    /// are bit-identical to a fresh session built over that generation's
    /// lake (pinned by `tests/session_concurrency.rs`). A generation
    /// outside the window — evicted, or never published — yields a typed
    /// [`SessionError::GenerationEvicted`] (`kind() ==
    /// "generation_evicted"`), never a panic.
    pub fn view_at(&self, generation: u64) -> Result<SessionView<'_>, SessionError> {
        let snap = self.snapshot();
        let newest = snap.generation;
        if generation == newest {
            return Ok(SessionView {
                session: self,
                snap,
            });
        }
        let oldest = {
            // dust-lint: lock(session-history)
            let history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(hit) = history.iter().rev().find(|s| s.generation == generation) {
                return Ok(SessionView {
                    session: self,
                    snap: hit.clone(),
                });
            }
            history.front().map(|s| s.generation).unwrap_or(newest)
        };
        Err(SessionError::GenerationEvicted {
            requested: generation,
            oldest,
            newest,
        })
    }

    /// The configured history retention depth (how many *previous*
    /// generations [`Self::view_at`] can pin).
    pub fn history_depth(&self) -> usize {
        self.history_depth.load(Ordering::Relaxed)
    }

    /// Re-tune the history retention depth at runtime, trimming the ring
    /// immediately if shrunk. A restored session starts with the default
    /// depth and an empty ring (history is never persisted); the serving
    /// layer calls this to apply its `--history` flag.
    pub fn set_history_depth(&self, depth: usize) {
        self.history_depth.store(depth, Ordering::Relaxed);
        // dust-lint: lock(session-history)
        let mut history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        while history.len() > depth {
            history.pop_front();
        }
    }

    /// The pinnable window right now: `(oldest, newest, retained)` where
    /// `oldest..=newest` are the generations [`Self::view_at`] can serve
    /// and `retained` counts the ring entries (excluding the current
    /// generation, which is always servable).
    pub fn history_window(&self) -> (u64, u64, usize) {
        let newest = self.generation();
        // dust-lint: lock(session-history)
        let history = self.history.lock().unwrap_or_else(PoisonError::into_inner);
        let oldest = history.front().map(|s| s.generation).unwrap_or(newest);
        (oldest, newest, history.len())
    }

    /// The resident lake at the current generation. The returned handle
    /// dereferences to [`DataLake`] and pins its snapshot: it stays valid
    /// and self-consistent even if mutations publish newer generations
    /// while it is held.
    pub fn lake(&self) -> LakeRef {
        LakeRef {
            snap: self.snapshot(),
        }
    }

    /// The pipeline configuration this session serves.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of embedding shards.
    pub fn num_shards(&self) -> usize {
        self.options.num_shards
    }

    /// Shard `i` of the current generation (panics out of range). The
    /// returned `Arc` keeps that shard version alive across later
    /// mutations.
    pub fn shard(&self, i: usize) -> Arc<LakeShard> {
        self.snapshot().shards[i].clone()
    }

    /// Which shard a table's embeddings live in (stable across processes:
    /// FNV-1a on the table name, not the std `RandomState`).
    pub fn shard_of(&self, table: &str) -> usize {
        shard_of(table, self.options.num_shards)
    }

    /// Number of successful mutations ([`Self::add_table`] /
    /// [`Self::remove_table`]) applied since construction. Failed
    /// mutations leave it — and every resident structure — untouched.
    /// Every read observes exactly one generation; pin one explicitly
    /// with [`Self::view`] to correlate results with lake versions.
    pub fn generation(&self) -> u64 {
        self.snapshot().generation
    }

    /// Persist the whole session — embeddings, candidate structures,
    /// trained model, lake — as a checksummed snapshot (plus a fresh,
    /// empty write-ahead log) in `dir`, replacing any snapshot already
    /// there. [`Self::open`] restores it bit-identically without re-paying
    /// the embed/index/train cost. To keep logging mutations durably after
    /// saving, hold a [`crate::persist::SnapshotStore`] instead.
    pub fn save(&self, dir: &std::path::Path) -> Result<(), crate::persist::PersistError> {
        crate::persist::SnapshotStore::create(dir, self).map(|_| ())
    }

    /// Restore a session from a snapshot directory written by
    /// [`Self::save`] (or by a [`crate::persist::SnapshotStore`]): load the
    /// snapshot, then replay any write-ahead-log records through the
    /// incremental mutation paths. The restored session serves results
    /// **bit-identical** to the session that was saved — and therefore to
    /// a fresh [`LakeSession::new`] over the same lake (pinned by
    /// `tests/session_recovery.rs`). A damaged snapshot or log yields a
    /// typed [`crate::persist::PersistError`], never a panic; callers fall
    /// back to rebuilding from the lake.
    pub fn open(dir: &std::path::Path) -> Result<LakeSession, crate::persist::PersistError> {
        crate::persist::SnapshotStore::open(dir).map(|(_, session, _)| session)
    }

    /// Add a table to the lake and publish the next generation built from
    /// per-shard deltas instead of a rebuild: the new table's tuples are
    /// embedded and appended to (a copy of) its FNV-owning shard — every
    /// other shard is shared with the previous generation by `Arc` — the
    /// search technique's candidate structures take the exact per-table
    /// delta, the TF-IDF corpus takes the exact integer delta, and the
    /// corpus-dependent column embeddings are re-derived lazily. A
    /// fine-tuned session retrains its lake-derived model and re-embeds
    /// the tuple shards instead — the documented recompute fallback (see
    /// module docs). In-flight reads keep serving the previous generation
    /// throughout; they never wait.
    ///
    /// Duplicate names follow [`DataLake::add_table`]'s pinned semantics:
    /// an error, never a replace, with the session left untouched (remove
    /// first to replace). The rejection is decided **before** anything is
    /// cloned: a failed add neither bumps [`Self::generation`] nor
    /// allocates a next snapshot — the published root stays `Arc::ptr_eq`
    /// to what it was (pinned by `tests/session_sharing.rs`).
    pub fn add_table(&self, table: Table) -> Result<(), TableError> {
        // dust-lint: lock(session-mutate)
        let _mutating = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);
        let snap = self.snapshot();

        if snap.lake.table(table.name()).is_ok() {
            return Err(TableError::DuplicateTable {
                name: table.name().to_string(),
            });
        }
        let table = Arc::new(table);
        let mut lake = snap.lake.clone();
        lake.add_table_shared(table.clone())?;

        let mut search = (*snap.search).clone();
        search.add_table(&table);

        let mut corpus = snap.corpus.clone();
        for col in table.columns() {
            corpus.add_document(&ColumnEncoder::column_document_tokens(col));
        }

        let (embedder, shards) = if self.retrains_on_mutation() {
            self.retrained_state(&lake)
        } else {
            let name = table.name().to_string();
            let mut shards = snap.shards.clone();
            let idx = shard_of(&name, self.options.num_shards);
            let mut shard = (*shards[idx]).clone();
            let name_ref: Arc<str> = Arc::from(name.as_str());
            for (row, tuple) in table.tuples().iter().enumerate() {
                shard.tuple_store.push(&snap.embedder.embed_tuple(tuple));
                shard.tuple_refs.push((name_ref.clone(), row));
            }
            shard.tables.push(name);
            shards[idx] = Arc::new(shard);
            (snap.embedder.clone(), shards)
        };

        self.publish(SessionSnapshot {
            generation: snap.generation + 1,
            lake,
            embedder,
            search: Arc::new(search),
            shards,
            corpus,
            columns: OnceLock::new(),
        });
        Ok(())
    }

    /// Remove a table from the lake and publish the next generation built
    /// from per-shard deltas: the owning shard is copied with the table's
    /// rows tombstoned (and physically compacted once dead rows reach live
    /// rows) — every other shard is shared by `Arc` — the candidate
    /// structures and TF-IDF corpus take their exact inverses, and the
    /// column embeddings are re-derived lazily. Returns the removed table
    /// (as [`DataLake::remove_table`], which also scrubs ground-truth
    /// pairs naming it); errors — leaving the session untouched — if no
    /// such table exists. Like a rejected add, a missing name is decided
    /// before anything is cloned: the published root stays `Arc::ptr_eq`
    /// to what it was. In-flight reads keep serving the previous
    /// generation throughout.
    pub fn remove_table(&self, name: &str) -> Result<Table, TableError> {
        // dust-lint: lock(session-mutate)
        let _mutating = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);
        let snap = self.snapshot();

        snap.lake.table(name)?;
        let mut lake = snap.lake.clone();
        let removed = lake.remove_table(name)?;

        let mut search = (*snap.search).clone();
        search.remove_table(&removed);

        let mut corpus = snap.corpus.clone();
        for col in removed.columns() {
            corpus.remove_document(&ColumnEncoder::column_document_tokens(col));
        }

        let (embedder, shards) = if self.retrains_on_mutation() {
            self.retrained_state(&lake)
        } else {
            let mut shards = snap.shards.clone();
            let idx = shard_of(name, self.options.num_shards);
            let mut shard = (*shards[idx]).clone();
            for i in 0..shard.tuple_store.len() {
                if shard.tuple_store.is_live(i) && shard.tuple_refs[i].0.as_ref() == name {
                    shard.tuple_store.remove_row(i);
                }
            }
            shard.tables.retain(|t| t != name);
            if shard.tuple_store.should_compact() {
                let remap = shard.tuple_store.compact();
                let placeholder: Arc<str> = Arc::from("");
                let mut refs: Vec<(Arc<str>, usize)> =
                    vec![(placeholder, 0); shard.tuple_store.len()];
                for (old, slot) in remap.iter().enumerate() {
                    if let Some(new) = slot {
                        refs[*new] = shard.tuple_refs[old].clone();
                    }
                }
                shard.tuple_refs = refs;
            }
            shards[idx] = Arc::new(shard);
            (snap.embedder.clone(), shards)
        };

        self.publish(SessionSnapshot {
            generation: snap.generation + 1,
            lake,
            embedder,
            search: Arc::new(search),
            shards,
            corpus,
            columns: OnceLock::new(),
        });
        Ok(removed)
    }

    /// Whether mutations must fall back to retraining the tuple model: the
    /// model came from a fine-tuning config (lake-derived training set), not
    /// from [`Self::with_model`] injection.
    fn retrains_on_mutation(&self) -> bool {
        !self.model_injected && matches!(self.config.embedder, TupleEmbedderKind::FineTuned { .. })
    }

    /// The recompute fallback for lake-derived models: retrain on the
    /// mutated lake (the identical deterministic recipe a fresh session
    /// runs) and re-embed the tuple shards under the new model. Runs on
    /// the mutating thread, off every lock — readers of the previous
    /// generation are unaffected for the whole (expensive) rebuild.
    fn retrained_state(&self, lake: &DataLake) -> (Arc<SessionEmbedder>, Vec<Arc<LakeShard>>) {
        let embedder = match &self.config.embedder {
            TupleEmbedderKind::FineTuned {
                backbone,
                config: ft_config,
                training_pairs,
            } => SessionEmbedder::Model(crate::pipeline::train_dust_model(
                lake,
                *backbone,
                ft_config,
                *training_pairs,
            )),
            // Unreachable in practice: retrains_on_mutation() gates on a
            // fine-tuned config. Keep the encoder fallback total anyway.
            TupleEmbedderKind::Pretrained(backbone) => {
                SessionEmbedder::Encoder(TupleEncoder::new(*backbone))
            }
        };
        let shards = build_tuple_shards(lake, self.options.num_shards, &embedder)
            .into_iter()
            .map(Arc::new)
            .collect();
        (Arc::new(embedder), shards)
    }

    /// Size/shape summary of the resident state at the current generation.
    pub fn stats(&self) -> SessionStats {
        self.view().stats()
    }

    /// Serve one query against the current generation: Algorithm 1 over
    /// the resident structures. Byte-identical to
    /// `DustPipeline::new(config).run(lake, query, k)` over that
    /// generation's lake.
    pub fn query(&self, query: &Table, k: usize) -> Result<DustResult, TableError> {
        self.view().query(query, k)
    }

    /// Serve a batch of independent queries, in parallel over the rayon
    /// shim on multi-core hosts. The whole batch runs against **one**
    /// pinned generation; `results[i]` corresponds to `queries[i]` and is
    /// identical to a sequential [`Self::query`] call at that generation.
    /// A worker that panics yields a typed
    /// [`SessionError::QueryPanicked`](crate::persist::SessionError::QueryPanicked)
    /// in its own slot — the rest of the batch, and every later request,
    /// still serves.
    pub fn query_batch(
        &self,
        queries: &[Table],
        k: usize,
    ) -> Vec<Result<DustResult, SessionError>> {
        self.view().query_batch(queries, k)
    }

    /// Rank every resident lake tuple (current generation) by its maximum
    /// cosine similarity to any query tuple and return the top `k` — the
    /// tuple-as-table serving path (Sec. 6.5's retrieval shape) answered
    /// entirely from the resident shards, with no per-query lake embedding
    /// work. Tombstoned rows never score: results reflect exactly the
    /// observed lake generation.
    pub fn similar_tuples(&self, query: &Table, k: usize) -> Vec<RankedTuple> {
        self.view().similar_tuples(query, k)
    }

    /// Rank every resident lake column (current generation) by cosine
    /// similarity to a probe column (embedded under the session's
    /// alignment encoder and lake corpus) and return the top `k` —
    /// column-level discovery from the resident shards. The first column
    /// read after a mutation re-derives the column embeddings (their IDF
    /// weights depend on the whole lake) — off every lock, so concurrent
    /// tuple reads and mutations are unaffected — and results are always
    /// bit-identical to a freshly built session's.
    pub fn similar_columns(&self, probe: &Column, k: usize) -> Vec<RankedColumn> {
        self.view().similar_columns(probe, k)
    }
}

impl<'a> SessionView<'a> {
    /// The generation this view is pinned to: every read through the view
    /// reflects exactly the lake version that generation denotes.
    pub fn generation(&self) -> u64 {
        self.snap.generation
    }

    /// The pinned generation's lake.
    pub fn lake(&self) -> &DataLake {
        &self.snap.lake
    }

    /// An opaque identity for the pinned snapshot root: two views return
    /// the same value iff they pin the very same published snapshot
    /// (`Arc::ptr_eq` on the root). A failed mutation must leave the
    /// published value unchanged — same id before and after (pinned by
    /// `tests/session_sharing.rs`).
    pub fn snapshot_id(&self) -> usize {
        Arc::as_ptr(&self.snap) as usize
    }

    /// Pointer identities of every independently-shared component of the
    /// pinned snapshot, keyed by role: `lake-table:NAME` (the lake's
    /// `Arc<Table>` entries), `shard:I` (tuple shards), `columns:NAME`
    /// (per-table search-store embedding blocks), `posting:VALUE`
    /// (inverted-index posting sets), plus `embedder` and `corpus-base`.
    ///
    /// Diffing the fingerprints of generations *g* and *g+1* shows exactly
    /// what a mutation cloned: every key the mutation didn't touch must map
    /// to the same pointer in both — the structural-sharing contract pinned
    /// by `tests/session_sharing.rs`.
    pub fn sharing_fingerprint(&self) -> std::collections::BTreeMap<String, usize> {
        let mut out = std::collections::BTreeMap::new();
        for (id, table) in self.snap.lake.tables_shared() {
            out.insert(format!("lake-table:{id}"), Arc::as_ptr(table) as usize);
        }
        for (i, shard) in self.snap.shards.iter().enumerate() {
            out.insert(format!("shard:{i}"), Arc::as_ptr(shard) as usize);
        }
        out.insert(
            "embedder".to_string(),
            Arc::as_ptr(&self.snap.embedder) as usize,
        );
        out.insert(
            "corpus-base".to_string(),
            Arc::as_ptr(self.snap.corpus.base_shared()) as usize,
        );
        self.snap
            .search
            .sharing_fingerprint(&self.snap.lake, &mut out);
        out
    }

    /// The session this view was taken from.
    pub fn session(&self) -> &'a LakeSession {
        self.session
    }

    /// Shard `i` of the pinned generation (panics out of range).
    pub fn shard(&self, i: usize) -> &LakeShard {
        &self.snap.shards[i]
    }

    /// The pinned generation's candidate structures (persistence reads
    /// them segment by segment).
    pub(crate) fn search_structures(&self) -> &SearchStructures {
        &self.snap.search
    }

    /// The pinned generation's tuple embedder.
    pub(crate) fn session_embedder(&self) -> &SessionEmbedder {
        &self.snap.embedder
    }

    /// The pinned generation's tuple shards.
    pub(crate) fn shards(&self) -> &[Arc<LakeShard>] {
        &self.snap.shards
    }

    /// The pinned generation's TF-IDF corpus.
    pub(crate) fn corpus(&self) -> &TfIdfCorpus {
        &self.snap.corpus
    }

    /// The pinned generation's column side, built on first use.
    pub(crate) fn columns(&self) -> Arc<Vec<ColumnShard>> {
        self.snap.columns(&self.session.aligner_encoder)
    }

    /// [`LakeSession::stats`] at the pinned generation.
    pub fn stats(&self) -> SessionStats {
        let columns = self.columns();
        SessionStats {
            tables: self.snap.lake.num_tables(),
            tuples: self
                .snap
                .shards
                .iter()
                .map(|s| s.tuple_store.num_live())
                .sum(),
            columns: columns.iter().map(|s| s.store.len()).sum(),
            shards: self.snap.shards.len(),
            shard_sizes: self
                .snap
                .shards
                .iter()
                .map(|s| (s.tables.len(), s.tuple_store.num_live()))
                .collect(),
            shard_dead: self
                .snap
                .shards
                .iter()
                .map(|s| s.tuple_store.len() - s.tuple_store.num_live())
                .collect(),
            tuple_dim: self
                .snap
                .shards
                .iter()
                .filter(|s| s.tuple_store.num_live() > 0)
                .map(|s| s.tuple_store.dim())
                .find(|&d| d > 0)
                .unwrap_or(0),
            column_dim: columns
                .iter()
                .map(|s| s.store.dim())
                .find(|&d| d > 0)
                .unwrap_or(0),
            build_secs: self.session.build_secs,
        }
    }

    /// [`LakeSession::query`] at the pinned generation.
    pub fn query(&self, query: &Table, k: usize) -> Result<DustResult, TableError> {
        Ok(run_query(
            &self.snap.lake,
            query,
            k,
            &self.session.config,
            &self.session.aligner_encoder,
            &|lake, query| self.search_tables(lake, query),
            &|query_tuples, candidates| self.embed_tuples(query_tuples, candidates),
        ))
    }

    /// [`LakeSession::query_batch`] at the pinned generation.
    pub fn query_batch(
        &self,
        queries: &[Table],
        k: usize,
    ) -> Vec<Result<DustResult, SessionError>> {
        self.query_batch_injecting(queries, k, &|_| {})
    }

    /// [`Self::query_batch`] with a fault hook: `fault(i)` runs on the
    /// worker thread just before query `i` executes, and a panic it (or
    /// the query itself) raises is caught and surfaced as that slot's
    /// [`SessionError::QueryPanicked`](crate::persist::SessionError::QueryPanicked)
    /// — the other slots are unaffected. This is the fault-injection seam
    /// the concurrency suite drives; production callers use
    /// [`Self::query_batch`], whose hook is a no-op.
    pub fn query_batch_injecting(
        &self,
        queries: &[Table],
        k: usize,
        fault: &(dyn Fn(usize) + Sync),
    ) -> Vec<Result<DustResult, SessionError>> {
        let slots: Vec<Mutex<Option<Result<DustResult, SessionError>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let jobs: Vec<usize> = (0..queries.len()).collect();
        jobs.into_par_iter().for_each(|i| {
            // Catch the panic *inside* the worker closure: the slot below
            // is only locked after the fallible work is done, so a panic
            // can neither poison a slot nor kill the batch. The snapshot
            // is immutable, so unwinding cannot leave broken invariants
            // behind — AssertUnwindSafe is sound here.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                fault(i);
                self.query(&queries[i], k)
            }));
            let result = match outcome {
                Ok(served) => served.map_err(SessionError::from),
                Err(payload) => Err(SessionError::QueryPanicked {
                    detail: panic_detail(payload.as_ref()),
                }),
            };
            // dust-lint: lock(batch-slot)
            *slots[i].lock().unwrap_or_else(PoisonError::into_inner) = Some(result);
        });
        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                slot.into_inner()
                    .unwrap_or_else(PoisonError::into_inner)
                    .unwrap_or_else(|| {
                        // A worker that died before writing its slot (a
                        // defensive branch: catch_unwind above should make
                        // this unreachable) degrades to a per-query error,
                        // never a server-killing panic.
                        Err(SessionError::QueryPanicked {
                            detail: format!("batch worker for query {i} never reported a result"),
                        })
                    })
            })
            .collect()
    }

    /// [`LakeSession::similar_tuples`] at the pinned generation.
    pub fn similar_tuples(&self, query: &Table, k: usize) -> Vec<RankedTuple> {
        let query_embeddings: Vec<Vector> = query
            .tuples()
            .iter()
            .map(|t| self.snap.embedder.embed_tuple(t))
            .collect();
        let mut results: Vec<RankedTuple> = Vec::new();
        for shard in &self.snap.shards {
            for i in shard.tuple_store.live_indices() {
                let score = query_embeddings
                    .iter()
                    .map(|q| 1.0 - shard.tuple_store.distance_to_vector(Distance::Cosine, i, q))
                    .fold(f64::NEG_INFINITY, f64::max);
                let (table, row) = &shard.tuple_refs[i];
                results.push(RankedTuple {
                    table: table.to_string(),
                    row: *row,
                    score,
                });
            }
        }
        results.sort_by(|a, b| {
            desc_nan_last(a.score, b.score)
                .then_with(|| a.table.cmp(&b.table))
                .then_with(|| a.row.cmp(&b.row))
        });
        results.truncate(k);
        results
    }

    /// [`LakeSession::similar_columns`] at the pinned generation.
    pub fn similar_columns(&self, probe: &Column, k: usize) -> Vec<RankedColumn> {
        let columns = self.columns();
        let probe_embedding = self
            .session
            .aligner_encoder
            .embed_column(probe, &self.snap.corpus);
        let mut results: Vec<RankedColumn> = Vec::new();
        for shard in columns.iter() {
            for i in 0..shard.store.len() {
                let score = 1.0
                    - shard
                        .store
                        .distance_to_vector(Distance::Cosine, i, &probe_embedding);
                let (table, column) = shard.refs[i].clone();
                results.push(RankedColumn {
                    table,
                    column,
                    score,
                });
            }
        }
        results.sort_by(|a, b| {
            desc_nan_last(a.score, b.score)
                .then_with(|| a.table.cmp(&b.table))
                .then_with(|| a.column.cmp(&b.column))
        });
        results.truncate(k);
        results
    }

    /// The resident `SearchTables` step (same searcher defaults as the
    /// one-shot pipeline, candidate structures read from the snapshot).
    fn search_tables(&self, lake: &DataLake, query: &Table) -> Vec<String> {
        let k = self.session.config.tables_per_query;
        let results = match &*self.snap.search {
            SearchStructures::Overlap { search, index } => {
                search.search_with_index(lake, query, k, index)
            }
            SearchStructures::D3l {
                search,
                index,
                stats,
            } => search.search_with_stats(lake, query, k, index, stats),
            SearchStructures::Starmie { search, store } => {
                search.search_with_store(lake, query, k, store)
            }
        };
        results.into_iter().map(|r| r.table).collect()
    }

    /// The resident `EmbedTuples` step: one shared model/encoder for every
    /// query.
    fn embed_tuples(
        &self,
        query_tuples: &[Tuple],
        candidates: &[Tuple],
    ) -> (Vec<Vector>, Vec<Vector>) {
        match &*self.snap.embedder {
            SessionEmbedder::Model(model) => (
                model.embed_tuples(query_tuples),
                model.embed_tuples(candidates),
            ),
            SessionEmbedder::Encoder(encoder) => (
                encoder.embed_tuples(query_tuples),
                encoder.embed_tuples(candidates),
            ),
        }
    }
}

/// Render a caught panic payload for a typed error message.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Build the per-shard tuple stores from scratch — session construction
/// and the fine-tuned recompute fallback share this single path. Lake
/// tables iterate in name order (BTreeMap), so shard contents and store
/// row order are deterministic.
fn build_tuple_shards(
    lake: &DataLake,
    num_shards: usize,
    embedder: &SessionEmbedder,
) -> Vec<LakeShard> {
    let mut shard_members: Vec<Vec<&Table>> = vec![Vec::new(); num_shards];
    for table in lake.tables() {
        shard_members[shard_of(table.name(), num_shards)].push(table);
    }
    shard_members
        .into_iter()
        .map(|members| {
            let mut tuple_embeddings: Vec<Vector> = Vec::new();
            let mut tuple_refs: Vec<(Arc<str>, usize)> = Vec::new();
            for table in &members {
                let name: Arc<str> = Arc::from(table.name());
                for (row, tuple) in table.tuples().iter().enumerate() {
                    tuple_embeddings.push(embedder.embed_tuple(tuple));
                    tuple_refs.push((name.clone(), row));
                }
            }
            LakeShard {
                tables: members.iter().map(|t| t.name().to_string()).collect(),
                tuple_store: EmbeddingStore::from_vectors(&tuple_embeddings),
                tuple_refs,
            }
        })
        .collect()
}

/// Build the per-shard column stores from scratch under `corpus` — session
/// construction and the lazy per-generation refresh share this single
/// path, which is what makes a refreshed column side bit-identical to a
/// fresh session's.
fn build_column_shards(
    lake: &DataLake,
    num_shards: usize,
    encoder: &ColumnEncoder,
    corpus: &TfIdfCorpus,
) -> Vec<ColumnShard> {
    let mut shards: Vec<ColumnShard> = (0..num_shards)
        .map(|_| ColumnShard {
            store: EmbeddingStore::default(),
            refs: Vec::new(),
        })
        .collect();
    let mut embeddings: Vec<Vec<Vector>> = vec![Vec::new(); num_shards];
    for table in lake.tables() {
        let shard = shard_of(table.name(), num_shards);
        for column in table.columns() {
            embeddings[shard].push(encoder.embed_column(column, corpus));
            shards[shard]
                .refs
                .push((table.name().to_string(), column.name().to_string()));
        }
    }
    for (shard, vectors) in shards.iter_mut().zip(&embeddings) {
        shard.store = EmbeddingStore::from_vectors(vectors);
    }
    shards
}

/// Stable shard assignment: FNV-1a over the table name. The std hasher is
/// randomly seeded per process, which would scatter tables across shards
/// differently on every restart — unusable for a multi-host layout.
fn shard_of(table: &str, num_shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in table.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % num_shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_datagen::BenchmarkConfig;

    fn tiny_lake() -> DataLake {
        BenchmarkConfig::tiny().generate().lake
    }

    #[test]
    fn shard_assignment_is_stable_and_partitions_the_lake() {
        let lake = tiny_lake();
        let session = LakeSession::with_options(
            lake.clone(),
            PipelineConfig::fast(),
            SessionOptions {
                num_shards: 3,
                ..SessionOptions::default()
            },
        );
        assert_eq!(session.num_shards(), 3);
        // every lake table lands in exactly one shard, at its hash slot
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..session.num_shards() {
            for table in session.shard(i).tables() {
                assert_eq!(session.shard_of(table), i);
                assert!(seen.insert(table.clone()), "table {table} in two shards");
            }
        }
        assert_eq!(seen.len(), lake.num_tables());
        // FNV is process-independent: pin a concrete value so a hasher swap
        // cannot silently reshuffle a multi-host layout.
        assert_eq!(shard_of("parks_b", 4), shard_of("parks_b", 4));
        assert_eq!(shard_of("", 1), 0);
    }

    #[test]
    fn resident_stores_cover_every_tuple_and_column() {
        let lake = tiny_lake();
        let expected_tuples: usize = lake.tables().map(|t| t.num_rows()).sum();
        let expected_columns: usize = lake.tables().map(|t| t.num_columns()).sum();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let stats = session.stats();
        assert_eq!(stats.tuples, expected_tuples);
        assert_eq!(stats.columns, expected_columns);
        assert_eq!(stats.shards, SessionOptions::default().num_shards);
        assert!(stats.tuple_dim > 0);
        assert!(stats.column_dim > 0);
        assert!(stats.build_secs > 0.0);
        // provenance refs stay parallel to the stores
        for i in 0..session.num_shards() {
            let shard = session.shard(i);
            assert_eq!(shard.tuple_store().len(), shard.tuple_refs.len());
            if !shard.tuple_refs.is_empty() {
                let (table, row) = shard.tuple_ref(0);
                assert!(session.lake().table(table).unwrap().num_rows() > row);
            }
        }
        let view = session.view();
        for shard in view.columns().iter() {
            assert_eq!(shard.store.len(), shard.refs.len());
        }
    }

    #[test]
    fn similar_tuples_finds_an_exact_duplicate_first() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let top = session.similar_tuples(&query, 5);
        assert_eq!(top.len(), 5);
        // scores descend and stay within cosine bounds
        for pair in top.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        assert!(top[0].score <= 1.0 + 1e-9);
        // the best hit must be a genuinely similar tuple
        assert!(top[0].score > 0.5, "top score {}", top[0].score);
        // provenance resolves
        let lake = session.lake();
        let table = lake.table(&top[0].table).unwrap();
        assert!(top[0].row < table.num_rows());
        // empty k
        assert!(session.similar_tuples(&query, 0).is_empty());
    }

    #[test]
    fn similar_columns_matches_semantically_close_columns() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let probe = query.column(0).unwrap();
        let top = session.similar_columns(probe, 3);
        assert_eq!(top.len(), 3);
        for hit in &top {
            assert!(!hit.column.is_empty());
            assert!(session.lake().table(&hit.table).is_ok());
        }
        assert!(top[0].score >= top[1].score);
    }

    #[test]
    fn query_serves_from_resident_structures() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let result = session.query(&query, 4).unwrap();
        assert_eq!(result.len(), 4);
        assert!(result.is_complete());
        assert!(!result.retrieved_tables.is_empty());
    }

    #[test]
    fn batch_results_align_with_their_queries() {
        let lake = tiny_lake();
        let queries: Vec<Table> = lake
            .query_names()
            .iter()
            .take(2)
            .map(|n| lake.query(n).unwrap().clone())
            .collect();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let batch = session.query_batch(&queries, 3);
        assert_eq!(batch.len(), queries.len());
        for (query, result) in queries.iter().zip(&batch) {
            let sequential = session.query(query, 3).unwrap();
            let batched = result.as_ref().unwrap();
            assert_eq!(batched.tuples, sequential.tuples);
            assert_eq!(batched.retrieved_tables, sequential.retrieved_tables);
        }
        assert!(session.query_batch(&[], 3).is_empty());
    }

    #[test]
    fn a_panicking_batch_worker_degrades_to_a_typed_error() {
        let lake = tiny_lake();
        let queries: Vec<Table> = lake
            .query_names()
            .iter()
            .take(2)
            .map(|n| lake.query(n).unwrap().clone())
            .collect();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let view = session.view();
        let batch = view.query_batch_injecting(&queries, 3, &|i| {
            if i == 0 {
                panic!("injected fault in worker {i}");
            }
        });
        assert_eq!(batch.len(), 2);
        let err = batch[0].as_ref().unwrap_err();
        assert_eq!(err.kind(), "panic");
        assert!(err.to_string().contains("injected fault"));
        // the sibling slot served normally...
        let healthy = batch[1].as_ref().unwrap();
        let sequential = session.query(&queries[1], 3).unwrap();
        assert_eq!(healthy.tuples, sequential.tuples);
        // ...and the session is not poisoned: later requests still serve.
        let again = session.query_batch(&queries, 3);
        assert!(again.iter().all(|r| r.is_ok()));
        assert_eq!(session.stats().tables, session.lake().num_tables());
    }

    #[test]
    fn single_shard_session_still_serves() {
        let mut lake = DataLake::new("micro");
        lake.add_table(
            Table::builder("parks")
                .column("Park Name", ["River Park", "Hyde Park"])
                .column("Country", ["USA", "UK"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let query = Table::builder("q")
            .column("Park Name", ["River Park"])
            .column("Country", ["USA"])
            .build()
            .unwrap();
        let session = LakeSession::with_options(
            lake,
            PipelineConfig::fast(),
            SessionOptions {
                num_shards: 1,
                ..SessionOptions::default()
            },
        );
        let result = session.query(&query, 1).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples[0].headers(), query.headers());
    }

    #[test]
    fn add_table_applies_a_shard_local_delta() {
        let lake = tiny_lake();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let before = session.stats();
        assert_eq!(session.generation(), 0);
        let table = Table::builder("new_parks")
            .column("Park Name", ["Delta Park", "Gamma Park"])
            .column("Country", ["USA", "USA"])
            .build()
            .unwrap();
        session.add_table(table.clone()).unwrap();
        assert_eq!(session.generation(), 1);
        let after = session.stats();
        assert_eq!(after.tables, before.tables + 1);
        assert_eq!(after.tuples, before.tuples + 2);
        assert_eq!(after.columns, before.columns + 2);
        // only the owning shard grew
        let owner = session.shard_of("new_parks");
        for (i, (before_shard, after_shard)) in before
            .shard_sizes
            .iter()
            .zip(&after.shard_sizes)
            .enumerate()
        {
            if i == owner {
                assert_eq!(after_shard.1, before_shard.1 + 2);
            } else {
                assert_eq!(after_shard, before_shard, "shard {i} must not change");
            }
        }
        // the new rows serve immediately
        let top = session.similar_tuples(&table, 2);
        assert_eq!(top[0].table, "new_parks");
    }

    #[test]
    fn a_view_keeps_serving_its_pinned_generation_across_mutations() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let pinned = session.view();
        assert_eq!(pinned.generation(), 0);
        let before = pinned.query(&query, 3).unwrap();
        let before_tuples = pinned.stats().tuples;

        // mutate underneath the pinned view
        let table = Table::builder("gen_probe")
            .column("Park Name", ["Pin Park"])
            .column("Country", ["USA"])
            .build()
            .unwrap();
        session.add_table(table).unwrap();
        assert_eq!(session.generation(), 1);

        // the view still observes generation 0, bit-identically
        assert_eq!(pinned.generation(), 0);
        assert!(pinned.lake().table("gen_probe").is_err());
        assert_eq!(pinned.stats().tuples, before_tuples);
        let replay = pinned.query(&query, 3).unwrap();
        assert_eq!(replay.tuples, before.tuples);
        assert_eq!(replay.retrieved_tables, before.retrieved_tables);
        // while the session-level read path sees generation 1
        assert!(session.lake().table("gen_probe").is_ok());
    }

    #[test]
    fn duplicate_add_fails_and_leaves_the_session_untouched() {
        let lake = tiny_lake();
        let existing = lake.table_names()[0].clone();
        let session = LakeSession::new(lake.clone(), PipelineConfig::fast());
        let before = session.stats();
        let dup = Table::builder(existing.as_str())
            .column("x", ["1", "2"])
            .build()
            .unwrap();
        let err = session.add_table(dup);
        assert_eq!(
            err,
            Err(TableError::DuplicateTable {
                name: existing.clone()
            })
        );
        assert_eq!(session.generation(), 0, "failed mutations do not count");
        assert_eq!(session.stats(), before);
        // the resident table kept its original contents
        assert_eq!(
            session.lake().table(&existing).unwrap(),
            lake.table(&existing).unwrap()
        );
    }

    #[test]
    fn remove_table_tombstones_then_compacts() {
        let lake = tiny_lake();
        let session = LakeSession::with_options(
            lake.clone(),
            PipelineConfig::fast(),
            SessionOptions {
                num_shards: 1,
                ..SessionOptions::default()
            },
        );
        let names = lake.table_names();
        let total: usize = lake.tables().map(|t| t.num_rows()).sum();
        let first_rows = lake.table(&names[0]).unwrap().num_rows();
        let removed = session.remove_table(&names[0]).unwrap();
        assert_eq!(removed.name(), names[0]);
        assert_eq!(session.generation(), 1);
        assert!(session.lake().table(&names[0]).is_err());
        let stats = session.stats();
        assert_eq!(stats.tables, names.len() - 1);
        assert_eq!(stats.tuples, total - first_rows);
        // a removed table's tuples never appear again
        for hit in session.similar_tuples(&removed, 1000) {
            assert_ne!(hit.table, names[0]);
        }
        // removing a missing table errors and changes nothing
        let before = session.stats();
        assert!(session.remove_table(&names[0]).is_err());
        assert_eq!(session.generation(), 1);
        assert_eq!(session.stats(), before);
        // keep removing until the shard compacts below half, then empty it
        for name in &names[1..] {
            session.remove_table(name).unwrap();
        }
        let stats = session.stats();
        assert_eq!(stats.tables, 0);
        assert_eq!(stats.tuples, 0);
        assert_eq!(stats.columns, 0);
        assert!(session.similar_tuples(&removed, 5).is_empty());
        // the emptied session accepts new tables again
        session.add_table(removed.clone()).unwrap();
        assert_eq!(session.stats().tuples, removed.num_rows());
        assert_eq!(session.generation(), names.len() as u64 + 1);
    }

    #[test]
    fn generation_counts_only_successful_mutations() {
        let lake = tiny_lake();
        let name = lake.table_names()[0].clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        assert_eq!(session.generation(), 0);
        let removed = session.remove_table(&name).unwrap();
        assert_eq!(session.generation(), 1);
        assert!(session.remove_table(&name).is_err());
        assert_eq!(session.generation(), 1);
        session.add_table(removed).unwrap();
        assert_eq!(session.generation(), 2);
    }
}
