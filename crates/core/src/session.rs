//! The resident serving layer: embed a lake **once**, serve **many**
//! queries.
//!
//! Algorithm 1 as written re-pays lake-side work on every query: the
//! inverted value index (or the full-lake Starmie/D3L column-embedding
//! pass) is rebuilt per query, and the fine-tuned DUST tuple model is
//! retrained per query. The paper's deployment story is the opposite shape
//! — many queries against one slowly-changing lake — so [`LakeSession`]
//! hoists everything query-independent out of the per-query path:
//!
//! * **per-shard embedding stores** — every lake tuple and every lake
//!   column embedded once into [`EmbeddingStore`]s, sharded by a stable
//!   hash of the owning table's name (so splitting shards across hosts is
//!   a configuration change, not a redesign);
//! * **persistent candidate structures** — whichever structures the
//!   configured search technique needs ([`InvertedValueIndex`], Starmie
//!   contextualized column stores, D3L per-column signal embeddings),
//!   built at session construction;
//! * **one shared model** — the tuple embedder ([`DustModel`] or
//!   [`TupleEncoder`]) is constructed/trained once and reused by every
//!   query.
//!
//! [`LakeSession::query`] then runs the *identical* stage code as
//! [`DustPipeline::run`] (both call `pipeline::run_query`), so a
//! session-served result is byte-identical to a fresh pipeline run —
//! pinned by `tests/session_equivalence.rs`. [`LakeSession::query_batch`]
//! fans independent queries out over the rayon shim.
//!
//! [`DustPipeline::run`]: crate::pipeline::DustPipeline
//! [`DustPipeline`]: crate::pipeline::DustPipeline

use crate::config::{PipelineConfig, SearchTechnique, TupleEmbedderKind};
use crate::pipeline::run_query;
use crate::result::DustResult;
use dust_embed::{
    desc_nan_last, ColumnEncoder, Distance, DustModel, EmbeddingStore, TfIdfCorpus, TupleEncoder,
    Vector,
};
use dust_search::{
    D3lSearch, D3lSignalStats, InvertedValueIndex, OverlapSearch, StarmieColumnStore, StarmieSearch,
};
use dust_table::{Column, DataLake, Table, TableError, TableId, Tuple};
use rayon::prelude::*;
use std::sync::Mutex;
use std::time::Instant;

/// Construction options for a [`LakeSession`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionOptions {
    /// Number of embedding shards the lake is split into (by table-name
    /// hash). One shard is fine on a single host; more shards keep the
    /// layout ready for a multi-host split without re-embedding.
    pub num_shards: usize,
}

impl Default for SessionOptions {
    fn default() -> Self {
        SessionOptions { num_shards: 4 }
    }
}

/// One embedding shard: the tuples and columns of the lake tables whose
/// name hashes into this shard, packed into contiguous [`EmbeddingStore`]s.
#[derive(Debug, Clone)]
pub struct LakeShard {
    tables: Vec<TableId>,
    tuple_store: EmbeddingStore,
    /// `(table, row)` per tuple-store row, parallel to the store.
    tuple_refs: Vec<(TableId, usize)>,
    column_store: EmbeddingStore,
    /// `(table, column header)` per column-store row, parallel to the store
    /// (the header is captured at build time so serving a hit never needs a
    /// lake lookup).
    column_refs: Vec<(TableId, String)>,
}

impl LakeShard {
    /// Names of the lake tables assigned to this shard.
    pub fn tables(&self) -> &[TableId] {
        &self.tables
    }

    /// The shard's resident tuple embeddings.
    pub fn tuple_store(&self) -> &EmbeddingStore {
        &self.tuple_store
    }

    /// `(table, row)` provenance of tuple-store row `i`.
    pub fn tuple_ref(&self, i: usize) -> &(TableId, usize) {
        &self.tuple_refs[i]
    }

    /// The shard's resident column embeddings.
    pub fn column_store(&self) -> &EmbeddingStore {
        &self.column_store
    }

    /// `(table, column header)` provenance of column-store row `i`.
    pub fn column_ref(&self, i: usize) -> &(TableId, String) {
        &self.column_refs[i]
    }
}

/// The persistent candidate structures of the configured search technique.
#[derive(Debug)]
enum SearchStructures {
    Overlap {
        search: OverlapSearch,
        index: InvertedValueIndex,
    },
    D3l {
        search: D3lSearch,
        index: InvertedValueIndex,
        stats: D3lSignalStats,
    },
    Starmie {
        search: StarmieSearch,
        store: StarmieColumnStore,
    },
}

/// The session's shared tuple embedder (constructed/trained once).
#[derive(Debug)]
enum SessionEmbedder {
    Model(DustModel),
    Encoder(TupleEncoder),
}

/// A ranked lake tuple returned by [`LakeSession::similar_tuples`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankedTuple {
    /// Owning lake table.
    pub table: TableId,
    /// Row inside the owning table.
    pub row: usize,
    /// Maximum cosine similarity to any query tuple.
    pub score: f64,
}

/// A ranked lake column returned by [`LakeSession::similar_columns`].
#[derive(Debug, Clone, PartialEq)]
pub struct RankedColumn {
    /// Owning lake table.
    pub table: TableId,
    /// Column header.
    pub column: String,
    /// Cosine similarity to the probe column.
    pub score: f64,
}

/// Size and shape of a session's resident state (for logs and the `serve`
/// binary's startup banner).
#[derive(Debug, Clone, PartialEq)]
pub struct SessionStats {
    /// Number of lake tables embedded.
    pub tables: usize,
    /// Total resident tuple embeddings.
    pub tuples: usize,
    /// Total resident column embeddings.
    pub columns: usize,
    /// Number of embedding shards.
    pub shards: usize,
    /// `(tables, tuples)` per shard.
    pub shard_sizes: Vec<(usize, usize)>,
    /// Tuple embedding dimensionality.
    pub tuple_dim: usize,
    /// Column embedding dimensionality.
    pub column_dim: usize,
    /// Wall-clock seconds spent building the session.
    pub build_secs: f64,
}

/// A resident lake session: construct once, serve many queries.
#[derive(Debug)]
pub struct LakeSession {
    lake: DataLake,
    config: PipelineConfig,
    options: SessionOptions,
    aligner_encoder: ColumnEncoder,
    /// Lake-wide TF-IDF corpus over columns (used by the resident column
    /// shard and [`Self::similar_columns`] probes).
    column_corpus: TfIdfCorpus,
    embedder: SessionEmbedder,
    search: SearchStructures,
    shards: Vec<LakeShard>,
    build_secs: f64,
}

impl LakeSession {
    /// Build a session over a lake with default options. Pre-embeds every
    /// lake tuple and column, builds the configured search technique's
    /// candidate structures, and (for a fine-tuning configuration) trains
    /// the DUST tuple model — all exactly once.
    pub fn new(lake: DataLake, config: PipelineConfig) -> Self {
        Self::with_options(lake, config, SessionOptions::default())
    }

    /// [`Self::new`] with explicit [`SessionOptions`].
    pub fn with_options(lake: DataLake, config: PipelineConfig, options: SessionOptions) -> Self {
        let embedder = match &config.embedder {
            TupleEmbedderKind::Pretrained(backbone) => {
                SessionEmbedder::Encoder(TupleEncoder::new(*backbone))
            }
            TupleEmbedderKind::FineTuned {
                backbone,
                config: ft_config,
                training_pairs,
            } => {
                // The identical training run DustPipeline::run performs per
                // query (same shared recipe, deterministic), performed once
                // per session instead.
                SessionEmbedder::Model(crate::pipeline::train_dust_model(
                    &lake,
                    *backbone,
                    ft_config,
                    *training_pairs,
                ))
            }
        };
        Self::assemble(lake, config, options, embedder)
    }

    /// Build a session that embeds tuples with an already-trained model
    /// (mirrors [`crate::pipeline::DustPipeline::with_model`]).
    pub fn with_model(lake: DataLake, config: PipelineConfig, model: DustModel) -> Self {
        Self::assemble(
            lake,
            config,
            SessionOptions::default(),
            SessionEmbedder::Model(model),
        )
    }

    fn assemble(
        lake: DataLake,
        config: PipelineConfig,
        options: SessionOptions,
        embedder: SessionEmbedder,
    ) -> Self {
        let start = Instant::now();
        let num_shards = options.num_shards.max(1);
        let aligner_encoder =
            ColumnEncoder::new(config.alignment_model, config.alignment_serialization);

        // Persistent candidate structures for the configured technique.
        // Each searcher is the same `::new()` default the one-shot pipeline
        // constructs per query, so resident results match fresh ones.
        let search = match config.search {
            SearchTechnique::Overlap => SearchStructures::Overlap {
                search: OverlapSearch::new(),
                index: InvertedValueIndex::build(&lake),
            },
            SearchTechnique::D3l => {
                let search = D3lSearch::new();
                let stats = D3lSignalStats::build(&lake, &search);
                SearchStructures::D3l {
                    search,
                    index: InvertedValueIndex::build(&lake),
                    stats,
                }
            }
            SearchTechnique::Starmie => {
                let search = StarmieSearch::new();
                let store = StarmieColumnStore::build(&lake, &search);
                SearchStructures::Starmie { search, store }
            }
        };

        // Lake-wide column corpus + per-shard embedding stores. Lake tables
        // iterate in name order (BTreeMap), so shard contents and store row
        // order are deterministic.
        let column_corpus =
            ColumnEncoder::build_corpus(lake.tables().flat_map(|t| t.columns().iter()));
        let mut shard_members: Vec<Vec<&Table>> = vec![Vec::new(); num_shards];
        for table in lake.tables() {
            shard_members[shard_of(table.name(), num_shards)].push(table);
        }
        let shards: Vec<LakeShard> = shard_members
            .into_iter()
            .map(|members| {
                let mut tuple_embeddings: Vec<Vector> = Vec::new();
                let mut tuple_refs: Vec<(TableId, usize)> = Vec::new();
                let mut column_embeddings: Vec<Vector> = Vec::new();
                let mut column_refs: Vec<(TableId, String)> = Vec::new();
                for table in &members {
                    let name = table.name().to_string();
                    for (row, tuple) in table.tuples().iter().enumerate() {
                        tuple_embeddings.push(match &embedder {
                            SessionEmbedder::Model(m) => m.embed_tuple(tuple),
                            SessionEmbedder::Encoder(e) => e.embed_tuple(tuple),
                        });
                        tuple_refs.push((name.clone(), row));
                    }
                    for column in table.columns() {
                        column_embeddings
                            .push(aligner_encoder.embed_column(column, &column_corpus));
                        column_refs.push((name.clone(), column.name().to_string()));
                    }
                }
                LakeShard {
                    tables: members.iter().map(|t| t.name().to_string()).collect(),
                    tuple_store: EmbeddingStore::from_vectors(&tuple_embeddings),
                    tuple_refs,
                    column_store: EmbeddingStore::from_vectors(&column_embeddings),
                    column_refs,
                }
            })
            .collect();

        LakeSession {
            lake,
            config,
            options: SessionOptions { num_shards },
            aligner_encoder,
            column_corpus,
            embedder,
            search,
            shards,
            build_secs: start.elapsed().as_secs_f64(),
        }
    }

    /// The resident lake.
    pub fn lake(&self) -> &DataLake {
        &self.lake
    }

    /// The pipeline configuration this session serves.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Number of embedding shards.
    pub fn num_shards(&self) -> usize {
        self.options.num_shards
    }

    /// Shard `i` (panics out of range).
    pub fn shard(&self, i: usize) -> &LakeShard {
        &self.shards[i]
    }

    /// Which shard a table's embeddings live in (stable across processes:
    /// FNV-1a on the table name, not the std `RandomState`).
    pub fn shard_of(&self, table: &str) -> usize {
        shard_of(table, self.options.num_shards)
    }

    /// Size/shape summary of the resident state.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            tables: self.lake.num_tables(),
            tuples: self.shards.iter().map(|s| s.tuple_store.len()).sum(),
            columns: self.shards.iter().map(|s| s.column_store.len()).sum(),
            shards: self.shards.len(),
            shard_sizes: self
                .shards
                .iter()
                .map(|s| (s.tables.len(), s.tuple_store.len()))
                .collect(),
            tuple_dim: self
                .shards
                .iter()
                .map(|s| s.tuple_store.dim())
                .find(|&d| d > 0)
                .unwrap_or(0),
            column_dim: self
                .shards
                .iter()
                .map(|s| s.column_store.dim())
                .find(|&d| d > 0)
                .unwrap_or(0),
            build_secs: self.build_secs,
        }
    }

    /// Serve one query: Algorithm 1 over the resident structures.
    /// Byte-identical to `DustPipeline::new(config).run(lake, query, k)`.
    pub fn query(&self, query: &Table, k: usize) -> Result<DustResult, TableError> {
        Ok(run_query(
            &self.lake,
            query,
            k,
            &self.config,
            &self.aligner_encoder,
            &|lake, query| self.search_tables(lake, query),
            &|query_tuples, candidates| self.embed_tuples(query_tuples, candidates),
        ))
    }

    /// Serve a batch of independent queries, in parallel over the rayon
    /// shim on multi-core hosts. `results[i]` corresponds to `queries[i]`
    /// and is identical to a sequential [`Self::query`] call.
    pub fn query_batch(&self, queries: &[Table], k: usize) -> Vec<Result<DustResult, TableError>> {
        let slots: Vec<Mutex<Option<Result<DustResult, TableError>>>> =
            queries.iter().map(|_| Mutex::new(None)).collect();
        let jobs: Vec<usize> = (0..queries.len()).collect();
        jobs.into_par_iter().for_each(|i| {
            let result = self.query(&queries[i], k);
            *slots[i].lock().expect("batch slot poisoned") = Some(result);
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("batch slot poisoned")
                    .expect("batch worker skipped a query")
            })
            .collect()
    }

    /// Rank every resident lake tuple by its maximum cosine similarity to
    /// any query tuple and return the top `k` — the tuple-as-table serving
    /// path (Sec. 6.5's retrieval shape) answered entirely from the
    /// resident shards, with no per-query lake embedding work.
    pub fn similar_tuples(&self, query: &Table, k: usize) -> Vec<RankedTuple> {
        let query_embeddings: Vec<Vector> = query
            .tuples()
            .iter()
            .map(|t| match &self.embedder {
                SessionEmbedder::Model(m) => m.embed_tuple(t),
                SessionEmbedder::Encoder(e) => e.embed_tuple(t),
            })
            .collect();
        let mut results: Vec<RankedTuple> = Vec::new();
        for shard in &self.shards {
            for i in 0..shard.tuple_store.len() {
                let score = query_embeddings
                    .iter()
                    .map(|q| 1.0 - shard.tuple_store.distance_to_vector(Distance::Cosine, i, q))
                    .fold(f64::NEG_INFINITY, f64::max);
                let (table, row) = shard.tuple_refs[i].clone();
                results.push(RankedTuple { table, row, score });
            }
        }
        results.sort_by(|a, b| {
            desc_nan_last(a.score, b.score)
                .then_with(|| a.table.cmp(&b.table))
                .then_with(|| a.row.cmp(&b.row))
        });
        results.truncate(k);
        results
    }

    /// Rank every resident lake column by cosine similarity to a probe
    /// column (embedded under the session's alignment encoder and lake
    /// corpus) and return the top `k` — column-level discovery from the
    /// resident shards.
    pub fn similar_columns(&self, probe: &Column, k: usize) -> Vec<RankedColumn> {
        let probe_embedding = self
            .aligner_encoder
            .embed_column(probe, &self.column_corpus);
        let mut results: Vec<RankedColumn> = Vec::new();
        for shard in &self.shards {
            for i in 0..shard.column_store.len() {
                let score = 1.0
                    - shard
                        .column_store
                        .distance_to_vector(Distance::Cosine, i, &probe_embedding);
                let (table, column) = shard.column_refs[i].clone();
                results.push(RankedColumn {
                    table,
                    column,
                    score,
                });
            }
        }
        results.sort_by(|a, b| {
            desc_nan_last(a.score, b.score)
                .then_with(|| a.table.cmp(&b.table))
                .then_with(|| a.column.cmp(&b.column))
        });
        results.truncate(k);
        results
    }

    /// The resident `SearchTables` step (same searcher defaults as the
    /// one-shot pipeline, candidate structures read from the session).
    fn search_tables(&self, lake: &DataLake, query: &Table) -> Vec<String> {
        let k = self.config.tables_per_query;
        let results = match &self.search {
            SearchStructures::Overlap { search, index } => {
                search.search_with_index(lake, query, k, index)
            }
            SearchStructures::D3l {
                search,
                index,
                stats,
            } => search.search_with_stats(lake, query, k, index, stats),
            SearchStructures::Starmie { search, store } => {
                search.search_with_store(lake, query, k, store)
            }
        };
        results.into_iter().map(|r| r.table).collect()
    }

    /// The resident `EmbedTuples` step: one shared model/encoder for every
    /// query.
    fn embed_tuples(
        &self,
        query_tuples: &[Tuple],
        candidates: &[Tuple],
    ) -> (Vec<Vector>, Vec<Vector>) {
        match &self.embedder {
            SessionEmbedder::Model(model) => (
                model.embed_tuples(query_tuples),
                model.embed_tuples(candidates),
            ),
            SessionEmbedder::Encoder(encoder) => (
                encoder.embed_tuples(query_tuples),
                encoder.embed_tuples(candidates),
            ),
        }
    }
}

/// Stable shard assignment: FNV-1a over the table name. The std hasher is
/// randomly seeded per process, which would scatter tables across shards
/// differently on every restart — unusable for a multi-host layout.
fn shard_of(table: &str, num_shards: usize) -> usize {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for byte in table.as_bytes() {
        hash ^= u64::from(*byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    (hash % num_shards.max(1) as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_datagen::BenchmarkConfig;

    fn tiny_lake() -> DataLake {
        BenchmarkConfig::tiny().generate().lake
    }

    #[test]
    fn shard_assignment_is_stable_and_partitions_the_lake() {
        let lake = tiny_lake();
        let session = LakeSession::with_options(
            lake.clone(),
            PipelineConfig::fast(),
            SessionOptions { num_shards: 3 },
        );
        assert_eq!(session.num_shards(), 3);
        // every lake table lands in exactly one shard, at its hash slot
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..session.num_shards() {
            for table in session.shard(i).tables() {
                assert_eq!(session.shard_of(table), i);
                assert!(seen.insert(table.clone()), "table {table} in two shards");
            }
        }
        assert_eq!(seen.len(), lake.num_tables());
        // FNV is process-independent: pin a concrete value so a hasher swap
        // cannot silently reshuffle a multi-host layout.
        assert_eq!(shard_of("parks_b", 4), shard_of("parks_b", 4));
        assert_eq!(shard_of("", 1), 0);
    }

    #[test]
    fn resident_stores_cover_every_tuple_and_column() {
        let lake = tiny_lake();
        let expected_tuples: usize = lake.tables().map(|t| t.num_rows()).sum();
        let expected_columns: usize = lake.tables().map(|t| t.num_columns()).sum();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let stats = session.stats();
        assert_eq!(stats.tuples, expected_tuples);
        assert_eq!(stats.columns, expected_columns);
        assert_eq!(stats.shards, SessionOptions::default().num_shards);
        assert!(stats.tuple_dim > 0);
        assert!(stats.column_dim > 0);
        assert!(stats.build_secs > 0.0);
        // provenance refs stay parallel to the stores
        for i in 0..session.num_shards() {
            let shard = session.shard(i);
            assert_eq!(shard.tuple_store().len(), shard.tuple_refs.len());
            assert_eq!(shard.column_store().len(), shard.column_refs.len());
            if !shard.tuple_refs.is_empty() {
                let (table, row) = shard.tuple_ref(0);
                assert!(session.lake().table(table).unwrap().num_rows() > *row);
            }
        }
    }

    #[test]
    fn similar_tuples_finds_an_exact_duplicate_first() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let top = session.similar_tuples(&query, 5);
        assert_eq!(top.len(), 5);
        // scores descend and stay within cosine bounds
        for pair in top.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
        assert!(top[0].score <= 1.0 + 1e-9);
        // the best hit must be a genuinely similar tuple
        assert!(top[0].score > 0.5, "top score {}", top[0].score);
        // provenance resolves
        let table = session.lake().table(&top[0].table).unwrap();
        assert!(top[0].row < table.num_rows());
        // empty k
        assert!(session.similar_tuples(&query, 0).is_empty());
    }

    #[test]
    fn similar_columns_matches_semantically_close_columns() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let probe = query.column(0).unwrap();
        let top = session.similar_columns(probe, 3);
        assert_eq!(top.len(), 3);
        for hit in &top {
            assert!(!hit.column.is_empty());
            assert!(session.lake().table(&hit.table).is_ok());
        }
        assert!(top[0].score >= top[1].score);
    }

    #[test]
    fn query_serves_from_resident_structures() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let result = session.query(&query, 4).unwrap();
        assert_eq!(result.len(), 4);
        assert!(result.is_complete());
        assert!(!result.retrieved_tables.is_empty());
    }

    #[test]
    fn batch_results_align_with_their_queries() {
        let lake = tiny_lake();
        let queries: Vec<Table> = lake
            .query_names()
            .iter()
            .take(2)
            .map(|n| lake.query(n).unwrap().clone())
            .collect();
        let session = LakeSession::new(lake, PipelineConfig::fast());
        let batch = session.query_batch(&queries, 3);
        assert_eq!(batch.len(), queries.len());
        for (query, result) in queries.iter().zip(&batch) {
            let sequential = session.query(query, 3).unwrap();
            let batched = result.as_ref().unwrap();
            assert_eq!(batched.tuples, sequential.tuples);
            assert_eq!(batched.retrieved_tables, sequential.retrieved_tables);
        }
        assert!(session.query_batch(&[], 3).is_empty());
    }

    #[test]
    fn single_shard_session_still_serves() {
        let mut lake = DataLake::new("micro");
        lake.add_table(
            Table::builder("parks")
                .column("Park Name", ["River Park", "Hyde Park"])
                .column("Country", ["USA", "UK"])
                .build()
                .unwrap(),
        )
        .unwrap();
        let query = Table::builder("q")
            .column("Park Name", ["River Park"])
            .column("Country", ["USA"])
            .build()
            .unwrap();
        let session = LakeSession::with_options(
            lake,
            PipelineConfig::fast(),
            SessionOptions { num_shards: 1 },
        );
        let result = session.query(&query, 1).unwrap();
        assert_eq!(result.len(), 1);
        assert_eq!(result.tuples[0].headers(), query.headers());
    }
}
