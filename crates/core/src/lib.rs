//! # dust-core
//!
//! The end-to-end DUST pipeline (Algorithm 1 of the paper):
//!
//! ```text
//! D' ← SearchTables(Q, D)          // table union search
//! T  ← AlignColumns(Q, D')         // holistic column alignment + outer union
//! E  ← EmbedTuples(Q, T)           // fine-tuned tuple embeddings
//! F  ← DiversifyTuples(E_Q, E_T, k) // prune → cluster → medoids → re-rank
//! ```
//!
//! ```no_run
//! use dust_core::{DustPipeline, PipelineConfig};
//! use dust_datagen::BenchmarkConfig;
//!
//! let lake = BenchmarkConfig::tiny().generate().lake;
//! let query_name = lake.query_names()[0].clone();
//! let query = lake.query(&query_name).unwrap().clone();
//! let pipeline = DustPipeline::new(PipelineConfig::default());
//! let result = pipeline.run(&lake, &query, 10).unwrap();
//! println!("{} diverse tuples", result.tuples.len());
//! ```
//!
//! For serving many queries against one lake, build a resident
//! [`LakeSession`] instead — it pre-embeds the lake, keeps the search
//! technique's candidate structures warm, and trains the tuple model once:
//!
//! ```no_run
//! use dust_core::{LakeSession, PipelineConfig};
//! use dust_datagen::BenchmarkConfig;
//!
//! let lake = BenchmarkConfig::tiny().generate().lake;
//! let queries: Vec<_> = lake
//!     .query_names()
//!     .iter()
//!     .map(|n| lake.query(n).unwrap().clone())
//!     .collect();
//! let session = LakeSession::new(lake, PipelineConfig::default());
//! for result in session.query_batch(&queries, 10) {
//!     println!("{} diverse tuples", result.unwrap().tuples.len());
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod clock;
pub mod config;
pub mod persist;
pub mod pipeline;
pub mod result;
pub mod session;

pub use baselines::{LlmBaseline, RetrievalSystem, StarmieBaseline, TupleRetrievalBaseline};
pub use config::{PipelineConfig, SearchTechnique, TupleEmbedderKind};
pub use persist::{PersistError, RecoveryReport, SessionError, SnapshotStore, StoreOptions};
pub use pipeline::DustPipeline;
pub use result::{DustResult, StageTimings};
pub use session::{
    LakeRef, LakeSession, LakeShard, RankedColumn, RankedTuple, SessionOptions, SessionStats,
    SessionView,
};
