//! LSN-stamped write-ahead log of lake mutations.
//!
//! One WAL file per snapshot epoch (`wal-{epoch}.log`). The snapshot holds
//! the session at generation *G*; every committed mutation after it is an
//! appended, fsynced record stamped `G+1, G+2, …`. Recovery replays the
//! records through the session's live delta paths, landing bit-identically
//! on the state the serving process last acknowledged.
//!
//! On-disk layout (little-endian throughout):
//!
//! ```text
//! header:  [magic "DUSTWAL\0"][version u32][base_generation u64][crc u32]
//! record:  [lsn u64][kind u8][payload_len u32][header_crc u32]
//!          [payload .. payload_len][payload_crc u32]
//! ```
//!
//! Both CRCs are CRC-32/IEEE. The split header/payload checksum is what
//! distinguishes the two failure modes a log tail can be in:
//!
//! * **torn write** — the process died mid-append. The tail is *shorter*
//!   than a full record (header or payload cut off) but every complete
//!   record before it is intact. Recovery drops the tail and reports it;
//!   the lost mutation was never acknowledged, so dropping it is correct.
//! * **corruption** — a record that is fully present fails its checksum,
//!   or LSNs skip. That is bit rot or truncation *in the middle* of
//!   acknowledged history; replaying past it could silently resurrect a
//!   stale state, so recovery refuses with [`PersistError::Corrupt`].

use super::codec::{crc32, ByteReader, ByteWriter, FORMAT_VERSION, WAL_MAGIC};
use super::error::PersistError;
use super::snapshot::{get_table, put_table};
use dust_table::Table;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

pub(crate) const HEADER_LEN: usize = 8 + 4 + 8 + 4;
const RECORD_HEADER_LEN: usize = 8 + 1 + 4 + 4;

const KIND_ADD_TABLE: u8 = 1;
const KIND_REMOVE_TABLE: u8 = 2;

/// One logged lake mutation.
#[derive(Debug, Clone)]
pub enum WalOp {
    /// `add_table` with the full table payload.
    AddTable(Table),
    /// `remove_table` by name.
    RemoveTable(String),
}

/// Everything a WAL file held, as read back at recovery time.
#[derive(Debug)]
pub(crate) struct WalContents {
    /// Snapshot generation this log extends (records are stamped from
    /// `base_generation + 1`).
    pub(crate) base_generation: u64,
    /// Complete, checksum-valid records in LSN order.
    pub(crate) records: Vec<(u64, WalOp)>,
    /// Whether an incomplete trailing record (a torn write from a crash
    /// mid-append) was found and cleanly dropped.
    pub(crate) dropped_torn_tail: bool,
}

/// Appender for the live WAL file. Every [`append`](WalWriter::append) is
/// written and fsynced before it returns, so an acknowledged mutation
/// survives power loss.
pub(crate) struct WalWriter {
    file: File,
    path: PathBuf,
    next_lsn: u64,
}

impl WalWriter {
    /// Create a fresh WAL for a snapshot at `base_generation`, fsyncing
    /// the header. Truncates any existing file at `path`.
    pub(crate) fn create(path: &Path, base_generation: u64) -> Result<Self, PersistError> {
        let mut header = Vec::with_capacity(HEADER_LEN);
        header.extend_from_slice(WAL_MAGIC);
        header.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        header.extend_from_slice(&base_generation.to_le_bytes());
        let crc = crc32(&header);
        header.extend_from_slice(&crc.to_le_bytes());

        let mut file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(path)
            .map_err(|e| PersistError::io(path, e))?;
        file.write_all(&header)
            .and_then(|()| file.sync_data())
            .map_err(|e| PersistError::io(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_lsn: base_generation + 1,
        })
    }

    /// Reopen an existing (already validated) WAL for appending. The
    /// caller supplies `next_lsn` from the recovery pass; appends resume
    /// after the last valid record. If a torn tail was dropped during
    /// recovery the file is first truncated back to `valid_len`, so the
    /// next append cannot splice onto garbage bytes.
    pub(crate) fn reopen(path: &Path, next_lsn: u64, valid_len: u64) -> Result<Self, PersistError> {
        let mut file = OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| PersistError::io(path, e))?;
        file.set_len(valid_len)
            .and_then(|()| file.sync_data())
            .and_then(|()| file.seek(SeekFrom::Start(valid_len)).map(|_| ()))
            .map_err(|e| PersistError::io(path, e))?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            next_lsn,
        })
    }

    /// LSN the next appended record will carry.
    pub(crate) fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Append one mutation record and fsync it. Returns the record's LSN
    /// and its on-disk size in bytes (header + payload + seals), which the
    /// store accumulates for its bytes-since-checkpoint trigger.
    pub(crate) fn append(&mut self, op: &WalOp) -> Result<(u64, usize), PersistError> {
        let (kind, payload) = match op {
            WalOp::AddTable(table) => {
                let mut w = ByteWriter::new();
                put_table(&mut w, table);
                (KIND_ADD_TABLE, w.into_bytes())
            }
            WalOp::RemoveTable(name) => {
                let mut w = ByteWriter::new();
                w.put_str(name);
                (KIND_REMOVE_TABLE, w.into_bytes())
            }
        };
        let lsn = self.next_lsn;
        let mut rec = Vec::with_capacity(RECORD_HEADER_LEN + payload.len() + 4);
        rec.extend_from_slice(&lsn.to_le_bytes());
        rec.push(kind);
        rec.extend_from_slice(
            &u32::try_from(payload.len())
                .expect("payload < 4 GiB")
                .to_le_bytes(),
        );
        let header_crc = crc32(&rec);
        rec.extend_from_slice(&header_crc.to_le_bytes());
        rec.extend_from_slice(&payload);
        rec.extend_from_slice(&crc32(&payload).to_le_bytes());

        self.file
            .write_all(&rec)
            .and_then(|()| self.file.sync_data())
            .map_err(|e| PersistError::io(&self.path, e))?;
        self.next_lsn += 1;
        Ok((lsn, rec.len()))
    }
}

/// Read and validate a WAL file, returning its records plus the byte
/// length of the valid prefix (for truncating a torn tail on reopen).
pub(crate) fn read_wal(path: &Path) -> Result<(WalContents, u64), PersistError> {
    let mut bytes = Vec::new();
    File::open(path)
        .and_then(|mut f| f.read_to_end(&mut bytes))
        .map_err(|e| PersistError::io(path, e))?;

    if bytes.len() < HEADER_LEN {
        return Err(PersistError::corrupt(
            path,
            format!("WAL header is {} bytes, need {HEADER_LEN}", bytes.len()),
        ));
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(PersistError::corrupt(path, "bad WAL magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[20..24].try_into().unwrap());
    if crc32(&bytes[..20]) != stored_crc {
        return Err(PersistError::corrupt(path, "WAL header checksum mismatch"));
    }
    let base_generation = u64::from_le_bytes(bytes[12..20].try_into().unwrap());

    let mut records = Vec::new();
    let mut dropped_torn_tail = false;
    let mut pos = HEADER_LEN;
    let mut expected_lsn = base_generation + 1;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER_LEN {
            // Crash mid-append before the record header finished: the
            // mutation was never acknowledged. Drop it and stop.
            dropped_torn_tail = true;
            break;
        }
        let header = &bytes[pos..pos + RECORD_HEADER_LEN];
        let stored = u32::from_le_bytes(header[13..17].try_into().unwrap());
        if crc32(&header[..13]) != stored {
            return Err(PersistError::corrupt(
                path,
                format!("record header checksum mismatch at offset {pos}"),
            ));
        }
        let lsn = u64::from_le_bytes(header[..8].try_into().unwrap());
        let kind = header[8];
        let payload_len = u32::from_le_bytes(header[9..13].try_into().unwrap()) as usize;
        if remaining < RECORD_HEADER_LEN + payload_len + 4 {
            // Valid header, payload cut off: torn write. Drop and stop.
            dropped_torn_tail = true;
            break;
        }
        let payload_start = pos + RECORD_HEADER_LEN;
        let payload = &bytes[payload_start..payload_start + payload_len];
        let payload_crc = u32::from_le_bytes(
            bytes[payload_start + payload_len..payload_start + payload_len + 4]
                .try_into()
                .unwrap(),
        );
        if crc32(payload) != payload_crc {
            return Err(PersistError::corrupt(
                path,
                format!("record payload checksum mismatch at LSN {lsn}"),
            ));
        }
        if lsn != expected_lsn {
            return Err(PersistError::corrupt(
                path,
                format!("LSN sequence broken: found {lsn}, expected {expected_lsn}"),
            ));
        }
        let op = match kind {
            KIND_ADD_TABLE => {
                let mut r = ByteReader::new(payload, path);
                let table = get_table(&mut r)?;
                r.finish()?;
                WalOp::AddTable(table)
            }
            KIND_REMOVE_TABLE => {
                let mut r = ByteReader::new(payload, path);
                let name = r.get_str()?;
                r.finish()?;
                WalOp::RemoveTable(name)
            }
            k => {
                return Err(PersistError::corrupt(
                    path,
                    format!("unknown WAL record kind {k} at LSN {lsn}"),
                ))
            }
        };
        records.push((lsn, op));
        expected_lsn += 1;
        pos = payload_start + payload_len + 4;
    }
    let valid_len = pos as u64;
    Ok((
        WalContents {
            base_generation,
            records,
            dropped_torn_tail,
        },
        valid_len,
    ))
}
