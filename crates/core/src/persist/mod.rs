//! Durable persistence for [`LakeSession`]: versioned snapshot + WAL.
//!
//! A session lives in a *snapshot directory*:
//!
//! ```text
//! snapshot-dir/
//! ├── MANIFEST              epoch pointer + config  (atomically replaced)
//! ├── seg-{e}-lake.bin      the data lake (tables, queries, ground truth)
//! ├── seg-{e}-shard-{i}.bin tuple embeddings + provenance, one per shard
//! ├── seg-{e}-columns.bin   TF-IDF corpus + column embedding shards
//! ├── seg-{e}-search.bin    candidate-search structures for the technique
//! ├── seg-{e}-model.bin     trained projection head (model sessions only)
//! └── wal-{e}.log           LSN-stamped mutations since the snapshot
//! ```
//!
//! Every file is magic-tagged, format-versioned, and CRC-32 sealed
//! ([`codec`]); damage is *detected* and reported as a typed
//! [`PersistError`], never served. Recovery = load the manifest's epoch,
//! then replay the WAL through the session's live `add_table` /
//! `remove_table` delta paths — the restored session answers queries
//! bit-identically to the one that saved (pinned by
//! `tests/session_recovery.rs`).
//!
//! Checkpointing writes a complete new epoch `e+1` (segments + empty WAL),
//! atomically swings `MANIFEST`, then deletes epoch `e`'s files. A crash
//! anywhere in that sequence leaves a fully consistent directory.

mod codec;
mod error;
mod snapshot;
mod wal;

pub use error::{PersistError, SessionError};
pub use wal::WalOp;

use crate::session::LakeSession;
use dust_table::Table;
use std::path::{Path, PathBuf};

/// Tuning knobs for a [`SnapshotStore`].
#[derive(Debug, Clone, Copy)]
pub struct StoreOptions {
    /// Rewrite the snapshot and truncate the WAL once this many records
    /// have accumulated since the last checkpoint (`maybe_checkpoint`).
    pub checkpoint_after: usize,
    /// Also rewrite once this many WAL **bytes** accumulated since the
    /// last checkpoint, whichever trigger fires first. Record count is a
    /// poor proxy for replay cost when table sizes vary wildly — a handful
    /// of million-row `AddTable` records can out-weigh hundreds of small
    /// ones. `u64::MAX` disables the byte trigger.
    pub checkpoint_after_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            checkpoint_after: 64,
            checkpoint_after_bytes: 64 << 20,
        }
    }
}

/// What recovery found when opening a snapshot directory.
#[derive(Debug, Clone, Copy)]
pub struct RecoveryReport {
    /// Generation stored in the snapshot itself.
    pub snapshot_generation: u64,
    /// Number of WAL records replayed on top of it.
    pub replayed: usize,
    /// Whether a torn (partially written) trailing WAL record was dropped.
    pub dropped_torn_tail: bool,
}

/// Handle to a snapshot directory with a live, appendable WAL.
///
/// Obtained from [`SnapshotStore::create`] (persist a session for the
/// first time, or overwrite) or [`SnapshotStore::open`] (recover). While
/// serving, call [`log_add_table`](SnapshotStore::log_add_table) /
/// [`log_remove_table`](SnapshotStore::log_remove_table) *after* each
/// successfully applied mutation — failed mutations are never logged — and
/// [`maybe_checkpoint`](SnapshotStore::maybe_checkpoint) to bound replay
/// time.
pub struct SnapshotStore {
    dir: PathBuf,
    epoch: u64,
    wal: wal::WalWriter,
    records_since_checkpoint: usize,
    bytes_since_checkpoint: u64,
    options: StoreOptions,
}

impl SnapshotStore {
    /// Persist `session` into `dir` as a fresh epoch-1 snapshot with an
    /// empty WAL, replacing whatever the directory held before.
    pub fn create(dir: &Path, session: &LakeSession) -> Result<SnapshotStore, PersistError> {
        Self::create_with(dir, session, StoreOptions::default())
    }

    /// [`create`](SnapshotStore::create) with explicit [`StoreOptions`].
    pub fn create_with(
        dir: &Path,
        session: &LakeSession,
        options: StoreOptions,
    ) -> Result<SnapshotStore, PersistError> {
        std::fs::create_dir_all(dir).map_err(|e| PersistError::io(dir, e))?;
        let epoch = 1;
        // One pinned view for every segment plus the manifest: concurrent
        // mutations publish newer generations without tearing the snapshot.
        let view = session.view();
        snapshot::write_epoch_segments(dir, &view, epoch)?;
        let wal = wal::WalWriter::create(&snapshot::wal_path(dir, epoch), view.generation())?;
        snapshot::publish_manifest(dir, &snapshot::manifest_for(&view, epoch))?;
        snapshot::sweep_stale_epochs(dir, epoch);
        Ok(SnapshotStore {
            dir: dir.to_path_buf(),
            epoch,
            wal,
            records_since_checkpoint: 0,
            bytes_since_checkpoint: 0,
            options,
        })
    }

    /// Recover a session from `dir`: load the manifest's epoch, replay the
    /// WAL through the live delta paths, and return the store reopened for
    /// appending (a dropped torn tail is truncated away first).
    pub fn open(dir: &Path) -> Result<(SnapshotStore, LakeSession, RecoveryReport), PersistError> {
        Self::open_with(dir, StoreOptions::default())
    }

    /// [`open`](SnapshotStore::open) with explicit [`StoreOptions`].
    pub fn open_with(
        dir: &Path,
        options: StoreOptions,
    ) -> Result<(SnapshotStore, LakeSession, RecoveryReport), PersistError> {
        let manifest = snapshot::read_manifest(dir)?;
        let session = snapshot::load_session(dir, &manifest)?;

        let wal_path = snapshot::wal_path(dir, manifest.epoch);
        let (contents, valid_len) = wal::read_wal(&wal_path)?;
        if contents.base_generation != manifest.generation {
            return Err(PersistError::corrupt(
                &wal_path,
                format!(
                    "WAL extends generation {} but the snapshot is at {}",
                    contents.base_generation, manifest.generation
                ),
            ));
        }
        let replayed = contents.records.len();
        for (lsn, op) in contents.records {
            let expected = session.generation() + 1;
            if lsn != expected {
                return Err(PersistError::Replay {
                    lsn,
                    detail: format!("session is at generation {}", expected - 1),
                });
            }
            let applied = match &op {
                WalOp::AddTable(table) => session.add_table(table.clone()),
                WalOp::RemoveTable(name) => session.remove_table(name).map(|_| ()),
            };
            applied.map_err(|e| PersistError::Replay {
                lsn,
                detail: e.to_string(),
            })?;
        }

        let next_lsn = session.generation() + 1;
        let wal = wal::WalWriter::reopen(&wal_path, next_lsn, valid_len)?;
        let report = RecoveryReport {
            snapshot_generation: manifest.generation,
            replayed,
            dropped_torn_tail: contents.dropped_torn_tail,
        };
        Ok((
            SnapshotStore {
                dir: dir.to_path_buf(),
                epoch: manifest.epoch,
                wal,
                records_since_checkpoint: replayed,
                // Everything after the fixed WAL header is replayed record
                // bytes — the byte trigger survives restarts exactly.
                bytes_since_checkpoint: valid_len.saturating_sub(wal::HEADER_LEN as u64),
                options,
            },
            session,
            report,
        ))
    }

    /// Log an already-applied `add_table` mutation. `generation` is the
    /// session's generation *after* the mutation; it must equal the LSN
    /// this record gets, which catches any store/session desync at the
    /// call site instead of at the next recovery.
    pub fn log_add_table(&mut self, table: &Table, generation: u64) -> Result<(), PersistError> {
        self.log(WalOp::AddTable(table.clone()), generation)
    }

    /// Log an already-applied `remove_table` mutation (see
    /// [`log_add_table`](SnapshotStore::log_add_table)).
    pub fn log_remove_table(&mut self, name: &str, generation: u64) -> Result<(), PersistError> {
        self.log(WalOp::RemoveTable(name.to_string()), generation)
    }

    fn log(&mut self, op: WalOp, generation: u64) -> Result<(), PersistError> {
        let expected = self.wal.next_lsn();
        if generation != expected {
            return Err(PersistError::Replay {
                lsn: expected,
                detail: format!("session generation {generation} does not match the next LSN"),
            });
        }
        let (_lsn, bytes) = self.wal.append(&op)?;
        self.records_since_checkpoint += 1;
        self.bytes_since_checkpoint += bytes as u64;
        Ok(())
    }

    /// Rewrite the snapshot at the session's current generation and start
    /// an empty WAL, bounding future recovery replay to zero. The whole
    /// epoch photographs **one** pinned generation, so a checkpoint is
    /// internally consistent even while readers and the caller's other
    /// threads keep working. Crash-safe: the new epoch is complete and
    /// fsynced before `MANIFEST` is atomically swung to it; old-epoch
    /// files are deleted only afterwards.
    ///
    /// The caller must ensure no mutation is applied-but-not-yet-logged
    /// while this runs (the `serve` binary holds its durability lock
    /// across apply + log + checkpoint), otherwise that mutation would be
    /// neither in the new snapshot nor in the new WAL.
    pub fn checkpoint(&mut self, session: &LakeSession) -> Result<(), PersistError> {
        let epoch = self.epoch + 1;
        let view = session.view();
        snapshot::write_epoch_segments(&self.dir, &view, epoch)?;
        let wal = wal::WalWriter::create(&snapshot::wal_path(&self.dir, epoch), view.generation())?;
        snapshot::publish_manifest(&self.dir, &snapshot::manifest_for(&view, epoch))?;
        snapshot::sweep_stale_epochs(&self.dir, epoch);
        self.epoch = epoch;
        self.wal = wal;
        self.records_since_checkpoint = 0;
        self.bytes_since_checkpoint = 0;
        Ok(())
    }

    /// [`checkpoint`](SnapshotStore::checkpoint) iff at least
    /// `checkpoint_after` records **or** `checkpoint_after_bytes` WAL
    /// bytes accumulated since the last one — whichever trigger fires
    /// first. Returns whether a checkpoint ran.
    pub fn maybe_checkpoint(&mut self, session: &LakeSession) -> Result<bool, PersistError> {
        if self.records_since_checkpoint >= self.options.checkpoint_after
            || self.bytes_since_checkpoint >= self.options.checkpoint_after_bytes
        {
            self.checkpoint(session)?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    /// Current snapshot epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// WAL records appended (or replayed) since the last checkpoint.
    pub fn wal_records(&self) -> usize {
        self.records_since_checkpoint
    }

    /// WAL bytes appended (or replayed) since the last checkpoint — the
    /// same quantity the `checkpoint_after_bytes` trigger compares against
    /// (record bytes only; the fixed file header is excluded).
    pub fn wal_bytes(&self) -> u64 {
        self.bytes_since_checkpoint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PipelineConfig;
    use dust_datagen::BenchmarkConfig;
    use dust_table::{Column, Value};
    use std::io::Write;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("dust-persist-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn tiny_session() -> LakeSession {
        let lake = BenchmarkConfig::tiny().generate().lake;
        LakeSession::new(lake, PipelineConfig::fast())
    }

    fn extra_table(name: &str) -> Table {
        Table::from_columns(
            name,
            vec![
                Column::new(
                    "city",
                    vec![
                        Value::Text("utrecht".into()),
                        Value::Text("leiden".into()),
                        Value::Null,
                    ],
                ),
                Column::new(
                    "population",
                    vec![Value::Int(361924), Value::Int(127046), Value::Float(1.5)],
                ),
            ],
        )
        .unwrap()
    }

    /// Debug formatting of f64 is injective on distinct finite bit
    /// patterns, so equal Debug output here means bit-identical scores.
    /// The exhaustive bit-level suite lives in `tests/session_recovery.rs`.
    fn assert_serves_identically(a: &LakeSession, b: &LakeSession) {
        assert_eq!(a.generation(), b.generation());
        let sa = a.stats();
        let sb = b.stats();
        assert_eq!(
            (sa.tables, sa.tuples, sa.columns),
            (sb.tables, sb.tuples, sb.columns)
        );
        assert_eq!(sa.shard_sizes, sb.shard_sizes);
        let probe = a
            .lake()
            .queries()
            .next()
            .expect("tiny lake has a query")
            .clone();
        let ra = a.query(&probe, 5).unwrap();
        let rb = b.query(&probe, 5).unwrap();
        assert_eq!(format!("{:?}", ra.tuples), format!("{:?}", rb.tuples));
        assert_eq!(ra.retrieved_tables, rb.retrieved_tables);
        assert_eq!(format!("{:?}", ra.diversity), format!("{:?}", rb.diversity));
        assert_eq!(
            format!("{:?}", a.similar_tuples(&probe, 7)),
            format!("{:?}", b.similar_tuples(&probe, 7))
        );
    }

    #[test]
    fn save_open_round_trip() {
        let dir = temp_dir("round-trip");
        let session = tiny_session();
        session.save(&dir).unwrap();
        let restored = LakeSession::open(&dir).unwrap();
        assert_serves_identically(&session, &restored);
    }

    #[test]
    fn wal_replay_restores_mutations() {
        let dir = temp_dir("wal-replay");
        let session = tiny_session();
        let mut store = SnapshotStore::create(&dir, &session).unwrap();

        session.add_table(extra_table("wal_extra")).unwrap();
        store
            .log_add_table(&extra_table("wal_extra"), session.generation())
            .unwrap();
        let victim = session.lake().table_names()[0].clone();
        session.remove_table(&victim).unwrap();
        store
            .log_remove_table(&victim, session.generation())
            .unwrap();
        assert_eq!(store.wal_records(), 2);
        drop(store);

        let (_store, restored, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.replayed, 2);
        assert!(!report.dropped_torn_tail);
        assert_serves_identically(&session, &restored);
    }

    #[test]
    fn checkpoint_truncates_wal() {
        let dir = temp_dir("checkpoint");
        let session = tiny_session();
        let mut store = SnapshotStore::create(&dir, &session).unwrap();
        session.add_table(extra_table("ckpt_extra")).unwrap();
        store
            .log_add_table(&extra_table("ckpt_extra"), session.generation())
            .unwrap();
        store.checkpoint(&session).unwrap();
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.wal_records(), 0);
        assert!(!snapshot::wal_path(&dir, 1).exists(), "old epoch swept");
        drop(store);

        let (store, restored, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(store.epoch(), 2);
        assert_eq!(report.replayed, 0);
        assert_serves_identically(&session, &restored);
    }

    #[test]
    fn byte_trigger_checkpoints_before_the_record_trigger() {
        let dir = temp_dir("byte-trigger");
        let session = tiny_session();
        // Record trigger far away, byte trigger tiny: the very first logged
        // mutation (hundreds of bytes of table payload) must checkpoint.
        let mut store = SnapshotStore::create_with(
            &dir,
            &session,
            StoreOptions {
                checkpoint_after: 1000,
                checkpoint_after_bytes: 32,
            },
        )
        .unwrap();
        session.add_table(extra_table("bytes_extra")).unwrap();
        store
            .log_add_table(&extra_table("bytes_extra"), session.generation())
            .unwrap();
        assert!(store.wal_bytes() >= 32, "record bytes were not counted");
        assert!(store.maybe_checkpoint(&session).unwrap());
        assert_eq!(store.epoch(), 2);
        assert_eq!(store.wal_records(), 0);
        assert_eq!(store.wal_bytes(), 0, "checkpoint must reset the byte count");
        assert!(!store.maybe_checkpoint(&session).unwrap());

        // And with the byte trigger disabled, the same mutation volume
        // does not checkpoint.
        let dir2 = temp_dir("byte-trigger-off");
        let session2 = tiny_session();
        let mut store2 = SnapshotStore::create_with(
            &dir2,
            &session2,
            StoreOptions {
                checkpoint_after: 1000,
                checkpoint_after_bytes: u64::MAX,
            },
        )
        .unwrap();
        session2.add_table(extra_table("bytes_extra")).unwrap();
        store2
            .log_add_table(&extra_table("bytes_extra"), session2.generation())
            .unwrap();
        assert!(!store2.maybe_checkpoint(&session2).unwrap());
        assert_eq!(store2.epoch(), 1);
    }

    #[test]
    fn wal_bytes_survive_reopen() {
        let dir = temp_dir("bytes-reopen");
        let session = tiny_session();
        let mut store = SnapshotStore::create(&dir, &session).unwrap();
        session.add_table(extra_table("reopen_extra")).unwrap();
        store
            .log_add_table(&extra_table("reopen_extra"), session.generation())
            .unwrap();
        let logged = store.wal_bytes();
        assert!(logged > 0);
        drop(store);

        let (store, _restored, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.replayed, 1);
        assert_eq!(
            store.wal_bytes(),
            logged,
            "bytes-since-checkpoint must be reconstructed from the replayed WAL"
        );
    }

    #[test]
    fn torn_tail_is_dropped_cleanly() {
        let dir = temp_dir("torn-tail");
        let session = tiny_session();
        let mut store = SnapshotStore::create(&dir, &session).unwrap();
        session.add_table(extra_table("torn_extra")).unwrap();
        store
            .log_add_table(&extra_table("torn_extra"), session.generation())
            .unwrap();
        drop(store);

        // Simulate a crash mid-append: a few bytes of a record header.
        let wal = snapshot::wal_path(&dir, 1);
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal).unwrap();
        f.write_all(&[0xAB, 0xCD, 0xEF]).unwrap();
        drop(f);

        let (mut store, restored, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.replayed, 1);
        assert!(report.dropped_torn_tail);
        assert_serves_identically(&session, &restored);

        // The truncated tail must not poison subsequent appends.
        store
            .log_remove_table("torn_extra", restored.generation() + 1)
            .unwrap();
        drop(store);
        let (_s, reread, report) = SnapshotStore::open(&dir).unwrap();
        assert_eq!(report.replayed, 2);
        assert_eq!(reread.generation(), session.generation() + 1);
    }

    #[test]
    fn corrupt_segment_is_a_typed_error() {
        let dir = temp_dir("corrupt-seg");
        let session = tiny_session();
        session.save(&dir).unwrap();
        let lake_seg = snapshot::lake_path(&dir, 1);
        let mut bytes = std::fs::read(&lake_seg).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&lake_seg, &bytes).unwrap();

        match LakeSession::open(&dir).err() {
            Some(PersistError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn missing_manifest_is_no_snapshot() {
        let dir = temp_dir("no-snapshot");
        match LakeSession::open(&dir).err() {
            Some(e @ PersistError::NoSnapshot { .. }) => assert_eq!(e.kind(), "no_snapshot"),
            other => panic!("expected NoSnapshot, got {other:?}"),
        }
    }

    #[test]
    fn desynced_log_generation_is_rejected() {
        let dir = temp_dir("desync");
        let session = tiny_session();
        let mut store = SnapshotStore::create(&dir, &session).unwrap();
        // Caller claims a generation that skips an LSN.
        let err = store
            .log_add_table(&extra_table("skip"), session.generation() + 2)
            .unwrap_err();
        assert_eq!(err.kind(), "replay");
    }
}
