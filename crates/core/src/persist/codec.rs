//! Binary codec primitives for the durable store.
//!
//! The vendored serde shim is inert (its derives expand to nothing), so the
//! on-disk formats are hand-rolled: little-endian fixed-width integers,
//! length-prefixed strings, and `f32`/`f64` written via their IEEE bit
//! patterns (so floats round-trip **bit for bit** — the foundation of the
//! recovered ≡ fresh equivalence guarantee).
//!
//! Every segment file shares one frame:
//!
//! ```text
//! [ magic 8B ][ version u32 ][ kind u8 ][ payload … ][ CRC32 u32 ]
//! ```
//!
//! The trailer CRC covers every preceding byte, so a torn write, a
//! truncation, or any single-bit flip anywhere in the file is *detected* —
//! [`read_segment`] returns a typed [`PersistError`], never garbage.

use super::error::PersistError;
use std::fs::File;
use std::io::{Read, Write};
use std::path::Path;

/// Magic prefix of every snapshot segment file.
pub(crate) const SEGMENT_MAGIC: &[u8; 8] = b"DUSTSEG\0";
/// Magic prefix of the write-ahead log.
pub(crate) const WAL_MAGIC: &[u8; 8] = b"DUSTWAL\0";
/// On-disk format version, bumped on any layout change.
pub(crate) const FORMAT_VERSION: u32 = 1;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320 polynomial) over `bytes`.
/// Detects every single-bit error and every burst ≤ 32 bits — which is
/// exactly the fault classes the recovery suite injects.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Append-only byte buffer with typed little-endian writers.
#[derive(Debug, Default)]
pub(crate) struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    pub(crate) fn new() -> Self {
        ByteWriter::default()
    }

    pub(crate) fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    pub(crate) fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub(crate) fn put_bool(&mut self, v: bool) {
        self.put_u8(u8::from(v));
    }

    pub(crate) fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    pub(crate) fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    pub(crate) fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    pub(crate) fn put_f32s(&mut self, vs: &[f32]) {
        self.put_usize(vs.len());
        for v in vs {
            self.put_f32(*v);
        }
    }

    pub(crate) fn put_f64s(&mut self, vs: &[f64]) {
        self.put_usize(vs.len());
        for v in vs {
            self.put_f64(*v);
        }
    }

    pub(crate) fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }
}

/// Cursor over a decoded payload. Every read is bounds-checked and returns
/// a typed [`PersistError::Corrupt`] on overrun — a lying length prefix
/// (which the CRC already makes vanishingly unlikely) cannot panic.
#[derive(Debug)]
pub(crate) struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
    path: &'a Path,
}

impl<'a> ByteReader<'a> {
    pub(crate) fn new(buf: &'a [u8], path: &'a Path) -> Self {
        ByteReader { buf, pos: 0, path }
    }

    pub(crate) fn corrupt(&self, detail: impl Into<String>) -> PersistError {
        PersistError::corrupt(self.path, detail)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(self.corrupt(format!(
                "payload overrun: need {n} bytes at offset {}, have {}",
                self.pos,
                self.buf.len() - self.pos
            ))),
        }
    }

    pub(crate) fn get_u8(&mut self) -> Result<u8, PersistError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn get_bool(&mut self) -> Result<bool, PersistError> {
        match self.get_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.corrupt(format!("invalid bool byte {v}"))),
        }
    }

    pub(crate) fn get_u32(&mut self) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn get_u64(&mut self) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn get_usize(&mut self) -> Result<usize, PersistError> {
        let v = self.get_u64()?;
        usize::try_from(v).map_err(|_| self.corrupt(format!("length {v} exceeds usize")))
    }

    /// A `usize` used as an element count: additionally bounded by the
    /// bytes remaining (each element costs ≥ 1 byte), so a corrupted
    /// length cannot trigger an absurd allocation.
    pub(crate) fn get_count(&mut self) -> Result<usize, PersistError> {
        let n = self.get_usize()?;
        if n > self.buf.len() - self.pos {
            return Err(self.corrupt(format!(
                "element count {n} exceeds the {} bytes remaining",
                self.buf.len() - self.pos
            )));
        }
        Ok(n)
    }

    pub(crate) fn get_i64(&mut self) -> Result<i64, PersistError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn get_f32(&mut self) -> Result<f32, PersistError> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    pub(crate) fn get_f64(&mut self) -> Result<f64, PersistError> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    pub(crate) fn get_f32s(&mut self) -> Result<Vec<f32>, PersistError> {
        let n = self.get_usize()?;
        let len = n
            .checked_mul(4)
            .filter(|&l| l <= self.buf.len() - self.pos)
            .ok_or_else(|| self.corrupt(format!("f32 buffer of {n} elements overruns payload")))?;
        let raw = self.take(len)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_bits(u32::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    pub(crate) fn get_f64s(&mut self) -> Result<Vec<f64>, PersistError> {
        let n = self.get_usize()?;
        let len = n
            .checked_mul(8)
            .filter(|&l| l <= self.buf.len() - self.pos)
            .ok_or_else(|| self.corrupt(format!("f64 buffer of {n} elements overruns payload")))?;
        let raw = self.take(len)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())))
            .collect())
    }

    pub(crate) fn get_str(&mut self) -> Result<String, PersistError> {
        let n = self.get_count()?;
        let raw = self.take(n)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| self.corrupt("string payload is not UTF-8".to_string()))
    }

    pub(crate) fn finish(self) -> Result<(), PersistError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(self.corrupt(format!(
                "{} trailing bytes after payload",
                self.buf.len() - self.pos
            )))
        }
    }
}

/// Write a framed, checksummed segment file and fsync it.
pub(crate) fn write_segment(path: &Path, kind: u8, payload: &[u8]) -> Result<(), PersistError> {
    let mut bytes = Vec::with_capacity(SEGMENT_MAGIC.len() + 4 + 1 + payload.len() + 4);
    bytes.extend_from_slice(SEGMENT_MAGIC);
    bytes.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    bytes.push(kind);
    bytes.extend_from_slice(payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    let mut file = File::create(path).map_err(|e| PersistError::io(path, e))?;
    file.write_all(&bytes)
        .map_err(|e| PersistError::io(path, e))?;
    file.sync_all().map_err(|e| PersistError::io(path, e))?;
    Ok(())
}

/// Read and validate a segment file: magic, format version, kind byte, and
/// the CRC32 trailer. Returns the payload bytes. Any mismatch — including
/// a file shorter than the frame itself — is a typed error.
pub(crate) fn read_segment(path: &Path, expected_kind: u8) -> Result<Vec<u8>, PersistError> {
    let mut file = File::open(path).map_err(|e| PersistError::io(path, e))?;
    let mut bytes = Vec::new();
    file.read_to_end(&mut bytes)
        .map_err(|e| PersistError::io(path, e))?;
    let header = SEGMENT_MAGIC.len() + 4 + 1;
    if bytes.len() < header + 4 {
        return Err(PersistError::corrupt(
            path,
            format!("file too short ({} bytes) to be a segment", bytes.len()),
        ));
    }
    if &bytes[..SEGMENT_MAGIC.len()] != SEGMENT_MAGIC {
        return Err(PersistError::corrupt(path, "bad magic"));
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(PersistError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            expected: FORMAT_VERSION,
        });
    }
    let body_end = bytes.len() - 4;
    let stored_crc = u32::from_le_bytes(bytes[body_end..].try_into().unwrap());
    let actual_crc = crc32(&bytes[..body_end]);
    if stored_crc != actual_crc {
        return Err(PersistError::corrupt(
            path,
            format!("CRC mismatch (stored {stored_crc:08x}, computed {actual_crc:08x})"),
        ));
    }
    // The kind byte is validated after the CRC: a kind mismatch on an
    // intact file means the manifest and segments disagree.
    let kind = bytes[12];
    if kind != expected_kind {
        return Err(PersistError::corrupt(
            path,
            format!("segment kind {kind} where {expected_kind} was expected"),
        ));
    }
    bytes.truncate(body_end);
    bytes.drain(..header);
    Ok(bytes)
}

/// Fsync a directory so a just-renamed file inside it survives a crash
/// (POSIX requires the directory entry itself to be flushed).
pub(crate) fn sync_dir(dir: &Path) -> Result<(), PersistError> {
    let handle = File::open(dir).map_err(|e| PersistError::io(dir, e))?;
    handle.sync_all().map_err(|e| PersistError::io(dir, e))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn writer_reader_round_trip() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX);
        w.put_i64(-42);
        w.put_f32(1.5);
        w.put_f64(-0.0);
        w.put_f32s(&[f32::NAN, 2.0]);
        w.put_f64s(&[f64::INFINITY]);
        w.put_str("snapshot ✓");
        let bytes = w.into_bytes();
        let path = Path::new("test");
        let mut r = ByteReader::new(&bytes, path);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert!(r.get_bool().unwrap());
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX);
        assert_eq!(r.get_i64().unwrap(), -42);
        assert_eq!(r.get_f32().unwrap(), 1.5);
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        let f32s = r.get_f32s().unwrap();
        assert!(f32s[0].is_nan() && f32s[1] == 2.0);
        assert_eq!(r.get_f64s().unwrap(), vec![f64::INFINITY]);
        assert_eq!(r.get_str().unwrap(), "snapshot ✓");
        r.finish().unwrap();
    }

    #[test]
    fn reader_overrun_is_a_typed_error_not_a_panic() {
        let bytes = [1u8, 2, 3];
        let path = Path::new("test");
        let mut r = ByteReader::new(&bytes, path);
        assert!(matches!(r.get_u64(), Err(PersistError::Corrupt { .. })));
        // a lying count cannot allocate past the buffer either
        let mut w = ByteWriter::new();
        w.put_u64(u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes, path);
        assert!(matches!(r.get_count(), Err(PersistError::Corrupt { .. })));
    }

    #[test]
    fn segment_round_trip_and_fault_detection() {
        let dir = std::env::temp_dir().join(format!("dust-codec-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");
        let payload = b"hello segment".to_vec();
        write_segment(&path, 3, &payload).unwrap();
        assert_eq!(read_segment(&path, 3).unwrap(), payload);
        // wrong kind
        assert!(matches!(
            read_segment(&path, 4),
            Err(PersistError::Corrupt { .. })
        ));
        // flip one bit anywhere → CRC catches it
        let mut bytes = std::fs::read(&path).unwrap();
        for offset in [0, 9, 13, bytes.len() - 1] {
            let mut corrupted = bytes.clone();
            corrupted[offset] ^= 0x10;
            std::fs::write(&path, &corrupted).unwrap();
            let err = read_segment(&path, 3);
            assert!(err.is_err(), "bit flip at {offset} went undetected");
        }
        // truncation → typed error
        bytes.truncate(bytes.len() - 1);
        std::fs::write(&path, &bytes).unwrap();
        assert!(read_segment(&path, 3).is_err());
        std::fs::write(&path, b"short").unwrap();
        assert!(matches!(
            read_segment(&path, 3),
            Err(PersistError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn version_skew_is_reported_as_such() {
        let dir = std::env::temp_dir().join(format!("dust-codec-ver-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.bin");
        write_segment(&path, 1, b"x").unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // bump the version field and re-seal the CRC so only the version
        // check can fail
        bytes[8] = 99;
        let body_end = bytes.len() - 4;
        let crc = crc32(&bytes[..body_end]);
        bytes[body_end..].copy_from_slice(&crc.to_le_bytes());
        std::fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            read_segment(&path, 1),
            Err(PersistError::UnsupportedVersion { found: 99, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
