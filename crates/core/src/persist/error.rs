//! Typed persistence and session errors.
//!
//! Every failure mode of the durable store is a distinct, matchable
//! variant: callers (the `serve` binary, the recovery fallback, the
//! fault-injection suite) branch on *what* went wrong — a corrupt file is
//! recoverable by rebuilding from the lake, an I/O error usually is not —
//! instead of string-matching formatted messages.

use std::fmt;
use std::path::PathBuf;

/// An error from the snapshot/WAL persistence layer.
///
/// The contract of every read path: a damaged file (bit flip, torn write,
/// truncation, version skew) is *detected* and surfaces as one of these —
/// never a panic, never silently wrong data.
#[derive(Debug)]
pub enum PersistError {
    /// An operating-system I/O failure (open, read, write, fsync, rename).
    Io {
        /// File or directory the operation touched.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A file failed validation: bad magic, checksum mismatch, impossible
    /// field value, or an inconsistency between snapshot segments.
    Corrupt {
        /// The offending file.
        path: PathBuf,
        /// What exactly failed to validate.
        detail: String,
    },
    /// A file was written by an incompatible format version.
    UnsupportedVersion {
        /// The offending file.
        path: PathBuf,
        /// Version found in the file header.
        found: u32,
        /// Version this build reads and writes.
        expected: u32,
    },
    /// The directory holds no snapshot (no `MANIFEST`): nothing to open.
    NoSnapshot {
        /// The snapshot directory.
        dir: PathBuf,
    },
    /// WAL records did not replay cleanly against the snapshot (sequence
    /// gap, or a logged mutation the restored session rejected).
    Replay {
        /// LSN of the record that failed to apply.
        lsn: u64,
        /// Why it failed.
        detail: String,
    },
}

impl PersistError {
    /// A short, stable machine-readable tag for the error class (used by
    /// the `serve` binary's JSONL error responses).
    pub fn kind(&self) -> &'static str {
        match self {
            PersistError::Io { .. } => "io",
            PersistError::Corrupt { .. } => "corrupt",
            PersistError::UnsupportedVersion { .. } => "unsupported_version",
            PersistError::NoSnapshot { .. } => "no_snapshot",
            PersistError::Replay { .. } => "replay",
        }
    }
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Io { path, source } => {
                write!(f, "I/O error on {}: {source}", path.display())
            }
            PersistError::Corrupt { path, detail } => {
                write!(f, "corrupt file {}: {detail}", path.display())
            }
            PersistError::UnsupportedVersion {
                path,
                found,
                expected,
            } => write!(
                f,
                "{} has format version {found}, this build supports {expected}",
                path.display()
            ),
            PersistError::NoSnapshot { dir } => {
                write!(f, "no snapshot in {} (missing MANIFEST)", dir.display())
            }
            PersistError::Replay { lsn, detail } => {
                write!(f, "WAL replay failed at LSN {lsn}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PersistError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl PersistError {
    pub(crate) fn io(path: impl Into<PathBuf>, source: std::io::Error) -> Self {
        PersistError::Io {
            path: path.into(),
            source,
        }
    }

    pub(crate) fn corrupt(path: impl Into<PathBuf>, detail: impl Into<String>) -> Self {
        PersistError::Corrupt {
            path: path.into(),
            detail: detail.into(),
        }
    }
}

/// An error from a [`crate::LakeSession`] serving or persistence operation
/// — the one type the serving layer needs to round-trip any failure.
#[derive(Debug)]
pub enum SessionError {
    /// A lake/table operation failed (duplicate add, unknown table, …).
    Table(dust_table::TableError),
    /// The durable store failed (see [`PersistError`]).
    Persist(PersistError),
    /// A query worker panicked. The panic is confined to its own result
    /// slot: session state is immutable snapshots, so nothing is poisoned
    /// and every other in-flight and later request keeps serving.
    QueryPanicked {
        /// The panic payload, when it was a string.
        detail: String,
    },
    /// A pinned-generation read ([`crate::LakeSession::view_at`]) asked
    /// for a generation outside the bounded history window: either already
    /// evicted (older than the oldest retained snapshot) or never
    /// published (newer than the current generation — e.g. the client
    /// reconnected to a restarted server whose history starts empty).
    GenerationEvicted {
        /// The generation the caller asked to pin.
        requested: u64,
        /// Oldest generation still retained.
        oldest: u64,
        /// Newest (current) generation.
        newest: u64,
    },
}

impl SessionError {
    /// A short, stable machine-readable tag for the error class.
    pub fn kind(&self) -> &'static str {
        match self {
            SessionError::Table(_) => "table",
            SessionError::Persist(e) => e.kind(),
            SessionError::QueryPanicked { .. } => "panic",
            SessionError::GenerationEvicted { .. } => "generation_evicted",
        }
    }
}

impl fmt::Display for SessionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SessionError::Table(e) => write!(f, "{e}"),
            SessionError::Persist(e) => write!(f, "{e}"),
            SessionError::QueryPanicked { detail } => {
                write!(f, "query worker panicked: {detail}")
            }
            SessionError::GenerationEvicted {
                requested,
                oldest,
                newest,
            } => {
                if requested > newest {
                    write!(
                        f,
                        "generation {requested} has not been published (current is {newest})"
                    )
                } else {
                    write!(
                        f,
                        "generation {requested} evicted from history \
                         (retained window is [{oldest}, {newest}])"
                    )
                }
            }
        }
    }
}

impl std::error::Error for SessionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SessionError::Table(e) => Some(e),
            SessionError::Persist(e) => Some(e),
            SessionError::QueryPanicked { .. } => None,
            SessionError::GenerationEvicted { .. } => None,
        }
    }
}

impl From<dust_table::TableError> for SessionError {
    fn from(e: dust_table::TableError) -> Self {
        SessionError::Table(e)
    }
}

impl From<PersistError> for SessionError {
    fn from(e: PersistError) -> Self {
        SessionError::Persist(e)
    }
}
