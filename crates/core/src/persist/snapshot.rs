//! The versioned snapshot: a whole [`LakeSession`] as checksummed segment
//! files.
//!
//! One snapshot *epoch* is a set of segment files named `seg-{epoch}-*.bin`
//! plus a WAL `wal-{epoch}.log`, all referenced by the single `MANIFEST`
//! file. Checkpointing writes a complete new epoch before atomically
//! renaming the new manifest into place, so a crash at any point leaves
//! the directory with one consistent epoch (old or new, never a mix).
//!
//! Segments (each framed and CRC32-sealed by [`super::codec`]):
//!
//! * **manifest** — epoch, generation, shard count, the full
//!   [`PipelineConfig`], and whether a trained model segment exists;
//! * **lake** — the [`DataLake`] itself (tables, queries, ground truth),
//!   required both for query execution and for replaying WAL adds;
//! * **shard-i** — one per tuple shard: the compacted live rows of its
//!   [`EmbeddingStore`] (data + norms + inverse norms, bit-exact), its
//!   `(table, row)` provenance refs, and its member-table list. Tombstone
//!   state never round-trips: the snapshot *is* the compacted form, which
//!   serves identically (pinned by `tests/session_recovery.rs`);
//! * **columns** — the integer-exact TF-IDF corpus plus the per-shard
//!   column stores (written from a refreshed, non-stale column side);
//! * **search** — the configured technique's candidate structures
//!   ([`InvertedValueIndex`] postings / Starmie / D3L per-table column
//!   embeddings); the searcher objects themselves are `::new()` defaults
//!   and are reconstructed, not persisted;
//! * **model** — the trained [`DustModel`] head weights and centering
//!   vector (present only when the session embeds through a model), so a
//!   restart never re-pays training.
//!
//! Everything floating-point is written via IEEE bit patterns, so a
//! restored session's scores are **bit-identical** to the saved one's.

use super::codec::{read_segment, write_segment, ByteReader, ByteWriter};
use super::error::PersistError;
use crate::config::{DustConfigSerde, PipelineConfig, SearchTechnique, TupleEmbedderKind};
use crate::session::{
    ColumnShard, LakeSession, LakeShard, SearchStructures, SessionEmbedder, SessionOptions,
    SessionView,
};
use dust_cluster::{AgglomerativeAlgorithm, Linkage};
use dust_embed::{
    ColumnEncoder, ColumnSerialization, Distance, DustModel, EmbeddingStore, FineTuneConfig,
    PretrainedModel, ProjectionHead, TfIdfCorpus, TupleEncoder, Vector,
};
use dust_search::{
    D3lSearch, D3lSignalStats, InvertedValueIndex, OverlapSearch, StarmieColumnStore, StarmieSearch,
};
use dust_table::{Column, DataLake, Table, TableId, Value};
// dust-lint: allow(deterministic-encode) -- decode-side string interning only; never feeds encoded bytes
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Segment kind bytes (validated after the CRC, so a mismatch on an intact
/// file means manifest/segment skew, not bit rot).
pub(crate) const KIND_MANIFEST: u8 = 0;
pub(crate) const KIND_LAKE: u8 = 1;
pub(crate) const KIND_SHARD: u8 = 2;
pub(crate) const KIND_COLUMNS: u8 = 3;
pub(crate) const KIND_SEARCH: u8 = 4;
pub(crate) const KIND_MODEL: u8 = 5;

/// The manifest: everything needed to locate and interpret the segment
/// files of the current epoch.
#[derive(Debug, Clone)]
pub(crate) struct Manifest {
    pub(crate) epoch: u64,
    pub(crate) generation: u64,
    pub(crate) num_shards: usize,
    pub(crate) model_injected: bool,
    pub(crate) has_model: bool,
    pub(crate) config: PipelineConfig,
}

pub(crate) fn manifest_path(dir: &Path) -> PathBuf {
    dir.join("MANIFEST")
}

pub(crate) fn lake_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("seg-{epoch}-lake.bin"))
}

pub(crate) fn shard_path(dir: &Path, epoch: u64, shard: usize) -> PathBuf {
    dir.join(format!("seg-{epoch}-shard-{shard}.bin"))
}

pub(crate) fn columns_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("seg-{epoch}-columns.bin"))
}

pub(crate) fn search_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("seg-{epoch}-search.bin"))
}

pub(crate) fn model_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("seg-{epoch}-model.bin"))
}

pub(crate) fn wal_path(dir: &Path, epoch: u64) -> PathBuf {
    dir.join(format!("wal-{epoch}.log"))
}

// ---------------------------------------------------------------------------
// enum tags
// ---------------------------------------------------------------------------

fn model_tag(m: PretrainedModel) -> u8 {
    match m {
        PretrainedModel::FastText => 0,
        PretrainedModel::Glove => 1,
        PretrainedModel::Bert => 2,
        PretrainedModel::Roberta => 3,
        PretrainedModel::SBert => 4,
        PretrainedModel::Ditto => 5,
    }
}

fn model_from(tag: u8, r: &ByteReader<'_>) -> Result<PretrainedModel, PersistError> {
    Ok(match tag {
        0 => PretrainedModel::FastText,
        1 => PretrainedModel::Glove,
        2 => PretrainedModel::Bert,
        3 => PretrainedModel::Roberta,
        4 => PretrainedModel::SBert,
        5 => PretrainedModel::Ditto,
        _ => return Err(r.corrupt(format!("unknown pretrained-model tag {tag}"))),
    })
}

fn serialization_tag(s: ColumnSerialization) -> u8 {
    match s {
        ColumnSerialization::CellLevel => 0,
        ColumnSerialization::ColumnLevel => 1,
    }
}

fn serialization_from(tag: u8, r: &ByteReader<'_>) -> Result<ColumnSerialization, PersistError> {
    Ok(match tag {
        0 => ColumnSerialization::CellLevel,
        1 => ColumnSerialization::ColumnLevel,
        _ => return Err(r.corrupt(format!("unknown column-serialization tag {tag}"))),
    })
}

fn distance_tag(d: Distance) -> u8 {
    match d {
        Distance::Cosine => 0,
        Distance::Euclidean => 1,
        Distance::Manhattan => 2,
    }
}

fn distance_from(tag: u8, r: &ByteReader<'_>) -> Result<Distance, PersistError> {
    Ok(match tag {
        0 => Distance::Cosine,
        1 => Distance::Euclidean,
        2 => Distance::Manhattan,
        _ => return Err(r.corrupt(format!("unknown distance tag {tag}"))),
    })
}

fn linkage_tag(l: Linkage) -> u8 {
    match l {
        Linkage::Single => 0,
        Linkage::Complete => 1,
        Linkage::Average => 2,
        Linkage::Ward => 3,
        Linkage::Centroid => 4,
        Linkage::Median => 5,
    }
}

fn linkage_from(tag: u8, r: &ByteReader<'_>) -> Result<Linkage, PersistError> {
    Ok(match tag {
        0 => Linkage::Single,
        1 => Linkage::Complete,
        2 => Linkage::Average,
        3 => Linkage::Ward,
        4 => Linkage::Centroid,
        5 => Linkage::Median,
        _ => return Err(r.corrupt(format!("unknown linkage tag {tag}"))),
    })
}

fn algorithm_tag(a: AgglomerativeAlgorithm) -> u8 {
    match a {
        AgglomerativeAlgorithm::Auto => 0,
        AgglomerativeAlgorithm::NnChain => 1,
        AgglomerativeAlgorithm::Generic => 2,
    }
}

fn algorithm_from(tag: u8, r: &ByteReader<'_>) -> Result<AgglomerativeAlgorithm, PersistError> {
    Ok(match tag {
        0 => AgglomerativeAlgorithm::Auto,
        1 => AgglomerativeAlgorithm::NnChain,
        2 => AgglomerativeAlgorithm::Generic,
        _ => return Err(r.corrupt(format!("unknown clustering-algorithm tag {tag}"))),
    })
}

fn technique_tag(t: SearchTechnique) -> u8 {
    match t {
        SearchTechnique::Overlap => 0,
        SearchTechnique::D3l => 1,
        SearchTechnique::Starmie => 2,
    }
}

fn technique_from(tag: u8, r: &ByteReader<'_>) -> Result<SearchTechnique, PersistError> {
    Ok(match tag {
        0 => SearchTechnique::Overlap,
        1 => SearchTechnique::D3l,
        2 => SearchTechnique::Starmie,
        _ => return Err(r.corrupt(format!("unknown search-technique tag {tag}"))),
    })
}

// ---------------------------------------------------------------------------
// value / table / lake codecs
// ---------------------------------------------------------------------------

fn put_value(w: &mut ByteWriter, v: &Value) {
    match v {
        Value::Null => w.put_u8(0),
        Value::Bool(b) => {
            w.put_u8(1);
            w.put_bool(*b);
        }
        Value::Int(i) => {
            w.put_u8(2);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(3);
            w.put_f64(*f);
        }
        Value::Text(s) => {
            w.put_u8(4);
            w.put_str(s);
        }
    }
}

fn get_value(r: &mut ByteReader<'_>) -> Result<Value, PersistError> {
    Ok(match r.get_u8()? {
        0 => Value::Null,
        1 => Value::Bool(r.get_bool()?),
        2 => Value::Int(r.get_i64()?),
        3 => Value::Float(r.get_f64()?),
        4 => Value::Text(r.get_str()?),
        t => return Err(r.corrupt(format!("unknown value tag {t}"))),
    })
}

pub(crate) fn put_table(w: &mut ByteWriter, table: &Table) {
    w.put_str(table.name());
    w.put_usize(table.num_columns());
    for column in table.columns() {
        w.put_str(column.name());
        w.put_usize(column.len());
        for value in column.values() {
            put_value(w, value);
        }
    }
}

pub(crate) fn get_table(r: &mut ByteReader<'_>) -> Result<Table, PersistError> {
    let name = r.get_str()?;
    let num_columns = r.get_count()?;
    let mut columns = Vec::with_capacity(num_columns);
    for _ in 0..num_columns {
        let col_name = r.get_str()?;
        let num_values = r.get_count()?;
        let mut values = Vec::with_capacity(num_values);
        for _ in 0..num_values {
            values.push(get_value(r)?);
        }
        columns.push(Column::new(col_name, values));
    }
    Table::from_columns(name, columns)
        .map_err(|e| r.corrupt(format!("decoded table is invalid: {e}")))
}

fn encode_lake(lake: &DataLake) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(lake.name());
    w.put_usize(lake.num_queries());
    for query in lake.queries() {
        put_table(&mut w, query);
    }
    w.put_usize(lake.num_tables());
    for table in lake.tables() {
        put_table(&mut w, table);
    }
    let gt = lake.ground_truth();
    let queries: Vec<&TableId> = gt.queries().collect();
    w.put_usize(queries.len());
    for query in queries {
        w.put_str(query);
        let unionable = gt.unionable_with(query);
        w.put_usize(unionable.len());
        for table in &unionable {
            w.put_str(table);
        }
    }
    w.into_bytes()
}

fn decode_lake(bytes: &[u8], path: &Path) -> Result<DataLake, PersistError> {
    let mut r = ByteReader::new(bytes, path);
    let name = r.get_str()?;
    let mut lake = DataLake::new(name);
    let num_queries = r.get_count()?;
    for _ in 0..num_queries {
        let query = get_table(&mut r)?;
        lake.add_query(query)
            .map_err(|e| PersistError::corrupt(path, format!("decoded query rejected: {e}")))?;
    }
    let num_tables = r.get_count()?;
    for _ in 0..num_tables {
        let table = get_table(&mut r)?;
        lake.add_table(table)
            .map_err(|e| PersistError::corrupt(path, format!("decoded table rejected: {e}")))?;
    }
    let num_gt = r.get_count()?;
    for _ in 0..num_gt {
        let query = r.get_str()?;
        let n = r.get_count()?;
        for _ in 0..n {
            let table = r.get_str()?;
            lake.add_ground_truth(query.clone(), table);
        }
    }
    r.finish()?;
    Ok(lake)
}

// ---------------------------------------------------------------------------
// embedding-store / shard / columns codecs
// ---------------------------------------------------------------------------

/// Write the **live rows** of a store (data, norms, inverse norms verbatim
/// — bit-exact). Tombstoned rows are filtered out here, so the on-disk
/// form is always the compacted one.
fn put_live_store(w: &mut ByteWriter, store: &EmbeddingStore) {
    let dim = store.dim();
    w.put_usize(dim);
    let live: Vec<usize> = store.live_indices().collect();
    w.put_usize(live.len());
    let mut data = Vec::with_capacity(live.len() * dim);
    let mut norms = Vec::with_capacity(live.len());
    let mut inv_norms = Vec::with_capacity(live.len());
    for &i in &live {
        data.extend_from_slice(store.row(i));
        norms.push(store.norm(i));
        inv_norms.push(store.inv_norm(i));
    }
    w.put_f32s(&data);
    w.put_f32s(&norms);
    w.put_f64s(&inv_norms);
}

fn get_store(r: &mut ByteReader<'_>) -> Result<EmbeddingStore, PersistError> {
    let dim = r.get_usize()?;
    let n = r.get_usize()?;
    let data = r.get_f32s()?;
    let norms = r.get_f32s()?;
    let inv_norms = r.get_f64s()?;
    if norms.len() != n || inv_norms.len() != n || data.len() != n.saturating_mul(dim) {
        return Err(r.corrupt(format!(
            "store buffers disagree: n={n}, dim={dim}, data={}, norms={}, inv_norms={}",
            data.len(),
            norms.len(),
            inv_norms.len()
        )));
    }
    Ok(EmbeddingStore::from_raw_parts(dim, data, norms, inv_norms))
}

fn encode_shard(shard: &LakeShard) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(shard.tables.len());
    for table in &shard.tables {
        w.put_str(table);
    }
    put_live_store(&mut w, &shard.tuple_store);
    // refs of the live rows only, in live order — parallel to the store
    // rows just written
    let live: Vec<usize> = shard.tuple_store.live_indices().collect();
    w.put_usize(live.len());
    for &i in &live {
        let (table, row) = &shard.tuple_refs[i];
        w.put_str(table);
        w.put_usize(*row);
    }
    w.into_bytes()
}

fn decode_shard(bytes: &[u8], path: &Path) -> Result<LakeShard, PersistError> {
    let mut r = ByteReader::new(bytes, path);
    let num_tables = r.get_count()?;
    let mut tables = Vec::with_capacity(num_tables);
    for _ in 0..num_tables {
        tables.push(r.get_str()?);
    }
    let tuple_store = get_store(&mut r)?;
    let num_refs = r.get_count()?;
    if num_refs != tuple_store.len() {
        return Err(r.corrupt(format!(
            "{num_refs} tuple refs for {} store rows",
            tuple_store.len()
        )));
    }
    // intern one Arc<str> per member table so the decoded shard, like a
    // freshly built one, carries one name allocation per table (not per row)
    // dust-lint: allow(deterministic-encode) -- decode-side interning map; iteration order never observed
    let mut interned: HashMap<String, Arc<str>> = HashMap::new();
    let mut tuple_refs: Vec<(Arc<str>, usize)> = Vec::with_capacity(num_refs);
    for _ in 0..num_refs {
        let table = r.get_str()?;
        let row = r.get_usize()?;
        let table = interned
            .entry(table.clone())
            .or_insert_with(|| Arc::from(table.as_str()))
            .clone();
        tuple_refs.push((table, row));
    }
    r.finish()?;
    Ok(LakeShard {
        tables,
        tuple_store,
        tuple_refs,
    })
}

fn encode_columns(corpus: &TfIdfCorpus, column_shards: &[ColumnShard]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_usize(corpus.num_documents());
    let entries = corpus.document_frequencies();
    w.put_usize(entries.len());
    for (token, df) in &entries {
        w.put_str(token);
        w.put_usize(*df);
    }
    w.put_usize(column_shards.len());
    for shard in column_shards {
        put_live_store(&mut w, &shard.store);
        w.put_usize(shard.refs.len());
        for (table, column) in &shard.refs {
            w.put_str(table);
            w.put_str(column);
        }
    }
    w.into_bytes()
}

fn decode_columns(
    bytes: &[u8],
    path: &Path,
) -> Result<(TfIdfCorpus, Vec<ColumnShard>), PersistError> {
    let mut r = ByteReader::new(bytes, path);
    let documents = r.get_usize()?;
    let num_entries = r.get_count()?;
    let mut entries = Vec::with_capacity(num_entries);
    for _ in 0..num_entries {
        let token = r.get_str()?;
        let df = r.get_usize()?;
        entries.push((token, df));
    }
    let corpus = TfIdfCorpus::from_document_frequencies(documents, entries);
    let num_shards = r.get_count()?;
    let mut shards = Vec::with_capacity(num_shards);
    for _ in 0..num_shards {
        let store = get_store(&mut r)?;
        let num_refs = r.get_count()?;
        if num_refs != store.len() {
            return Err(r.corrupt(format!(
                "{num_refs} column refs for {} store rows",
                store.len()
            )));
        }
        let mut refs = Vec::with_capacity(num_refs);
        for _ in 0..num_refs {
            let table = r.get_str()?;
            let column = r.get_str()?;
            refs.push((table, column));
        }
        shards.push(ColumnShard { store, refs });
    }
    r.finish()?;
    Ok((corpus, shards))
}

// ---------------------------------------------------------------------------
// search-structure codec
// ---------------------------------------------------------------------------

fn put_index(w: &mut ByteWriter, index: &InvertedValueIndex) {
    w.put_usize(index.num_tables());
    let entries = index.entries();
    w.put_usize(entries.len());
    for (value, tables) in &entries {
        w.put_str(value);
        w.put_usize(tables.len());
        for table in tables {
            w.put_str(table);
        }
    }
}

fn get_index(r: &mut ByteReader<'_>) -> Result<InvertedValueIndex, PersistError> {
    let indexed_tables = r.get_usize()?;
    let num_entries = r.get_count()?;
    let mut entries = Vec::with_capacity(num_entries);
    for _ in 0..num_entries {
        let value = r.get_str()?;
        let n = r.get_count()?;
        let mut tables = Vec::with_capacity(n);
        for _ in 0..n {
            tables.push(r.get_str()?);
        }
        entries.push((value, tables));
    }
    Ok(InvertedValueIndex::from_entries(indexed_tables, entries))
}

fn put_column_entries(w: &mut ByteWriter, entries: &[(String, Vec<Vector>)]) {
    w.put_usize(entries.len());
    for (table, vectors) in entries {
        w.put_str(table);
        w.put_usize(vectors.len());
        for v in vectors {
            w.put_f32s(v.as_slice());
        }
    }
}

fn get_column_entries(r: &mut ByteReader<'_>) -> Result<Vec<(String, Vec<Vector>)>, PersistError> {
    let n = r.get_count()?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        let table = r.get_str()?;
        let num_vectors = r.get_count()?;
        let mut vectors = Vec::with_capacity(num_vectors);
        for _ in 0..num_vectors {
            vectors.push(Vector::new(r.get_f32s()?));
        }
        entries.push((table, vectors));
    }
    Ok(entries)
}

fn encode_search(search: &SearchStructures) -> Vec<u8> {
    let mut w = ByteWriter::new();
    match search {
        SearchStructures::Overlap { index, .. } => {
            w.put_u8(technique_tag(SearchTechnique::Overlap));
            put_index(&mut w, index);
        }
        SearchStructures::D3l { index, stats, .. } => {
            w.put_u8(technique_tag(SearchTechnique::D3l));
            put_index(&mut w, index);
            put_column_entries(&mut w, &stats.entries());
        }
        SearchStructures::Starmie { store, .. } => {
            w.put_u8(technique_tag(SearchTechnique::Starmie));
            put_column_entries(&mut w, &store.entries());
        }
    }
    w.into_bytes()
}

/// Decode the search segment. The searcher objects are the same `::new()`
/// defaults a fresh session constructs — only the lake-derived structures
/// round-trip. The decoded technique must match `expected` (from the
/// manifest's config): a mismatch means the files are inconsistent.
fn decode_search(
    bytes: &[u8],
    path: &Path,
    expected: SearchTechnique,
) -> Result<SearchStructures, PersistError> {
    let mut r = ByteReader::new(bytes, path);
    let technique = technique_from(r.get_u8()?, &r)?;
    if technique != expected {
        return Err(PersistError::corrupt(
            path,
            format!("search segment holds {technique:?} but the manifest config says {expected:?}"),
        ));
    }
    let search = match technique {
        SearchTechnique::Overlap => {
            let index = get_index(&mut r)?;
            SearchStructures::Overlap {
                search: OverlapSearch::new(),
                index,
            }
        }
        SearchTechnique::D3l => {
            let index = get_index(&mut r)?;
            let stats = D3lSignalStats::from_entries(get_column_entries(&mut r)?);
            SearchStructures::D3l {
                search: D3lSearch::new(),
                index,
                stats,
            }
        }
        SearchTechnique::Starmie => {
            let store = StarmieColumnStore::from_entries(get_column_entries(&mut r)?);
            SearchStructures::Starmie {
                search: StarmieSearch::new(),
                store,
            }
        }
    };
    r.finish()?;
    Ok(search)
}

// ---------------------------------------------------------------------------
// model codec
// ---------------------------------------------------------------------------

fn put_finetune_config(w: &mut ByteWriter, c: &FineTuneConfig) {
    w.put_usize(c.hidden_dim);
    w.put_usize(c.output_dim);
    w.put_f32(c.dropout);
    w.put_f32(c.learning_rate);
    w.put_usize(c.max_epochs);
    w.put_usize(c.patience);
    w.put_f64(c.margin);
    w.put_u64(c.seed);
}

fn get_finetune_config(r: &mut ByteReader<'_>) -> Result<FineTuneConfig, PersistError> {
    Ok(FineTuneConfig {
        hidden_dim: r.get_usize()?,
        output_dim: r.get_usize()?,
        dropout: r.get_f32()?,
        learning_rate: r.get_f32()?,
        max_epochs: r.get_usize()?,
        patience: r.get_usize()?,
        margin: r.get_f64()?,
        seed: r.get_u64()?,
    })
}

fn encode_model(model: &DustModel) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u8(model_tag(model.backbone()));
    let head = model.head();
    put_finetune_config(&mut w, head.config());
    w.put_usize(head.input_dim());
    let (w1, b1, w2, b2) = head.raw_weights();
    w.put_f32s(w1);
    w.put_f32s(b1);
    w.put_f32s(w2);
    w.put_f32s(b2);
    match model.center() {
        Some(center) => {
            w.put_bool(true);
            w.put_f32s(center.as_slice());
        }
        None => w.put_bool(false),
    }
    w.into_bytes()
}

fn decode_model(bytes: &[u8], path: &Path) -> Result<DustModel, PersistError> {
    let mut r = ByteReader::new(bytes, path);
    let backbone = model_from(r.get_u8()?, &r)?;
    let config = get_finetune_config(&mut r)?;
    let input_dim = r.get_usize()?;
    let w1 = r.get_f32s()?;
    let b1 = r.get_f32s()?;
    let w2 = r.get_f32s()?;
    let b2 = r.get_f32s()?;
    let center = if r.get_bool()? {
        Some(Vector::new(r.get_f32s()?))
    } else {
        None
    };
    r.finish()?;
    // Validate shapes with typed errors before the constructors' asserts
    // can fire (decode must never panic, even on an adversarial file).
    if w1.len() != config.hidden_dim.saturating_mul(input_dim)
        || b1.len() != config.hidden_dim
        || w2.len() != config.output_dim.saturating_mul(config.hidden_dim)
        || b2.len() != config.output_dim
        || config.hidden_dim == 0
        || config.output_dim == 0
        || input_dim == 0
    {
        return Err(PersistError::corrupt(path, "model weight shapes disagree"));
    }
    if input_dim != TupleEncoder::new(backbone).dim() {
        return Err(PersistError::corrupt(
            path,
            format!("head input dim {input_dim} does not match backbone {backbone:?}"),
        ));
    }
    if let Some(c) = &center {
        if c.dim() != input_dim {
            return Err(PersistError::corrupt(
                path,
                "centering vector dim does not match the backbone",
            ));
        }
    }
    let head = ProjectionHead::from_raw_weights(input_dim, config, w1, b1, w2, b2);
    Ok(DustModel::from_parts(backbone, head, center))
}

// ---------------------------------------------------------------------------
// manifest codec
// ---------------------------------------------------------------------------

fn encode_manifest(m: &Manifest) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(m.epoch);
    w.put_u64(m.generation);
    w.put_usize(m.num_shards);
    w.put_bool(m.model_injected);
    w.put_bool(m.has_model);
    let c = &m.config;
    w.put_u8(technique_tag(c.search));
    w.put_usize(c.tables_per_query);
    w.put_u8(model_tag(c.alignment_model));
    w.put_u8(serialization_tag(c.alignment_serialization));
    w.put_u8(linkage_tag(c.alignment_linkage));
    match &c.embedder {
        TupleEmbedderKind::Pretrained(backbone) => {
            w.put_u8(0);
            w.put_u8(model_tag(*backbone));
        }
        TupleEmbedderKind::FineTuned {
            backbone,
            config,
            training_pairs,
        } => {
            w.put_u8(1);
            w.put_u8(model_tag(*backbone));
            put_finetune_config(&mut w, config);
            w.put_usize(*training_pairs);
        }
    }
    w.put_u8(distance_tag(c.distance));
    w.put_usize(c.diversifier.p);
    match c.diversifier.prune_to {
        Some(s) => {
            w.put_bool(true);
            w.put_usize(s);
        }
        None => w.put_bool(false),
    }
    w.put_u8(algorithm_tag(c.diversifier.algorithm));
    w.put_bool(c.diversifier.full_dendrogram);
    w.into_bytes()
}

fn decode_manifest(bytes: &[u8], path: &Path) -> Result<Manifest, PersistError> {
    let mut r = ByteReader::new(bytes, path);
    let epoch = r.get_u64()?;
    let generation = r.get_u64()?;
    let num_shards = r.get_usize()?;
    let model_injected = r.get_bool()?;
    let has_model = r.get_bool()?;
    let search = technique_from(r.get_u8()?, &r)?;
    let tables_per_query = r.get_usize()?;
    let alignment_model = model_from(r.get_u8()?, &r)?;
    let alignment_serialization = serialization_from(r.get_u8()?, &r)?;
    let alignment_linkage = linkage_from(r.get_u8()?, &r)?;
    let embedder = match r.get_u8()? {
        0 => TupleEmbedderKind::Pretrained(model_from(r.get_u8()?, &r)?),
        1 => {
            let backbone = model_from(r.get_u8()?, &r)?;
            let config = get_finetune_config(&mut r)?;
            let training_pairs = r.get_usize()?;
            TupleEmbedderKind::FineTuned {
                backbone,
                config,
                training_pairs,
            }
        }
        t => return Err(r.corrupt(format!("unknown embedder tag {t}"))),
    };
    let distance = distance_from(r.get_u8()?, &r)?;
    let p = r.get_usize()?;
    let prune_to = if r.get_bool()? {
        Some(r.get_usize()?)
    } else {
        None
    };
    let algorithm = algorithm_from(r.get_u8()?, &r)?;
    let full_dendrogram = r.get_bool()?;
    r.finish()?;
    if num_shards == 0 {
        return Err(PersistError::corrupt(path, "manifest claims zero shards"));
    }
    if !has_model && matches!(embedder, TupleEmbedderKind::FineTuned { .. }) {
        return Err(PersistError::corrupt(
            path,
            "fine-tuned config without a model segment",
        ));
    }
    Ok(Manifest {
        epoch,
        generation,
        num_shards,
        model_injected,
        has_model,
        config: PipelineConfig {
            search,
            tables_per_query,
            alignment_model,
            alignment_serialization,
            alignment_linkage,
            embedder,
            distance,
            diversifier: DustConfigSerde {
                p,
                prune_to,
                algorithm,
                full_dendrogram,
            },
        },
    })
}

// ---------------------------------------------------------------------------
// whole-snapshot write / read
// ---------------------------------------------------------------------------

/// Write every segment of epoch `epoch` (everything except the manifest
/// and the WAL, which the caller sequences for crash safety). Takes a
/// pinned [`SessionView`] so every segment photographs **one** generation
/// even while concurrent mutations publish newer ones.
pub(crate) fn write_epoch_segments(
    dir: &Path,
    view: &SessionView<'_>,
    epoch: u64,
) -> Result<(), PersistError> {
    write_segment(&lake_path(dir, epoch), KIND_LAKE, &encode_lake(view.lake()))?;
    for (i, shard) in view.shards().iter().enumerate() {
        write_segment(
            &shard_path(dir, epoch, i),
            KIND_SHARD,
            &encode_shard(shard.as_ref()),
        )?;
    }
    {
        // Materialize the pinned generation's (lazily-built) column side
        // first: the snapshot always holds the post-mutation,
        // corpus-consistent embeddings a fresh session would build.
        let columns = view.columns();
        write_segment(
            &columns_path(dir, epoch),
            KIND_COLUMNS,
            &encode_columns(view.corpus(), &columns),
        )?;
    }
    write_segment(
        &search_path(dir, epoch),
        KIND_SEARCH,
        &encode_search(view.search_structures()),
    )?;
    if let SessionEmbedder::Model(model) = view.session_embedder() {
        write_segment(&model_path(dir, epoch), KIND_MODEL, &encode_model(model))?;
    }
    Ok(())
}

/// The manifest that describes the view's pinned generation at `epoch`.
pub(crate) fn manifest_for(view: &SessionView<'_>, epoch: u64) -> Manifest {
    let session = view.session();
    Manifest {
        epoch,
        generation: view.generation(),
        num_shards: session.num_shards(),
        model_injected: session.model_injected,
        has_model: matches!(view.session_embedder(), SessionEmbedder::Model(_)),
        config: session.config().clone(),
    }
}

/// Atomically publish a manifest: write `MANIFEST.tmp`, fsync, rename over
/// `MANIFEST`, fsync the directory. A crash before the rename leaves the
/// old manifest (and its epoch files) fully intact.
pub(crate) fn publish_manifest(dir: &Path, manifest: &Manifest) -> Result<(), PersistError> {
    let tmp = dir.join("MANIFEST.tmp");
    write_segment(&tmp, KIND_MANIFEST, &encode_manifest(manifest))?;
    let target = manifest_path(dir);
    std::fs::rename(&tmp, &target).map_err(|e| PersistError::io(&target, e))?;
    super::codec::sync_dir(dir)?;
    Ok(())
}

/// Read and validate the manifest. [`PersistError::NoSnapshot`] when the
/// file does not exist (an empty directory is "nothing saved yet", not
/// corruption).
pub(crate) fn read_manifest(dir: &Path) -> Result<Manifest, PersistError> {
    let path = manifest_path(dir);
    if !path.exists() {
        return Err(PersistError::NoSnapshot {
            dir: dir.to_path_buf(),
        });
    }
    let bytes = read_segment(&path, KIND_MANIFEST)?;
    decode_manifest(&bytes, &path)
}

/// Load a full session from the manifest's epoch segments. The WAL is NOT
/// replayed here — [`super::SnapshotStore::open`] does that through the
/// live mutation paths.
pub(crate) fn load_session(dir: &Path, manifest: &Manifest) -> Result<LakeSession, PersistError> {
    let start = crate::clock::now();
    let epoch = manifest.epoch;

    let lp = lake_path(dir, epoch);
    let lake = decode_lake(&read_segment(&lp, KIND_LAKE)?, &lp)?;

    let mut shards = Vec::with_capacity(manifest.num_shards);
    for i in 0..manifest.num_shards {
        let sp = shard_path(dir, epoch, i);
        shards.push(decode_shard(&read_segment(&sp, KIND_SHARD)?, &sp)?);
    }

    let cp = columns_path(dir, epoch);
    let (corpus, column_shards) = decode_columns(&read_segment(&cp, KIND_COLUMNS)?, &cp)?;

    let sp = search_path(dir, epoch);
    let search = decode_search(
        &read_segment(&sp, KIND_SEARCH)?,
        &sp,
        manifest.config.search,
    )?;

    let embedder = if manifest.has_model {
        let mp = model_path(dir, epoch);
        SessionEmbedder::Model(decode_model(&read_segment(&mp, KIND_MODEL)?, &mp)?)
    } else {
        match &manifest.config.embedder {
            TupleEmbedderKind::Pretrained(backbone) => {
                SessionEmbedder::Encoder(TupleEncoder::new(*backbone))
            }
            TupleEmbedderKind::FineTuned { .. } => {
                // decode_manifest already rejects this combination
                return Err(PersistError::corrupt(
                    manifest_path(dir),
                    "fine-tuned config without a model segment",
                ));
            }
        }
    };

    let aligner_encoder = ColumnEncoder::new(
        manifest.config.alignment_model,
        manifest.config.alignment_serialization,
    );
    Ok(LakeSession::from_restored(
        lake,
        manifest.config.clone(),
        // History depth is a serving-time knob, not part of the persisted
        // format: a restored session takes the default (callers re-tune it
        // with `set_history_depth`) and its ring starts empty.
        SessionOptions {
            num_shards: manifest.num_shards,
            ..SessionOptions::default()
        },
        aligner_encoder,
        embedder,
        manifest.model_injected,
        search,
        shards,
        corpus,
        column_shards,
        manifest.generation,
        start.elapsed().as_secs_f64(),
    ))
}

/// Best-effort removal of every `seg-*`/`wal-*` file that does not belong
/// to `keep_epoch` (superseded epochs after a checkpoint, leftovers from a
/// crashed one). Failures are ignored: stale files are garbage, not state.
pub(crate) fn sweep_stale_epochs(dir: &Path, keep_epoch: u64) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let seg_keep = format!("seg-{keep_epoch}-");
    let wal_keep = format!("wal-{keep_epoch}.log");
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let stale = (name.starts_with("seg-") && !name.starts_with(&seg_keep))
            || (name.starts_with("wal-") && name != wal_keep)
            || name == "MANIFEST.tmp";
        if stale {
            let _ = std::fs::remove_file(entry.path());
        }
    }
}
