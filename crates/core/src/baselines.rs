//! End-to-end baselines for the Table 3 and Fig. 8 comparisons.
//!
//! Each baseline answers the same question as DUST — "give me k tuples to
//! add to the query table" — but with the strategy of an existing system:
//!
//! * [`StarmieBaseline`] — tuple-as-table Starmie: return the k data-lake
//!   tuples most *similar* to the query (Sec. 6.5.1);
//! * [`TupleRetrievalBaseline`] — a table-search system (Starmie or D3L)
//!   used as intended: union its top tables under the query schema and take
//!   the first k tuples (optionally deduplicated — the `-D` variants of the
//!   case study);
//! * [`LlmBaseline`] — the simulated generative model.

use dust_align::{outer_union, HolisticAligner};
use dust_diversify::{LlmConfig, SimulatedLlm};
use dust_search::{D3lSearch, StarmieSearch, StarmieTupleSearch, TableUnionSearch};
use dust_table::{DataLake, Table, Tuple};

/// Which table-search system backs a [`TupleRetrievalBaseline`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetrievalSystem {
    /// Starmie table search.
    Starmie,
    /// D3L table search.
    D3l,
}

impl RetrievalSystem {
    /// Name used in experiment output (`-D` suffix is added by the caller
    /// for the deduplicated variants).
    pub fn name(&self) -> &'static str {
        match self {
            RetrievalSystem::Starmie => "starmie",
            RetrievalSystem::D3l => "d3l",
        }
    }
}

/// Tuple-as-table Starmie baseline: every data-lake tuple of the retrieved
/// unionable tables is scored by its similarity to the query tuples and the
/// top-k most similar tuples are returned.
#[derive(Debug, Default)]
pub struct StarmieBaseline {
    search: StarmieTupleSearch,
}

impl StarmieBaseline {
    /// Create the baseline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Return the k data-lake tuples most similar to the query table.
    /// `candidates` are the unionable tuples produced by the outer union
    /// (so all baselines operate on the same candidate pool).
    pub fn top_k(&self, query: &Table, candidates: &[Tuple], k: usize) -> Vec<Tuple> {
        self.search
            .search_tuples(query, candidates, k)
            .into_iter()
            .map(|r| r.tuple)
            .collect()
    }
}

/// A table-search system used directly: union the tuples of its top-ranked
/// tables (in rank order) until k tuples are collected.
#[derive(Debug)]
pub struct TupleRetrievalBaseline {
    /// Backing search system.
    pub system: RetrievalSystem,
    /// Drop exact-duplicate tuples before taking the first k (the `-D`
    /// case-study variants).
    pub deduplicate: bool,
    /// Number of tables retrieved before unioning.
    pub tables_per_query: usize,
}

impl TupleRetrievalBaseline {
    /// Create a baseline over the given system.
    pub fn new(system: RetrievalSystem, deduplicate: bool) -> Self {
        TupleRetrievalBaseline {
            system,
            deduplicate,
            tables_per_query: 10,
        }
    }

    /// Human-readable name (`starmie`, `starmie-d`, `d3l`, `d3l-d`).
    pub fn name(&self) -> String {
        if self.deduplicate {
            format!("{}-d", self.system.name())
        } else {
            self.system.name().to_string()
        }
    }

    /// Run the baseline: search top tables, align + outer-union them in rank
    /// order, then take the first k tuples (after optional deduplication,
    /// which also removes tuples identical to a query tuple).
    pub fn top_k(&self, lake: &DataLake, query: &Table, k: usize) -> Vec<Tuple> {
        let ranked = match self.system {
            RetrievalSystem::Starmie => {
                StarmieSearch::new().search(lake, query, self.tables_per_query)
            }
            RetrievalSystem::D3l => D3lSearch::new().search(lake, query, self.tables_per_query),
        };
        let tables: Vec<&Table> = ranked
            .iter()
            .filter_map(|r| lake.table(&r.table).ok())
            .collect();
        if tables.is_empty() {
            return Vec::new();
        }
        let aligner = HolisticAligner::new();
        let mut collected: Vec<Tuple> = Vec::new();
        let mut seen: std::collections::HashSet<String> = if self.deduplicate {
            query.tuples().iter().map(|t| t.dedup_key()).collect()
        } else {
            std::collections::HashSet::new()
        };
        // union tables one by one, in rank order, until k tuples are collected
        for table in tables {
            let alignment = aligner.align(query, &[table]);
            let tuples = outer_union(query, &[table], &alignment);
            for tuple in tuples {
                if self.deduplicate && !seen.insert(tuple.dedup_key()) {
                    continue;
                }
                collected.push(tuple);
                if collected.len() >= k {
                    return collected;
                }
            }
        }
        collected
    }
}

/// The simulated LLM baseline: generate k unionable tuples from the query
/// table alone.
#[derive(Debug, Default)]
pub struct LlmBaseline {
    generator: SimulatedLlm,
}

impl LlmBaseline {
    /// Create the baseline with the default novelty budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the baseline with a custom configuration.
    pub fn with_config(config: LlmConfig) -> Self {
        LlmBaseline {
            generator: SimulatedLlm::with_config(config),
        }
    }

    /// Generate k tuples unionable with the query.
    pub fn top_k(&self, query: &Table, k: usize) -> Vec<Tuple> {
        self.generator.generate(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_datagen::BenchmarkConfig;

    fn setup() -> (DataLake, Table) {
        let lake = BenchmarkConfig::tiny().generate().lake;
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        (lake, query)
    }

    #[test]
    fn starmie_tuple_baseline_returns_similar_tuples() {
        let (lake, query) = setup();
        // candidate pool: tuples of all ground-truth unionable tables,
        // re-expressed under the query header
        let gt = lake.ground_truth().unionable_with(query.name());
        let tables: Vec<&Table> = gt.iter().map(|t| lake.table(t).unwrap()).collect();
        let alignment = HolisticAligner::new().align(&query, &tables);
        let candidates = outer_union(&query, &tables, &alignment);
        let baseline = StarmieBaseline::new();
        let top = baseline.top_k(&query, &candidates, 5);
        assert_eq!(top.len(), 5);
        // the baseline should retrieve at least one tuple that duplicates a
        // query tuple's subject (the redundancy the paper criticizes)
        let query_subjects: std::collections::HashSet<String> =
            query.column(0).unwrap().normalized_value_set();
        let dup = top.iter().any(|t| {
            t.values()
                .iter()
                .any(|v| query_subjects.contains(&v.render().trim().to_ascii_lowercase()))
        });
        assert!(dup, "similarity search should surface redundant tuples");
    }

    #[test]
    fn retrieval_baseline_names() {
        assert_eq!(
            TupleRetrievalBaseline::new(RetrievalSystem::Starmie, false).name(),
            "starmie"
        );
        assert_eq!(
            TupleRetrievalBaseline::new(RetrievalSystem::Starmie, true).name(),
            "starmie-d"
        );
        assert_eq!(
            TupleRetrievalBaseline::new(RetrievalSystem::D3l, true).name(),
            "d3l-d"
        );
    }

    #[test]
    fn deduplicated_variant_returns_no_query_duplicates() {
        let (lake, query) = setup();
        let baseline = TupleRetrievalBaseline::new(RetrievalSystem::D3l, true);
        let top = baseline.top_k(&lake, &query, 10);
        assert!(!top.is_empty());
        let query_keys: std::collections::HashSet<String> =
            query.tuples().iter().map(|t| t.dedup_key()).collect();
        for t in &top {
            assert!(!query_keys.contains(&t.dedup_key()));
        }
        // and no duplicates among the returned tuples either
        let keys: std::collections::HashSet<String> = top.iter().map(|t| t.dedup_key()).collect();
        assert_eq!(keys.len(), top.len());
    }

    #[test]
    fn plain_variant_can_return_duplicates_and_respects_k() {
        let (lake, query) = setup();
        let baseline = TupleRetrievalBaseline::new(RetrievalSystem::Starmie, false);
        let top = baseline.top_k(&lake, &query, 7);
        assert!(top.len() <= 7);
        assert!(!top.is_empty());
    }

    #[test]
    fn llm_baseline_generates_unionable_tuples() {
        let (_, query) = setup();
        let baseline = LlmBaseline::new();
        let top = baseline.top_k(&query, 6);
        assert_eq!(top.len(), 6);
        for t in &top {
            assert_eq!(t.headers(), query.headers());
        }
    }
}
