//! Pipeline configuration.

use dust_cluster::{AgglomerativeAlgorithm, Linkage};
use dust_diversify::DustConfig;
use dust_embed::{ColumnSerialization, Distance, FineTuneConfig, PretrainedModel};
use serde::{Deserialize, Serialize};

/// Which table-union-search technique fills the `SearchTables` step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum SearchTechnique {
    /// Value-overlap search (TUS-style) — the default, fast and accurate on
    /// the synthetic benchmarks.
    #[default]
    Overlap,
    /// D3L multi-signal search.
    D3l,
    /// Starmie contextualized-embedding search.
    Starmie,
}

impl SearchTechnique {
    /// Name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            SearchTechnique::Overlap => "overlap",
            SearchTechnique::D3l => "d3l",
            SearchTechnique::Starmie => "starmie",
        }
    }
}

/// Which tuple embedder fills the `EmbedTuples` step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TupleEmbedderKind {
    /// A pre-trained (non-fine-tuned) model — used as an ablation.
    Pretrained(PretrainedModel),
    /// The DUST fine-tuned model over the given backbone; the pipeline
    /// trains the projection head on pairs sampled from the lake's ground
    /// truth before embedding.
    FineTuned {
        /// Backbone model.
        backbone: PretrainedModel,
        /// Fine-tuning hyper-parameters.
        config: FineTuneConfig,
        /// Number of tuple pairs sampled for fine-tuning.
        training_pairs: usize,
    },
}

impl Default for TupleEmbedderKind {
    fn default() -> Self {
        TupleEmbedderKind::FineTuned {
            backbone: PretrainedModel::Roberta,
            config: FineTuneConfig {
                max_epochs: 30,
                patience: 5,
                ..FineTuneConfig::default()
            },
            training_pairs: 300,
        }
    }
}

/// Configuration of the full DUST pipeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// Union-search technique.
    pub search: SearchTechnique,
    /// Number of unionable tables retrieved per query.
    pub tables_per_query: usize,
    /// Column-encoder backbone for the holistic alignment step.
    pub alignment_model: PretrainedModel,
    /// Column serialization for the alignment step.
    pub alignment_serialization: ColumnSerialization,
    /// Linkage used by the alignment clustering.
    pub alignment_linkage: Linkage,
    /// Tuple embedder.
    pub embedder: TupleEmbedderKind,
    /// Distance function used for diversification and evaluation.
    pub distance: Distance,
    /// DUST diversifier configuration (p, pruning budget, linkage).
    pub diversifier: DustConfigSerde,
}

/// Serializable mirror of [`DustConfig`] (the diversifier's own config type
/// is kept serde-free to avoid leaking serde into the algorithm crates'
/// public API guarantees).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DustConfigSerde {
    /// Candidate multiplier `p`.
    pub p: usize,
    /// Pruning budget `s` (`None` disables pruning).
    pub prune_to: Option<usize>,
    /// Agglomerative clustering engine for the diversifier's clustering
    /// step (`Auto` picks the expected-fastest valid engine for the
    /// linkage and candidate count). Defaults on deserialization so
    /// configs persisted before this field existed keep loading.
    #[serde(default)]
    pub algorithm: AgglomerativeAlgorithm,
    /// Build the full dendrogram instead of the default k-capped one
    /// (ablation; the selection is identical either way, the capped build
    /// just skips the merges above DUST's `k·p` cut). Defaults off on
    /// deserialization so older persisted configs keep the fast path.
    #[serde(default)]
    pub full_dendrogram: bool,
}

impl Default for DustConfigSerde {
    fn default() -> Self {
        DustConfigSerde {
            p: 2,
            prune_to: Some(2500),
            algorithm: AgglomerativeAlgorithm::Auto,
            full_dendrogram: false,
        }
    }
}

impl DustConfigSerde {
    /// Convert into the diversifier's configuration.
    pub fn to_dust_config(&self) -> DustConfig {
        DustConfig {
            p: self.p,
            prune_to: self.prune_to,
            linkage: Linkage::Average,
            algorithm: self.algorithm,
            full_dendrogram: self.full_dendrogram,
        }
    }
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            search: SearchTechnique::Overlap,
            tables_per_query: 10,
            alignment_model: PretrainedModel::Roberta,
            alignment_serialization: ColumnSerialization::ColumnLevel,
            alignment_linkage: Linkage::Average,
            embedder: TupleEmbedderKind::default(),
            distance: Distance::Cosine,
            diversifier: DustConfigSerde::default(),
        }
    }
}

impl PipelineConfig {
    /// A configuration that skips fine-tuning (fast, for tests and smoke
    /// runs): pre-trained RoBERTa embeddings and a small table budget.
    pub fn fast() -> Self {
        PipelineConfig {
            embedder: TupleEmbedderKind::Pretrained(PretrainedModel::Roberta),
            tables_per_query: 5,
            ..PipelineConfig::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sensible() {
        let config = PipelineConfig::default();
        assert_eq!(config.search, SearchTechnique::Overlap);
        assert_eq!(config.distance, Distance::Cosine);
        assert!(matches!(
            config.embedder,
            TupleEmbedderKind::FineTuned { .. }
        ));
        assert_eq!(config.diversifier.p, 2);
    }

    #[test]
    fn fast_config_avoids_fine_tuning() {
        let config = PipelineConfig::fast();
        assert!(matches!(config.embedder, TupleEmbedderKind::Pretrained(_)));
        assert!(config.tables_per_query < PipelineConfig::default().tables_per_query);
    }

    #[test]
    fn search_technique_names() {
        assert_eq!(SearchTechnique::Overlap.name(), "overlap");
        assert_eq!(SearchTechnique::D3l.name(), "d3l");
        assert_eq!(SearchTechnique::Starmie.name(), "starmie");
    }

    #[test]
    fn dust_config_conversion() {
        let serde_config = DustConfigSerde {
            p: 3,
            prune_to: None,
            algorithm: AgglomerativeAlgorithm::Generic,
            full_dendrogram: true,
        };
        let config = serde_config.to_dust_config();
        assert_eq!(config.p, 3);
        assert_eq!(config.prune_to, None);
        assert_eq!(config.algorithm, AgglomerativeAlgorithm::Generic);
        assert!(config.full_dendrogram);
        assert!(!DustConfigSerde::default().to_dust_config().full_dendrogram);
    }
}
