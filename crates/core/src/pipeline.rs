//! The DUST pipeline (Algorithm 1).

use crate::config::{PipelineConfig, SearchTechnique, TupleEmbedderKind};
use crate::result::{DustResult, StageTimings};
use dust_align::{outer_union, HolisticAligner};
use dust_cluster::Linkage;
use dust_diversify::{
    DiversificationInput, Diversifier, DiversityScores, DustConfig, DustDiversifier,
};
use dust_embed::{ColumnEncoder, DustModel, TupleEncoder, Vector};
use dust_search::{D3lSearch, OverlapSearch, StarmieSearch, TableUnionSearch};
use dust_table::{DataLake, Table, TableError, Tuple};
use std::time::Instant;

/// The end-to-end Diverse Unionable Tuple Search pipeline.
#[derive(Debug)]
pub struct DustPipeline {
    config: PipelineConfig,
    /// A pre-trained DUST model injected by the caller (when present, the
    /// pipeline skips its own fine-tuning even if the config asks for one).
    model: Option<DustModel>,
}

impl DustPipeline {
    /// Create a pipeline from a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        DustPipeline {
            config,
            model: None,
        }
    }

    /// Create a pipeline that embeds tuples with an already-trained DUST
    /// model (e.g. one trained once on a benchmark's fine-tuning split and
    /// reused across every query).
    pub fn with_model(config: PipelineConfig, model: DustModel) -> Self {
        DustPipeline {
            config,
            model: Some(model),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// Run Algorithm 1: search, align, embed, diversify.
    pub fn run(&self, lake: &DataLake, query: &Table, k: usize) -> Result<DustResult, TableError> {
        let mut timings = StageTimings::default();

        // ---- SearchTables ---------------------------------------------
        let start = Instant::now();
        let retrieved = self.search_tables(lake, query);
        StageTimings::record(&mut timings.search_secs, start.elapsed());

        let tables: Vec<&Table> = retrieved
            .iter()
            .filter_map(|name| lake.table(name).ok())
            .collect();

        // ---- AlignColumns + outer union --------------------------------
        let start = Instant::now();
        let aligner = HolisticAligner {
            encoder: ColumnEncoder::new(
                self.config.alignment_model,
                self.config.alignment_serialization,
            ),
            linkage: self.config.alignment_linkage,
            distance: self.config.distance,
        };
        let alignment = aligner.align(query, &tables);
        let candidates: Vec<Tuple> = outer_union(query, &tables, &alignment);
        StageTimings::record(&mut timings.align_secs, start.elapsed());

        // ---- EmbedTuples -----------------------------------------------
        let start = Instant::now();
        let query_tuples = query.tuples();
        let (query_embeddings, candidate_embeddings) =
            self.embed_tuples(lake, &query_tuples, &candidates);
        StageTimings::record(&mut timings.embed_secs, start.elapsed());

        // ---- DiversifyTuples -------------------------------------------
        let start = Instant::now();
        let sources: Vec<usize> = {
            let mut table_ids: std::collections::HashMap<String, usize> =
                std::collections::HashMap::new();
            candidates
                .iter()
                .map(|t| {
                    let next = table_ids.len();
                    *table_ids
                        .entry(t.source_table().to_string())
                        .or_insert(next)
                })
                .collect()
        };
        // The constructor packs both embedding sets into shared stores, so
        // every diversification stage reads cached norms and (lazily) the
        // shared pairwise matrix instead of recomputing distances.
        let input = DiversificationInput::with_sources(
            &query_embeddings,
            &candidate_embeddings,
            &sources,
            self.config.distance,
        );
        let diversifier = DustDiversifier::with_config(DustConfig {
            linkage: Linkage::Average,
            ..self.config.diversifier.to_dust_config()
        });
        let selection = diversifier.select(&input, k);
        StageTimings::record(&mut timings.diversify_secs, start.elapsed());

        let selected_tuples: Vec<Tuple> =
            selection.iter().map(|&i| candidates[i].clone()).collect();
        let selected_embeddings: Vec<Vector> = selection
            .iter()
            .map(|&i| candidate_embeddings[i].clone())
            .collect();
        let diversity = DiversityScores::compute(
            &query_embeddings,
            &selected_embeddings,
            self.config.distance,
        );

        Ok(DustResult {
            tuples: selected_tuples,
            retrieved_tables: retrieved,
            alignment,
            candidate_tuples: candidates.len(),
            diversity,
            timings,
        })
    }

    /// The `SearchTables` step.
    fn search_tables(&self, lake: &DataLake, query: &Table) -> Vec<String> {
        let k = self.config.tables_per_query;
        let results = match self.config.search {
            SearchTechnique::Overlap => OverlapSearch::new().search(lake, query, k),
            SearchTechnique::D3l => D3lSearch::new().search(lake, query, k),
            SearchTechnique::Starmie => StarmieSearch::new().search(lake, query, k),
        };
        results.into_iter().map(|r| r.table).collect()
    }

    /// The `EmbedTuples` step: embeds the query tuples and the candidate
    /// unionable tuples with the configured embedder.
    fn embed_tuples(
        &self,
        lake: &DataLake,
        query_tuples: &[Tuple],
        candidates: &[Tuple],
    ) -> (Vec<Vector>, Vec<Vector>) {
        if let Some(model) = &self.model {
            return (
                model.embed_tuples(query_tuples),
                model.embed_tuples(candidates),
            );
        }
        match &self.config.embedder {
            TupleEmbedderKind::Pretrained(backbone) => {
                let encoder = TupleEncoder::new(*backbone);
                (
                    encoder.embed_tuples(query_tuples),
                    encoder.embed_tuples(candidates),
                )
            }
            TupleEmbedderKind::FineTuned {
                backbone,
                config,
                training_pairs,
            } => {
                let mut model = DustModel::new(*backbone, config.clone());
                let dataset = dust_datagen::build_finetune_dataset(
                    lake,
                    &dust_datagen::FineTuneDatasetConfig {
                        total_pairs: *training_pairs,
                        ..dust_datagen::FineTuneDatasetConfig::default()
                    },
                );
                if !dataset.train.is_empty() {
                    let train = dust_datagen::FineTuneDataset::triples(&dataset.train);
                    let val = dust_datagen::FineTuneDataset::triples(&dataset.validation);
                    model.train(&train, &val);
                }
                (
                    model.embed_tuples(query_tuples),
                    model.embed_tuples(candidates),
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_datagen::BenchmarkConfig;

    fn tiny_lake() -> DataLake {
        BenchmarkConfig::tiny().generate().lake
    }

    #[test]
    fn fast_pipeline_returns_k_unionable_tuples() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 5).unwrap();
        assert_eq!(result.len(), 5);
        assert!(result.candidate_tuples >= 5);
        assert!(!result.retrieved_tables.is_empty());
        // selected tuples carry the query header
        for t in &result.tuples {
            assert_eq!(t.headers(), query.headers());
        }
        assert!(result.timings.total_secs() > 0.0);
    }

    #[test]
    fn retrieved_tables_are_from_the_query_domain() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 3).unwrap();
        let gt = lake.ground_truth();
        let relevant = result
            .retrieved_tables
            .iter()
            .filter(|t| gt.is_unionable(&query_name, t))
            .count();
        assert!(
            relevant * 2 >= result.retrieved_tables.len(),
            "at least half of the retrieved tables should be truly unionable: {:?}",
            result.retrieved_tables
        );
    }

    #[test]
    fn selected_tuples_add_novel_information() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 5).unwrap();
        let novel = result.novel_tuple_count(&query.tuples());
        assert!(novel >= 3, "expected mostly novel tuples, got {novel}/5");
        assert!(result.diversity.average > 0.0);
    }

    #[test]
    fn k_larger_than_candidates_returns_all_candidates() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 100_000).unwrap();
        assert_eq!(result.len(), result.candidate_tuples);
    }

    #[test]
    fn injected_model_is_used_without_retraining() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let model = DustModel::new(
            dust_embed::PretrainedModel::Bert,
            dust_embed::FineTuneConfig {
                hidden_dim: 16,
                output_dim: 8,
                max_epochs: 1,
                ..dust_embed::FineTuneConfig::default()
            },
        );
        let pipeline = DustPipeline::with_model(PipelineConfig::fast(), model);
        let result = pipeline.run(&lake, &query, 4).unwrap();
        assert_eq!(result.len(), 4);
        assert_eq!(pipeline.config().tables_per_query, 5);
    }
}
