//! The DUST pipeline (Algorithm 1).
//!
//! The stage sequence itself lives in [`run_query`], which is shared —
//! verbatim — between the one-shot [`DustPipeline`] and the resident
//! [`crate::session::LakeSession`]: the two differ only in *where* the
//! search structures and the tuple embedder come from (built per query vs
//! kept warm across queries), so a session-served query is byte-identical
//! to a fresh pipeline run by construction.

use crate::config::{PipelineConfig, SearchTechnique, TupleEmbedderKind};
use crate::result::{DustResult, StageTimings};
use crate::session::LakeSession;
use dust_align::{outer_union, HolisticAligner};
use dust_cluster::Linkage;
use dust_diversify::{
    DiversificationInput, Diversifier, DiversityScores, DustConfig, DustDiversifier,
};
use dust_embed::{ColumnEncoder, DustModel, TupleEncoder, Vector};
use dust_search::{D3lSearch, OverlapSearch, StarmieSearch, TableUnionSearch};
use dust_table::{DataLake, Table, TableError, Tuple};
use std::sync::Arc;

/// The end-to-end Diverse Unionable Tuple Search pipeline.
#[derive(Debug)]
pub struct DustPipeline {
    config: PipelineConfig,
    /// A pre-trained DUST model injected by the caller (when present, the
    /// pipeline skips its own fine-tuning even if the config asks for one).
    model: Option<DustModel>,
    /// A resident serving session backing this pipeline (when present,
    /// `run` delegates search structures and the tuple embedder to it).
    session: Option<Arc<LakeSession>>,
}

impl DustPipeline {
    /// Create a pipeline from a configuration.
    pub fn new(config: PipelineConfig) -> Self {
        DustPipeline {
            config,
            model: None,
            session: None,
        }
    }

    /// Create a pipeline that embeds tuples with an already-trained DUST
    /// model (e.g. one trained once on a benchmark's fine-tuning split and
    /// reused across every query).
    pub fn with_model(config: PipelineConfig, model: DustModel) -> Self {
        DustPipeline {
            config,
            model: Some(model),
            session: None,
        }
    }

    /// Create a session-backed pipeline: `run` serves queries from the
    /// resident [`LakeSession`] (pre-built candidate indexes, shared tuple
    /// model) instead of rebuilding them per query. Results are
    /// byte-identical to a fresh pipeline over the session's lake and
    /// configuration; the `lake` argument passed to [`Self::run`] is
    /// ignored in favour of the session's resident lake.
    pub fn with_session(session: Arc<LakeSession>) -> Self {
        DustPipeline {
            config: session.config().clone(),
            model: None,
            session: Some(session),
        }
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }

    /// The backing session, when this pipeline was built with
    /// [`Self::with_session`].
    pub fn session(&self) -> Option<&Arc<LakeSession>> {
        self.session.as_ref()
    }

    /// Run Algorithm 1: search, align, embed, diversify.
    pub fn run(&self, lake: &DataLake, query: &Table, k: usize) -> Result<DustResult, TableError> {
        if let Some(session) = &self.session {
            debug_assert!(
                session.lake().name() == lake.name()
                    && session.lake().num_tables() == lake.num_tables(),
                "session-backed pipeline queried with a different lake \
                 (session holds {:?} with {} tables, caller passed {:?} with {}); \
                 rebuild the session when the lake changes",
                session.lake().name(),
                session.lake().num_tables(),
                lake.name(),
                lake.num_tables()
            );
            return session.query(query, k);
        }
        let aligner_encoder = ColumnEncoder::new(
            self.config.alignment_model,
            self.config.alignment_serialization,
        );
        Ok(run_query(
            lake,
            query,
            k,
            &self.config,
            &aligner_encoder,
            &|lake, query| self.search_tables(lake, query),
            &|query_tuples, candidates| self.embed_tuples(lake, query_tuples, candidates),
        ))
    }

    /// The `SearchTables` step.
    fn search_tables(&self, lake: &DataLake, query: &Table) -> Vec<String> {
        let k = self.config.tables_per_query;
        let results = match self.config.search {
            SearchTechnique::Overlap => OverlapSearch::new().search(lake, query, k),
            SearchTechnique::D3l => D3lSearch::new().search(lake, query, k),
            SearchTechnique::Starmie => StarmieSearch::new().search(lake, query, k),
        };
        results.into_iter().map(|r| r.table).collect()
    }

    /// The `EmbedTuples` step: embeds the query tuples and the candidate
    /// unionable tuples with the configured embedder.
    fn embed_tuples(
        &self,
        lake: &DataLake,
        query_tuples: &[Tuple],
        candidates: &[Tuple],
    ) -> (Vec<Vector>, Vec<Vector>) {
        if let Some(model) = &self.model {
            return (
                model.embed_tuples(query_tuples),
                model.embed_tuples(candidates),
            );
        }
        match &self.config.embedder {
            TupleEmbedderKind::Pretrained(backbone) => {
                let encoder = TupleEncoder::new(*backbone);
                (
                    encoder.embed_tuples(query_tuples),
                    encoder.embed_tuples(candidates),
                )
            }
            TupleEmbedderKind::FineTuned {
                backbone,
                config,
                training_pairs,
            } => {
                let model = train_dust_model(lake, *backbone, config, *training_pairs);
                (
                    model.embed_tuples(query_tuples),
                    model.embed_tuples(candidates),
                )
            }
        }
    }
}

/// The DUST fine-tuning recipe: sample labelled pairs from the lake's
/// ground truth and train the projection head. The single implementation
/// behind both the per-query pipeline path and the train-once
/// [`LakeSession`] path — a recipe change here cannot desynchronize them.
/// Deterministic (seeded RNG, lake-derived dataset), which is what makes
/// the session's train-once ≡ the pipeline's train-per-query.
pub(crate) fn train_dust_model(
    lake: &DataLake,
    backbone: dust_embed::PretrainedModel,
    config: &dust_embed::FineTuneConfig,
    training_pairs: usize,
) -> DustModel {
    let mut model = DustModel::new(backbone, config.clone());
    let dataset = dust_datagen::build_finetune_dataset(
        lake,
        &dust_datagen::FineTuneDatasetConfig {
            total_pairs: training_pairs,
            ..dust_datagen::FineTuneDatasetConfig::default()
        },
    );
    if !dataset.train.is_empty() {
        let train = dust_datagen::FineTuneDataset::triples(&dataset.train);
        let val = dust_datagen::FineTuneDataset::triples(&dataset.validation);
        model.train(&train, &val);
    }
    model
}

/// The `EmbedTuples` closure shape: (query tuples, candidate tuples) →
/// (query embeddings, candidate embeddings).
pub(crate) type EmbedFn<'a> = dyn Fn(&[Tuple], &[Tuple]) -> (Vec<Vector>, Vec<Vector>) + 'a;

/// The shared body of Algorithm 1: search → align → embed → diversify.
///
/// `search` returns the retrieved lake-table names for a query; `embed`
/// turns (query tuples, candidate tuples) into their embedding sets. Both
/// [`DustPipeline::run`] and [`LakeSession::query`] call this with closures
/// over their own state, so every stage in between — alignment, outer
/// union, diversification, scoring — is literally the same code on both
/// paths, and equal search/embed outputs imply byte-identical results.
pub(crate) fn run_query(
    lake: &DataLake,
    query: &Table,
    k: usize,
    config: &PipelineConfig,
    aligner_encoder: &ColumnEncoder,
    search: &dyn Fn(&DataLake, &Table) -> Vec<String>,
    embed: &EmbedFn,
) -> DustResult {
    let mut timings = StageTimings::default();

    // ---- SearchTables ---------------------------------------------
    let start = crate::clock::now();
    let retrieved = search(lake, query);
    StageTimings::record(&mut timings.search_secs, start.elapsed());

    // A retrieved name can fail to resolve when the index and the lake have
    // drifted apart (stale entry, table dropped after indexing). Dropping
    // it is the right serving behaviour — but it must leave a trace, not
    // silently shrink the candidate pool.
    let mut dropped_tables: Vec<String> = Vec::new();
    let tables: Vec<&Table> = retrieved
        .iter()
        .filter_map(|name| match lake.table(name) {
            Ok(table) => Some(table),
            Err(_) => {
                dropped_tables.push(name.clone());
                None
            }
        })
        .collect();

    // ---- AlignColumns + outer union --------------------------------
    let start = crate::clock::now();
    let aligner = HolisticAligner {
        encoder: aligner_encoder.clone(),
        linkage: config.alignment_linkage,
        distance: config.distance,
    };
    let alignment = aligner.align(query, &tables);
    let candidates: Vec<Tuple> = outer_union(query, &tables, &alignment);
    StageTimings::record(&mut timings.align_secs, start.elapsed());

    // ---- EmbedTuples -----------------------------------------------
    let start = crate::clock::now();
    let query_tuples = query.tuples();
    let (query_embeddings, candidate_embeddings) = embed(&query_tuples, &candidates);
    StageTimings::record(&mut timings.embed_secs, start.elapsed());

    // ---- DiversifyTuples -------------------------------------------
    let start = crate::clock::now();
    let sources: Vec<usize> = {
        let mut table_ids: std::collections::HashMap<String, usize> =
            std::collections::HashMap::new();
        candidates
            .iter()
            .map(|t| {
                let next = table_ids.len();
                *table_ids
                    .entry(t.source_table().to_string())
                    .or_insert(next)
            })
            .collect()
    };
    // The constructor packs both embedding sets into shared stores, so
    // every diversification stage reads cached norms and (lazily) the
    // shared pairwise matrix instead of recomputing distances.
    let input = DiversificationInput::with_sources(
        &query_embeddings,
        &candidate_embeddings,
        &sources,
        config.distance,
    );
    let diversifier = DustDiversifier::with_config(DustConfig {
        linkage: Linkage::Average,
        ..config.diversifier.to_dust_config()
    });
    let selection = diversifier.select(&input, k);
    StageTimings::record(&mut timings.diversify_secs, start.elapsed());

    let selected_tuples: Vec<Tuple> = selection.iter().map(|&i| candidates[i].clone()).collect();
    let selected_embeddings: Vec<Vector> = selection
        .iter()
        .map(|&i| candidate_embeddings[i].clone())
        .collect();
    let diversity =
        DiversityScores::compute(&query_embeddings, &selected_embeddings, config.distance);

    DustResult {
        tuples: selected_tuples,
        retrieved_tables: retrieved,
        dropped_tables,
        alignment,
        candidate_tuples: candidates.len(),
        diversity,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_datagen::BenchmarkConfig;

    fn tiny_lake() -> DataLake {
        BenchmarkConfig::tiny().generate().lake
    }

    #[test]
    fn fast_pipeline_returns_k_unionable_tuples() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 5).unwrap();
        assert_eq!(result.len(), 5);
        assert!(result.candidate_tuples >= 5);
        assert!(!result.retrieved_tables.is_empty());
        assert!(
            result.is_complete(),
            "no retrieved table should fail its lake lookup on a fresh lake"
        );
        // selected tuples carry the query header
        for t in &result.tuples {
            assert_eq!(t.headers(), query.headers());
        }
        assert!(result.timings.total_secs() > 0.0);
    }

    #[test]
    fn retrieved_tables_are_from_the_query_domain() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 3).unwrap();
        let gt = lake.ground_truth();
        let relevant = result
            .retrieved_tables
            .iter()
            .filter(|t| gt.is_unionable(&query_name, t))
            .count();
        assert!(
            relevant * 2 >= result.retrieved_tables.len(),
            "at least half of the retrieved tables should be truly unionable: {:?}",
            result.retrieved_tables
        );
    }

    #[test]
    fn selected_tuples_add_novel_information() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 5).unwrap();
        let novel = result.novel_tuple_count(&query.tuples());
        assert!(novel >= 3, "expected mostly novel tuples, got {novel}/5");
        assert!(result.diversity.average > 0.0);
    }

    #[test]
    fn k_larger_than_candidates_returns_all_candidates() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let pipeline = DustPipeline::new(PipelineConfig::fast());
        let result = pipeline.run(&lake, &query, 100_000).unwrap();
        assert_eq!(result.len(), result.candidate_tuples);
    }

    #[test]
    fn stale_retrieved_names_are_recorded_not_silently_dropped() {
        // A search index that has drifted from the lake returns a name the
        // lake no longer resolves. The query must still succeed on the
        // resolvable tables AND surface the drop in the diagnostics.
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let config = PipelineConfig::fast();
        let encoder = ColumnEncoder::new(config.alignment_model, config.alignment_serialization);
        let real = lake.table_names();
        let result = run_query(
            &lake,
            &query,
            3,
            &config,
            &encoder,
            &|_, _| {
                vec![
                    real[0].clone(),
                    "ghost_table".to_string(),
                    real[1].clone(),
                    "second_ghost".to_string(),
                ]
            },
            &|query_tuples, candidates| {
                let enc = TupleEncoder::new(dust_embed::PretrainedModel::Roberta);
                (enc.embed_tuples(query_tuples), enc.embed_tuples(candidates))
            },
        );
        assert_eq!(
            result.dropped_tables,
            vec!["ghost_table".to_string(), "second_ghost".to_string()]
        );
        assert!(!result.is_complete());
        // the stale names remain visible in the retrieved list too
        assert!(result.retrieved_tables.contains(&"ghost_table".to_string()));
        assert_eq!(result.len(), 3, "resolvable tables still serve the query");
    }

    #[test]
    fn injected_model_is_used_without_retraining() {
        let lake = tiny_lake();
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let model = DustModel::new(
            dust_embed::PretrainedModel::Bert,
            dust_embed::FineTuneConfig {
                hidden_dim: 16,
                output_dim: 8,
                max_epochs: 1,
                ..dust_embed::FineTuneConfig::default()
            },
        );
        let pipeline = DustPipeline::with_model(PipelineConfig::fast(), model);
        let result = pipeline.run(&lake, &query, 4).unwrap();
        assert_eq!(result.len(), 4);
        assert_eq!(pipeline.config().tables_per_query, 5);
    }
}
