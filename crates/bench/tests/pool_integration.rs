//! Integration tests for the serve worker pool (`dust_bench::pool`):
//! the resource-exhaustion behaviours thread-per-connection hides.
//!
//! Each test runs a real pool on a loopback listener with scoped worker
//! threads and drives it with blocking client sockets:
//!
//! * slow-loris — a client trickling one giant line forever gets a typed
//!   `line_too_long` response and its buffered prefix dropped, while a
//!   sibling client on the *same single worker* keeps being served (the
//!   multiplexing claim, not just the cap);
//! * overload — `max_connections` well-behaved clients plus 8 extras:
//!   every extra is rejected with the typed overloaded line and closed,
//!   every well-behaved client keeps serving afterwards;
//! * more clients than workers — all served, interleaved.

use dust_bench::pool::{self, PoolCounters, PoolOptions};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Client-side read guard: a missing response should fail the test, not
/// hang it.
const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(10);

fn connect(addr: std::net::SocketAddr) -> (TcpStream, BufReader<TcpStream>) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT)).unwrap();
    let reader = BufReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn request(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    stream.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    response.trim_end().to_string()
}

/// Run `body` against a live pool, then shut the pool down gracefully.
fn with_pool(
    options: PoolOptions,
    body: impl FnOnce(std::net::SocketAddr, &PoolCounters),
) -> PoolCounters {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let counters = PoolCounters::default();
    let shutdown = AtomicBool::new(false);
    let handler = |line: &str| format!("ok:{line}");
    std::thread::scope(|scope| {
        let pool_thread = scope.spawn(|| {
            pool::run(&listener, &options, &counters, &shutdown, &handler).unwrap();
        });
        body(addr, &counters);
        shutdown.store(true, Ordering::SeqCst);
        pool_thread.join().unwrap();
    });
    counters
}

#[test]
fn slow_loris_gets_typed_rejection_and_sibling_keeps_serving() {
    let options = PoolOptions {
        workers: 1, // one worker: interleaving proves multiplexing
        max_line_bytes: 1024,
        line_too_long_line: "{\"kind\":\"line_too_long\"}".to_string(),
        ..PoolOptions::default()
    };
    let counters = with_pool(options, |addr, counters| {
        let (mut attacker, mut attacker_reader) = connect(addr);
        let (mut sibling, mut sibling_reader) = connect(addr);

        // Trickle 8 KiB without a newline — 8x the 1 KiB line cap —
        // interleaved with sibling requests that must all be answered
        // by the same single worker while the attack is in flight.
        for i in 0..8 {
            attacker.write_all(&[b'x'; 1024]).unwrap();
            attacker.flush().unwrap();
            let query = format!("sibling-{i}");
            assert_eq!(
                request(&mut sibling, &mut sibling_reader, &query),
                format!("ok:{query}")
            );
        }

        // The oversized line was dropped with the typed response...
        let mut line = String::new();
        attacker_reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "{\"kind\":\"line_too_long\"}");
        assert_eq!(counters.lines_too_long.load(Ordering::Relaxed), 1);

        // ...and the connection survives: after the terminating newline
        // the attacker is served like anyone else.
        assert_eq!(
            request(&mut attacker, &mut attacker_reader, "\nrecovered"),
            "ok:recovered"
        );
    });
    assert_eq!(counters.lines_too_long.load(Ordering::Relaxed), 1);
    assert_eq!(counters.rejected_overloaded.load(Ordering::Relaxed), 0);
}

#[test]
fn overload_rejects_extras_and_well_behaved_clients_survive() {
    const CAP: usize = 4;
    const EXTRAS: usize = 8;
    let options = PoolOptions {
        workers: 2,
        max_connections: CAP,
        overloaded_line: "{\"kind\":\"overloaded\"}".to_string(),
        ..PoolOptions::default()
    };
    let counters = with_pool(options, |addr, counters| {
        // Fill the pool to its cap and prove every slot is live.
        let mut clients: Vec<(TcpStream, BufReader<TcpStream>)> =
            (0..CAP).map(|_| connect(addr)).collect();
        for (i, (stream, reader)) in clients.iter_mut().enumerate() {
            assert_eq!(
                request(stream, reader, &format!("fill-{i}")),
                format!("ok:fill-{i}")
            );
        }
        assert_eq!(counters.active.load(Ordering::Relaxed), CAP);

        // Every connection past the cap gets the typed line, then EOF —
        // not an unbounded thread, not a silent hang.
        for _ in 0..EXTRAS {
            let (_extra, mut extra_reader) = connect(addr);
            let mut line = String::new();
            extra_reader.read_line(&mut line).unwrap();
            assert_eq!(line.trim_end(), "{\"kind\":\"overloaded\"}");
            line.clear();
            assert_eq!(
                extra_reader.read_line(&mut line).unwrap(),
                0,
                "EOF after rejection"
            );
        }
        assert_eq!(
            counters.rejected_overloaded.load(Ordering::Relaxed),
            EXTRAS as u64
        );

        // The well-behaved clients are unharmed by the reject storm.
        for (i, (stream, reader)) in clients.iter_mut().enumerate() {
            assert_eq!(
                request(stream, reader, &format!("again-{i}")),
                format!("ok:again-{i}")
            );
        }
    });
    assert_eq!(
        counters.accepted.load(Ordering::Relaxed),
        (CAP + EXTRAS) as u64
    );
}

#[test]
fn more_clients_than_workers_are_all_served_interleaved() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 5;
    let options = PoolOptions {
        workers: 2,
        ..PoolOptions::default()
    };
    let counters = with_pool(options, |addr, _| {
        let mut clients: Vec<(TcpStream, BufReader<TcpStream>)> =
            (0..CLIENTS).map(|_| connect(addr)).collect();
        // Round-robin across all clients each round: every connection
        // stays responsive even though workers < clients.
        for round in 0..ROUNDS {
            for (c, (stream, reader)) in clients.iter_mut().enumerate() {
                let query = format!("r{round}-c{c}");
                assert_eq!(request(stream, reader, &query), format!("ok:{query}"));
            }
        }
    });
    assert_eq!(
        counters.served_lines.load(Ordering::Relaxed),
        (CLIENTS * ROUNDS) as u64
    );
}
