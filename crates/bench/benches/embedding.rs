//! Criterion microbenchmarks for the embedding substrate: tuple
//! serialization + encoding throughput, column encoding (both
//! serializations), fine-tuned inference, and one SGD training epoch.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use dust_datagen::{generate_base_table, Domain};
use dust_embed::{
    ColumnEncoder, ColumnSerialization, DustModel, FineTuneConfig, PretrainedModel, TfIdfCorpus,
    TupleEncoder,
};

fn bench_tuple_encoding(c: &mut Criterion) {
    let domain = Domain::by_name("parks").unwrap();
    let table = generate_base_table(&domain, 200, 3);
    let tuples = table.tuples();
    let encoder = TupleEncoder::new(PretrainedModel::Roberta);
    c.bench_function("tuple_encode_200", |b| {
        b.iter(|| encoder.embed_tuples(black_box(&tuples)));
    });

    let model = DustModel::new(
        PretrainedModel::Roberta,
        FineTuneConfig {
            hidden_dim: 96,
            output_dim: 64,
            ..FineTuneConfig::default()
        },
    );
    c.bench_function("dust_model_encode_200", |b| {
        b.iter(|| model.embed_tuples(black_box(&tuples)));
    });
}

fn bench_column_encoding(c: &mut Criterion) {
    let domain = Domain::by_name("movies").unwrap();
    let table = generate_base_table(&domain, 300, 5);
    let corpus = ColumnEncoder::build_corpus(table.columns());
    for serialization in [
        ColumnSerialization::CellLevel,
        ColumnSerialization::ColumnLevel,
    ] {
        let encoder = ColumnEncoder::new(PretrainedModel::Roberta, serialization);
        let name = format!("column_encode_{}", serialization.name());
        c.bench_function(&name, |b| {
            b.iter(|| {
                table
                    .columns()
                    .iter()
                    .map(|col| encoder.embed_column(black_box(col), &corpus))
                    .collect::<Vec<_>>()
            });
        });
    }
    let _ = TfIdfCorpus::new();
}

fn bench_training_epoch(c: &mut Criterion) {
    let domain = Domain::by_name("schools").unwrap();
    let table = generate_base_table(&domain, 60, 9);
    let other = generate_base_table(&Domain::by_name("movies").unwrap(), 60, 9);
    let a = table.tuples();
    let b = other.tuples();
    let mut pairs = Vec::new();
    for i in 0..40 {
        pairs.push((a[i].clone(), a[(i + 1) % a.len()].clone(), true));
        pairs.push((a[i].clone(), b[i].clone(), false));
    }
    c.bench_function("finetune_one_epoch_80pairs", |bench| {
        bench.iter(|| {
            let mut model = DustModel::new(
                PretrainedModel::Bert,
                FineTuneConfig {
                    hidden_dim: 32,
                    output_dim: 16,
                    max_epochs: 1,
                    patience: 1,
                    ..FineTuneConfig::default()
                },
            );
            model.train(black_box(&pairs), &[])
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_tuple_encoding, bench_column_encoding, bench_training_epoch
}
criterion_main!(benches);
