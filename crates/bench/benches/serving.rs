//! Criterion microbench for the serving layer: B one-shot pipeline runs vs
//! a resident session answering the same batch.
//!
//! Two session views per batch size:
//!
//! * `session_cold` — session construction **plus** `query_batch(B)` (the
//!   honest end-to-end comparison `exp_serving` also reports);
//! * `session_warm` — `query_batch(B)` against an already-built session
//!   (steady-state serving throughput, the regime a long-lived server
//!   actually runs in).
//!
//! Uses the pre-trained fast configuration so an iteration is milliseconds;
//! the fine-tuned numbers (where amortization is most dramatic, since the
//! one-shot path retrains per query) come from `exp_serving` /
//! `BENCH_serve.json`.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_core::{DustPipeline, LakeSession, PipelineConfig};
use dust_datagen::BenchmarkConfig;
use dust_table::Table;

fn bench_serving(c: &mut Criterion) {
    let lake = BenchmarkConfig::tiny().generate().lake;
    let queries: Vec<Table> = lake
        .query_names()
        .iter()
        .map(|n| lake.query(n).unwrap().clone())
        .collect();
    let config = PipelineConfig::fast();
    let warm_session = LakeSession::new(lake.clone(), config.clone());
    let k = 10;

    let mut group = c.benchmark_group("serving");
    group.sample_size(10);
    for &b in &[1usize, 8, 32] {
        let batch: Vec<Table> = (0..b).map(|i| queries[i % queries.len()].clone()).collect();
        group.bench_with_input(
            BenchmarkId::new("pipeline_one_shot", b),
            &batch,
            |bench, batch| {
                bench.iter(|| {
                    for query in batch {
                        let result = DustPipeline::new(config.clone())
                            .run(black_box(&lake), black_box(query), k)
                            .unwrap();
                        black_box(result);
                    }
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("session_cold", b),
            &batch,
            |bench, batch| {
                bench.iter(|| {
                    let session = LakeSession::new(lake.clone(), config.clone());
                    black_box(session.query_batch(black_box(batch), k));
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("session_warm", b),
            &batch,
            |bench, batch| {
                bench.iter(|| {
                    black_box(warm_session.query_batch(black_box(batch), k));
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serving);
criterion_main!(benches);
