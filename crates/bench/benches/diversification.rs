//! Criterion microbenchmarks for the diversification algorithms: DUST vs
//! GMC vs CLT vs farthest-first at growing candidate-set sizes (the
//! microbench companion of Fig. 7), plus the pruning step in isolation.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_diversify::{
    prune_tuples, CltDiversifier, DiversificationInput, Diversifier, DustDiversifier,
    GmcDiversifier, MaxMinDiversifier,
};
use dust_embed::{Distance, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn embeddings(n: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..32).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centroids[rng.gen_range(0..centroids.len())];
            Vector::new(c.iter().map(|x| x + rng.gen_range(-0.3..0.3)).collect()).normalized()
        })
        .collect()
}

fn bench_diversifiers(c: &mut Criterion) {
    let query = embeddings(20, 1);
    let k = 30;
    let mut group = c.benchmark_group("diversify");
    group.sample_size(10);
    for &s in &[500usize, 1000] {
        let candidates = embeddings(s, 2);
        let dust = DustDiversifier::new();
        let gmc = GmcDiversifier::new();
        let clt = CltDiversifier::new();
        let maxmin = MaxMinDiversifier::new();
        let algorithms: Vec<(&str, &dyn Diversifier)> = vec![
            ("dust", &dust),
            ("gmc", &gmc),
            ("clt", &clt),
            ("maxmin", &maxmin),
        ];
        for (name, algorithm) in algorithms {
            group.bench_with_input(BenchmarkId::new(name, s), &candidates, |b, cands| {
                b.iter(|| {
                    let input = DiversificationInput::new(&query, cands, Distance::Cosine);
                    algorithm.select(black_box(&input), k)
                });
            });
        }
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let candidates = embeddings(5000, 3);
    let sources: Vec<usize> = (0..candidates.len()).map(|i| i % 25).collect();
    c.bench_function("prune_5000_to_1000", |b| {
        b.iter(|| {
            prune_tuples(
                black_box(&candidates),
                Some(black_box(&sources)),
                Distance::Cosine,
                1000,
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_diversifiers, bench_pruning
}
criterion_main!(benches);
