//! Criterion microbenchmarks for the diversification algorithms: DUST vs
//! GMC vs CLT vs farthest-first at growing candidate-set sizes (the
//! microbench companion of Fig. 7), plus the pruning step in isolation.
//!
//! `gmc_naive` and `dust_naive` reproduce the pre-kernel implementations —
//! every distance recomputed through `Distance::between` (two norms + one
//! dot per cosine call), serially, with nothing shared between stages — so
//! one run measures the speedup of the shared store / cached-norm /
//! parallel-matrix path against the naive path on identical inputs. Both
//! paths must (and do — see `assert_same_selection`) return identical
//! selections; the caches change latency, never results.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_diversify::{
    prune_tuples, CltDiversifier, DiversificationInput, Diversifier, DustDiversifier,
    GmcDiversifier, MaxMinDiversifier,
};
use dust_embed::{Distance, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Clustered unit-norm tuple embeddings at the paper's working
/// dimensionality (fastText/DUST embeddings are 300-d; the distance kernels
/// dominating Fig. 7 operate on vectors of this size).
fn embeddings(n: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..300).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centroids[rng.gen_range(0..centroids.len())];
            Vector::new(c.iter().map(|x| x + rng.gen_range(-0.3f32..0.3)).collect()).normalized()
        })
        .collect()
}

// ---------------------------------------------------------------------
// Naive-path reference implementations (the pre-kernel code shape).
// ---------------------------------------------------------------------

fn naive_relevance(query: &[Vector], candidate: &Vector, distance: Distance) -> f64 {
    if query.is_empty() {
        return 0.0;
    }
    let avg = query
        .iter()
        .map(|q| distance.between(candidate, q))
        .sum::<f64>()
        / query.len() as f64;
    (1.0 - avg / 2.0).max(0.0)
}

/// GMC exactly as before the shared-kernel refactor: O(s²) max-distance
/// scan and per-step updates all through `Distance::between`.
fn naive_gmc(
    query: &[Vector],
    candidates: &[Vector],
    distance: Distance,
    lambda: f64,
    k: usize,
) -> Vec<usize> {
    let n = candidates.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if n <= k {
        return (0..n).collect();
    }
    let relevance: Vec<f64> = candidates
        .iter()
        .map(|c| naive_relevance(query, c, distance))
        .collect();
    let mut max_dist = vec![0.0f64; n];
    for i in 0..n {
        for j in (i + 1)..n {
            let d = distance.between(&candidates[i], &candidates[j]);
            if d > max_dist[i] {
                max_dist[i] = d;
            }
            if d > max_dist[j] {
                max_dist[j] = d;
            }
        }
    }
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut dist_to_selected = vec![0.0f64; n];
    while selected.len() < k && !remaining.is_empty() {
        let slots_left = (k - selected.len()).saturating_sub(1) as f64;
        let mut best_pos = 0usize;
        let mut best_cand = usize::MAX;
        let mut best_score = f64::NEG_INFINITY;
        for (pos, &cand) in remaining.iter().enumerate() {
            let future = slots_left * max_dist[cand];
            let score = (1.0 - lambda) * (k as f64 - 1.0) * relevance[cand]
                + 2.0 * lambda * (dist_to_selected[cand] + future);
            if score > best_score + 1e-15 {
                best_score = score;
                best_pos = pos;
                best_cand = cand;
            } else if score > best_score - 1e-15 && cand < best_cand {
                best_score = best_score.max(score);
                best_pos = pos;
                best_cand = cand;
            }
        }
        let chosen = remaining.swap_remove(best_pos);
        for &other in &remaining {
            dist_to_selected[other] += distance.between(&candidates[chosen], &candidates[other]);
        }
        selected.push(chosen);
    }
    selected
}

// -- the pre-refactor clustering working state: condensed f32 storage with
// per-element index arithmetic, filled by per-call `Distance::between` ----

struct NaiveCondensed {
    n: usize,
    data: Vec<f32>,
}

impl NaiveCondensed {
    fn fill(points: &[&Vector], distance: Distance) -> Self {
        let n = points.len();
        let mut data = vec![0.0f32; n * (n - 1) / 2];
        let mut idx = 0usize;
        for i in 0..n {
            for j in (i + 1)..n {
                data[idx] = distance.between(points[i], points[j]) as f32;
                idx += 1;
            }
        }
        NaiveCondensed { n, data }
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        a * self.n - a * (a + 1) / 2 + (b - a - 1)
    }

    #[inline]
    fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)] as f64
    }

    #[inline]
    fn set(&mut self, i: usize, j: usize, value: f64) {
        let idx = self.index(i, j);
        self.data[idx] = value as f32;
    }
}

/// The pre-refactor NN-chain: every distance read through `get`'s index
/// arithmetic on the f32 condensed working copy.
#[allow(clippy::needless_range_loop)] // deliberately preserves the old code shape
fn naive_agglomerative_cut(
    points: &[&Vector],
    distance: Distance,
    num_clusters: usize,
) -> Vec<usize> {
    let n = points.len();
    let mut dist = NaiveCondensed::fill(points, distance);
    let mut active = vec![true; n];
    let mut size = vec![1usize; n];
    // (merge distance, leaf-of-left, leaf-of-right) per merge, for the cut
    let mut merges: Vec<(f64, usize, usize)> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;
    while remaining > 1 {
        if chain.is_empty() {
            let start = (0..n).find(|&i| active[i]).expect("active cluster");
            chain.push(start);
        }
        loop {
            let current = *chain.last().unwrap();
            let prev = (chain.len() >= 2).then(|| chain[chain.len() - 2]);
            let mut best = usize::MAX;
            let mut best_dist = f64::INFINITY;
            for j in 0..n {
                if j == current || !active[j] {
                    continue;
                }
                let d = dist.get(current, j);
                if d < best_dist - 1e-15 || (Some(j) == prev && (d - best_dist).abs() <= 1e-15) {
                    best = j;
                    best_dist = d;
                }
            }
            if Some(best) == prev {
                let (a, b) = (current, best);
                chain.pop();
                chain.pop();
                merges.push((best_dist, a, b));
                for k in 0..n {
                    if !active[k] || k == a || k == b {
                        continue;
                    }
                    let (na, nb) = (size[a] as f64, size[b] as f64);
                    let updated = (na * dist.get(k, a) + nb * dist.get(k, b)) / (na + nb);
                    dist.set(k, a, updated);
                }
                active[b] = false;
                size[a] += size[b];
                remaining -= 1;
                break;
            } else {
                chain.push(best);
            }
        }
        while let Some(&last) = chain.last() {
            if active[last] {
                break;
            }
            chain.pop();
        }
    }
    // cut: union in ascending merge-distance order until num_clusters remain
    merges.sort_by(|a, b| dust_embed::order::asc_nan_last(a.0, b.0));
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut clusters = n;
    for (_, a, b) in merges {
        if clusters <= num_clusters {
            break;
        }
        let (ra, rb) = (find(&mut parent, a), find(&mut parent, b));
        if ra != rb {
            parent[ra] = rb;
            clusters -= 1;
        }
    }
    let mut root_to_id = std::collections::HashMap::new();
    (0..n)
        .map(|i| {
            let root = find(&mut parent, i);
            let next = root_to_id.len();
            *root_to_id.entry(root).or_insert(next)
        })
        .collect()
}

/// DUST with every stage on the naive path: per-call-norm pruning, the f32
/// condensed matrix filled by per-call `Distance::between`, the index-
/// arithmetic NN-chain, naive medoid sums, and a naive query-distance
/// re-rank — the exact pre-refactor cost profile.
fn naive_dust(
    query: &[Vector],
    candidates: &[Vector],
    distance: Distance,
    p: usize,
    prune_to: Option<usize>,
    k: usize,
) -> Vec<usize> {
    let n = candidates.len();
    if n == 0 || k == 0 {
        return Vec::new();
    }
    if n <= k {
        return (0..n).collect();
    }
    let kept: Vec<usize> = match prune_to {
        Some(s) if n > s => naive_prune(candidates, distance, s),
        _ => (0..n).collect(),
    };
    if kept.len() <= k {
        return kept.into_iter().take(k).collect();
    }
    let num_clusters = (k.saturating_mul(p.max(1))).min(kept.len());
    let candidate_medoids: Vec<usize> = if num_clusters >= kept.len() {
        (0..kept.len()).collect()
    } else {
        let kept_points: Vec<&Vector> = kept.iter().map(|&i| &candidates[i]).collect();
        let assignment = naive_agglomerative_cut(&kept_points, distance, num_clusters);
        let num_found = assignment.iter().copied().max().map(|m| m + 1).unwrap_or(0);
        let mut groups = vec![Vec::new(); num_found];
        for (idx, &c) in assignment.iter().enumerate() {
            groups[c].push(idx);
        }
        groups
            .iter()
            .filter_map(|members| naive_medoid(&kept_points, members, distance))
            .collect()
    };
    let mut ranked: Vec<(usize, f64, f64)> = candidate_medoids
        .into_iter()
        .map(|local| {
            let global = kept[local];
            let min_d = query
                .iter()
                .map(|q| distance.between(&candidates[global], q))
                .fold(f64::INFINITY, f64::min);
            let avg_d = if query.is_empty() {
                0.0
            } else {
                query
                    .iter()
                    .map(|q| distance.between(&candidates[global], q))
                    .sum::<f64>()
                    / query.len() as f64
            };
            let min_d = if min_d.is_finite() { min_d } else { avg_d };
            (global, min_d, avg_d)
        })
        .collect();
    ranked.sort_by(|a, b| {
        dust_embed::order::desc_nan_last(a.1, b.1)
            .then_with(|| dust_embed::order::desc_nan_last(a.2, b.2))
            .then_with(|| a.0.cmp(&b.0))
    });
    ranked.into_iter().map(|(i, _, _)| i).take(k).collect()
}

/// The pre-refactor medoid scan: summed `Distance::between` per member.
fn naive_medoid(points: &[&Vector], members: &[usize], distance: Distance) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    let mut best_idx = members[0];
    let mut best_cost = f64::INFINITY;
    for &i in members {
        let cost: f64 = members
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| distance.between(points[i], points[j]))
            .sum();
        if cost < best_cost - 1e-15 {
            best_cost = cost;
            best_idx = i;
        }
    }
    Some(best_idx)
}

/// The pre-refactor pruning step: group means + per-call-norm distances.
fn naive_prune(candidates: &[Vector], distance: Distance, s: usize) -> Vec<usize> {
    let mean = Vector::mean(candidates.iter()).expect("non-empty candidates");
    let mut scored: Vec<(usize, f64)> = candidates
        .iter()
        .enumerate()
        .map(|(i, c)| (i, distance.between(c, &mean)))
        .collect();
    scored.sort_by(|a, b| dust_embed::order::desc_nan_last(a.1, b.1).then_with(|| a.0.cmp(&b.0)));
    scored.into_iter().take(s).map(|(i, _)| i).collect()
}

fn assert_same_selection(a: &[usize], b: &[usize], label: &str) {
    assert_eq!(a, b, "{label}: cached and naive paths diverged");
}

fn bench_diversifiers(c: &mut Criterion) {
    let query = embeddings(20, 1);
    let k = 30;
    let mut group = c.benchmark_group("diversify");
    group.sample_size(10);
    for &s in &[500usize, 1000] {
        let candidates = embeddings(s, 2);
        let dust = DustDiversifier::new();
        let gmc = GmcDiversifier::new();
        let clt = CltDiversifier::new();
        let maxmin = MaxMinDiversifier::new();

        // Guard: the kernel-backed algorithms must select exactly what the
        // naive path selects before we compare their timings.
        {
            let input = DiversificationInput::new(&query, &candidates, Distance::Cosine);
            assert_same_selection(
                &gmc.select(&input, k),
                &naive_gmc(&query, &candidates, Distance::Cosine, gmc.lambda, k),
                "gmc",
            );
            let cfg = &dust.config;
            assert_same_selection(
                &dust.select(&input, k),
                &naive_dust(
                    &query,
                    &candidates,
                    Distance::Cosine,
                    cfg.p,
                    cfg.prune_to,
                    k,
                ),
                "dust",
            );
        }

        let algorithms: Vec<(&str, &dyn Diversifier)> = vec![
            ("dust", &dust),
            ("gmc", &gmc),
            ("clt", &clt),
            ("maxmin", &maxmin),
        ];
        for (name, algorithm) in algorithms {
            group.bench_with_input(BenchmarkId::new(name, s), &candidates, |b, cands| {
                b.iter(|| {
                    // Input construction (store packing + norm caching) is
                    // inside the timed region: it is part of the per-query
                    // cost the cached path pays and the naive path does not.
                    let input = DiversificationInput::new(&query, cands, Distance::Cosine);
                    algorithm.select(black_box(&input), k)
                });
            });
        }
        group.bench_with_input(BenchmarkId::new("gmc_naive", s), &candidates, |b, cands| {
            b.iter(|| naive_gmc(&query, black_box(cands), Distance::Cosine, gmc.lambda, k));
        });
        group.bench_with_input(
            BenchmarkId::new("dust_naive", s),
            &candidates,
            |b, cands| {
                let cfg = &dust.config;
                b.iter(|| {
                    naive_dust(
                        &query,
                        black_box(cands),
                        Distance::Cosine,
                        cfg.p,
                        cfg.prune_to,
                        k,
                    )
                });
            },
        );
    }
    group.finish();
}

fn bench_pruning(c: &mut Criterion) {
    let candidates = embeddings(5000, 3);
    let sources: Vec<usize> = (0..candidates.len()).map(|i| i % 25).collect();
    c.bench_function("prune_5000_to_1000", |b| {
        b.iter(|| {
            prune_tuples(
                black_box(&candidates),
                Some(black_box(&sources)),
                Distance::Cosine,
                1000,
            )
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_diversifiers, bench_pruning
}
criterion_main!(benches);
