//! Criterion microbenchmarks for the clustering substrate: agglomerative
//! clustering (the inner loop of both DUST's diversifier and the holistic
//! column aligner) with its two engines head to head, k-means, silhouette
//! scoring, and medoid extraction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_bench::setup::clustered_points;
use dust_cluster::{
    agglomerative, agglomerative_params, agglomerative_with, best_cut_by_silhouette,
    best_cut_by_silhouette_from_matrix, cluster_medoids, kmeans, silhouette_score,
    AgglomerativeAlgorithm, ClusterParams, Compaction, Linkage,
};
use dust_embed::{Distance, PairwiseMatrix};

fn bench_agglomerative(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative");
    group.sample_size(10);
    for &n in &[100usize, 400, 800] {
        let points = clustered_points(n, 32, 7);
        group.bench_with_input(BenchmarkId::new("average_linkage", n), &points, |b, pts| {
            b.iter(|| agglomerative(black_box(pts), Distance::Cosine, Linkage::Average));
        });
    }
    group.finish();
}

/// NN-chain vs cached-NN generic engine over a prebuilt pairwise matrix
/// (the matrix build is shared by both in the pipeline, so it is excluded
/// here). This is the `BENCH_cluster.json` source.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    for &n in &[100usize, 200, 1000, 2000] {
        let points = clustered_points(n, 32, 7);
        let matrix = PairwiseMatrix::compute(&points, Distance::Cosine);
        for (name, algorithm) in [
            ("nn_chain", AgglomerativeAlgorithm::NnChain),
            ("generic", AgglomerativeAlgorithm::Generic),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &matrix, |b, m| {
                b.iter(|| agglomerative_with(black_box(m), Linkage::Average, algorithm, 1));
            });
        }
    }
    group.finish();
}

/// Full non-compacting build vs the k-capped (`k·p = 100`) + compacting
/// configuration DUST actually consumes, at the scales where the full
/// build's O(n²) INF-poisoned scans dominate. `BENCH_cluster.json`'s
/// `clustering_capped` section comes from this group.
fn bench_capped_compacting(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering_capped");
    group.sample_size(10);
    for &n in &[2000usize, 5000, 10000] {
        let points = clustered_points(n, 32, 7);
        let matrix = PairwiseMatrix::compute(&points, Distance::Cosine);
        for (name, min_clusters, compaction) in [
            ("full", 1usize, Compaction::Never),
            ("capped_compacting", 100, Compaction::Always),
        ] {
            let params = ClusterParams {
                linkage: Linkage::Average,
                algorithm: AgglomerativeAlgorithm::Generic,
                min_clusters,
                compaction,
            };
            group.bench_with_input(BenchmarkId::new(name, n), &matrix, |b, m| {
                b.iter(|| agglomerative_params(black_box(m), &params));
            });
        }
    }
    group.finish();
}

/// Silhouette model selection (the alignment path): one matrix per sweep
/// vs the historical one-matrix-per-candidate-k behaviour, approximated by
/// the points-taking entry (which at least builds only one). The
/// from-matrix entry is what `HolisticAligner::align_with` now calls.
fn bench_silhouette_model_selection(c: &mut Criterion) {
    let points = clustered_points(120, 32, 11);
    let matrix = PairwiseMatrix::compute(&points, Distance::Cosine);
    let dendrogram = agglomerative(&points, Distance::Cosine, Linkage::Average);
    c.bench_function("silhouette_sweep_120_k2_30_from_matrix", |b| {
        b.iter(|| {
            best_cut_by_silhouette_from_matrix(black_box(&dendrogram), black_box(&matrix), 2, 30)
        });
    });
    c.bench_function("silhouette_sweep_120_k2_30_build_matrix", |b| {
        b.iter(|| {
            best_cut_by_silhouette(
                black_box(&dendrogram),
                black_box(&points),
                Distance::Cosine,
                2,
                30,
            )
        });
    });
}

fn bench_cut_and_medoids(c: &mut Criterion) {
    let points = clustered_points(400, 32, 11);
    let dendrogram = agglomerative(&points, Distance::Cosine, Linkage::Average);
    c.bench_function("dendrogram_cut_50", |b| {
        b.iter(|| black_box(&dendrogram).cut(50));
    });
    let assignment = dendrogram.cut(50);
    c.bench_function("cluster_medoids_50", |b| {
        b.iter(|| cluster_medoids(black_box(&points), black_box(&assignment), Distance::Cosine));
    });
    c.bench_function("silhouette_400", |b| {
        b.iter(|| silhouette_score(black_box(&points), black_box(&assignment), Distance::Cosine));
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let points = clustered_points(800, 32, 13);
    c.bench_function("kmeans_800_k20", |b| {
        b.iter(|| kmeans(black_box(&points), 20, 20, 3, Distance::Euclidean));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_agglomerative, bench_engines, bench_capped_compacting, bench_silhouette_model_selection, bench_cut_and_medoids, bench_kmeans
}
criterion_main!(benches);
