//! Criterion microbenchmarks for the clustering substrate: agglomerative
//! clustering (the inner loop of both DUST's diversifier and the holistic
//! column aligner), k-means, silhouette scoring, and medoid extraction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_cluster::{agglomerative, cluster_medoids, kmeans, silhouette_score, Linkage};
use dust_embed::{Distance, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn clustered_points(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centroids[rng.gen_range(0..centroids.len())];
            Vector::new(c.iter().map(|x| x + rng.gen_range(-0.2..0.2)).collect())
        })
        .collect()
}

fn bench_agglomerative(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative");
    group.sample_size(10);
    for &n in &[100usize, 400, 800] {
        let points = clustered_points(n, 32, 7);
        group.bench_with_input(BenchmarkId::new("average_linkage", n), &points, |b, pts| {
            b.iter(|| agglomerative(black_box(pts), Distance::Cosine, Linkage::Average));
        });
    }
    group.finish();
}

fn bench_cut_and_medoids(c: &mut Criterion) {
    let points = clustered_points(400, 32, 11);
    let dendrogram = agglomerative(&points, Distance::Cosine, Linkage::Average);
    c.bench_function("dendrogram_cut_50", |b| {
        b.iter(|| black_box(&dendrogram).cut(50));
    });
    let assignment = dendrogram.cut(50);
    c.bench_function("cluster_medoids_50", |b| {
        b.iter(|| cluster_medoids(black_box(&points), black_box(&assignment), Distance::Cosine));
    });
    c.bench_function("silhouette_400", |b| {
        b.iter(|| silhouette_score(black_box(&points), black_box(&assignment), Distance::Cosine));
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let points = clustered_points(800, 32, 13);
    c.bench_function("kmeans_800_k20", |b| {
        b.iter(|| kmeans(black_box(&points), 20, 20, 3, Distance::Euclidean));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_agglomerative, bench_cut_and_medoids, bench_kmeans
}
criterion_main!(benches);
