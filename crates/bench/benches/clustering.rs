//! Criterion microbenchmarks for the clustering substrate: agglomerative
//! clustering (the inner loop of both DUST's diversifier and the holistic
//! column aligner) with its two engines head to head, k-means, silhouette
//! scoring, and medoid extraction.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_bench::setup::clustered_points;
use dust_cluster::{
    agglomerative, agglomerative_with, cluster_medoids, kmeans, silhouette_score,
    AgglomerativeAlgorithm, Linkage,
};
use dust_embed::{Distance, PairwiseMatrix};

fn bench_agglomerative(c: &mut Criterion) {
    let mut group = c.benchmark_group("agglomerative");
    group.sample_size(10);
    for &n in &[100usize, 400, 800] {
        let points = clustered_points(n, 32, 7);
        group.bench_with_input(BenchmarkId::new("average_linkage", n), &points, |b, pts| {
            b.iter(|| agglomerative(black_box(pts), Distance::Cosine, Linkage::Average));
        });
    }
    group.finish();
}

/// NN-chain vs cached-NN generic engine over a prebuilt pairwise matrix
/// (the matrix build is shared by both in the pipeline, so it is excluded
/// here). This is the `BENCH_cluster.json` source.
fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    group.sample_size(10);
    for &n in &[100usize, 200, 1000, 2000] {
        let points = clustered_points(n, 32, 7);
        let matrix = PairwiseMatrix::compute(&points, Distance::Cosine);
        for (name, algorithm) in [
            ("nn_chain", AgglomerativeAlgorithm::NnChain),
            ("generic", AgglomerativeAlgorithm::Generic),
        ] {
            group.bench_with_input(BenchmarkId::new(name, n), &matrix, |b, m| {
                b.iter(|| agglomerative_with(black_box(m), Linkage::Average, algorithm));
            });
        }
    }
    group.finish();
}

fn bench_cut_and_medoids(c: &mut Criterion) {
    let points = clustered_points(400, 32, 11);
    let dendrogram = agglomerative(&points, Distance::Cosine, Linkage::Average);
    c.bench_function("dendrogram_cut_50", |b| {
        b.iter(|| black_box(&dendrogram).cut(50));
    });
    let assignment = dendrogram.cut(50);
    c.bench_function("cluster_medoids_50", |b| {
        b.iter(|| cluster_medoids(black_box(&points), black_box(&assignment), Distance::Cosine));
    });
    c.bench_function("silhouette_400", |b| {
        b.iter(|| silhouette_score(black_box(&points), black_box(&assignment), Distance::Cosine));
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let points = clustered_points(800, 32, 13);
    c.bench_function("kmeans_800_k20", |b| {
        b.iter(|| kmeans(black_box(&points), 20, 20, 3, Distance::Euclidean));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_agglomerative, bench_engines, bench_cut_and_medoids, bench_kmeans
}
criterion_main!(benches);
