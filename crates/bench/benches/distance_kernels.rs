//! Microbenchmarks of the shared distance-kernel subsystem: naive
//! per-call `Distance::between` (recomputes two norms per cosine call)
//! vs the store-backed cached-norm kernel vs the parallel condensed
//! matrix build vs the pre-normalized `1 − dot` view, at n ∈ {500, 2000,
//! 8000} and dim ∈ {32, 300}.
//!
//! The naive full-matrix build is skipped at n = 8000 (it takes tens of
//! seconds per iteration); `naive/...` rows at 500 and 2000 anchor the
//! comparison, and the scaling of the cached variants covers the rest.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_embed::{Distance, EmbeddingStore, PairwiseMatrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn embeddings(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..20)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centroids[rng.gen_range(0..centroids.len())];
            Vector::new(c.iter().map(|x| x + rng.gen_range(-0.3f32..0.3)).collect())
        })
        .collect()
}

fn bench_distance_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("distance_kernels");
    group.sample_size(10);
    for &dim in &[32usize, 300] {
        for &n in &[500usize, 2000, 8000] {
            let points = embeddings(n, dim, 42);
            let store = EmbeddingStore::from_vectors(&points);
            let param = format!("n={n}/dim={dim}");

            if n <= 2000 {
                group.bench_with_input(BenchmarkId::new("naive", &param), &points, |b, pts| {
                    b.iter(|| {
                        PairwiseMatrix::from_fn(pts.len(), |i, j| {
                            Distance::Cosine.between(&pts[i], &pts[j])
                        })
                    });
                });
            }

            group.bench_with_input(BenchmarkId::new("store_serial", &param), &store, |b, s| {
                b.iter(|| {
                    PairwiseMatrix::from_fn(s.len(), |i, j| s.distance(Distance::Cosine, i, j))
                });
            });

            group.bench_with_input(
                BenchmarkId::new("parallel_matrix", &param),
                &store,
                |b, s| {
                    b.iter(|| PairwiseMatrix::from_store(black_box(s), Distance::Cosine));
                },
            );

            group.bench_with_input(
                BenchmarkId::new("normalized_dot", &param),
                &store,
                |b, s| {
                    let view = s.normalized_view();
                    b.iter(|| {
                        PairwiseMatrix::from_fn(view.len(), |i, j| view.cosine_distance(i, j))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(300));
    targets = bench_distance_kernels
}
criterion_main!(benches);
