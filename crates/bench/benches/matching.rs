//! Criterion microbenchmarks for the search substrate: maximum-weight
//! bipartite matching, the inverted value index, and end-to-end table
//! scoring for the overlap, D3L, and Starmie searchers.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use dust_datagen::BenchmarkConfig;
use dust_search::{
    max_weight_matching, D3lSearch, InvertedValueIndex, OverlapSearch, StarmieSearch,
    TableUnionSearch,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_bipartite(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let mut group = c.benchmark_group("bipartite_matching");
    for &n in &[8usize, 16, 32] {
        let weights: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..n).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &weights, |b, w| {
            b.iter(|| max_weight_matching(black_box(w)));
        });
    }
    group.finish();
}

fn bench_search(c: &mut Criterion) {
    let lake = BenchmarkConfig::tiny().generate().lake;
    let query_name = lake.query_names()[0].clone();
    let query = lake.query(&query_name).unwrap().clone();

    c.bench_function("inverted_index_build", |b| {
        b.iter(|| InvertedValueIndex::build(black_box(&lake)));
    });

    let overlap = OverlapSearch::new();
    c.bench_function("overlap_search_top5", |b| {
        b.iter(|| overlap.search(black_box(&lake), black_box(&query), 5));
    });
    let d3l = D3lSearch::new();
    c.bench_function("d3l_search_top5", |b| {
        b.iter(|| d3l.search(black_box(&lake), black_box(&query), 5));
    });
    let starmie = StarmieSearch::new();
    c.bench_function("starmie_search_top5", |b| {
        b.iter(|| starmie.search(black_box(&lake), black_box(&query), 5));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_bipartite, bench_search
}
criterion_main!(benches);
