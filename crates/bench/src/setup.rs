//! Shared experiment setup: scale selection, benchmark generation helpers,
//! shared model training, and candidate-pool construction.

use dust_align::{outer_union, HolisticAligner};
use dust_datagen::{
    build_finetune_dataset, BenchmarkConfig, FineTuneDataset, FineTuneDatasetConfig,
};
use dust_embed::{DustModel, FineTuneConfig, PretrainedModel, Vector};
use dust_table::{DataLake, Table, Tuple};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Experiment scale, selected with the `DUST_SCALE` environment variable
/// (`small` — default, finishes in minutes even in debug builds — or `full`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced corpus sizes; the default.
    Small,
    /// Larger corpora closer to the paper's benchmark sizes.
    Full,
}

/// Read the experiment scale from the environment.
pub fn scale() -> Scale {
    match std::env::var("DUST_SCALE")
        .unwrap_or_default()
        .to_ascii_lowercase()
        .as_str()
    {
        "full" | "paper" | "large" => Scale::Full,
        _ => Scale::Small,
    }
}

impl Scale {
    /// A SANTOS-like benchmark configuration at this scale.
    pub fn santos_config(&self) -> BenchmarkConfig {
        match self {
            Scale::Small => BenchmarkConfig {
                num_domains: 6,
                base_rows: 160,
                queries_per_domain: 2,
                lake_tables_per_domain: 6,
                ..BenchmarkConfig::santos()
            },
            Scale::Full => BenchmarkConfig::santos(),
        }
    }

    /// A UGEN-V1-like benchmark configuration at this scale.
    pub fn ugen_config(&self) -> BenchmarkConfig {
        match self {
            Scale::Small => BenchmarkConfig {
                num_domains: 6,
                queries_per_domain: 2,
                lake_tables_per_domain: 6,
                ..BenchmarkConfig::ugen_v1()
            },
            Scale::Full => BenchmarkConfig::ugen_v1(),
        }
    }

    /// A TUS-Sampled-like benchmark configuration at this scale.
    pub fn tus_sampled_config(&self) -> BenchmarkConfig {
        match self {
            Scale::Small => BenchmarkConfig {
                num_domains: 6,
                base_rows: 100,
                queries_per_domain: 1,
                lake_tables_per_domain: 5,
                ..BenchmarkConfig::tus_sampled()
            },
            Scale::Full => BenchmarkConfig::tus_sampled(),
        }
    }

    /// Output size `k` used in the Table 2 diversification experiment.
    pub fn santos_k(&self) -> usize {
        match self {
            Scale::Small => 30,
            Scale::Full => 100,
        }
    }

    /// Output size `k` used on the UGEN-like benchmark.
    pub fn ugen_k(&self) -> usize {
        match self {
            Scale::Small => 15,
            Scale::Full => 30,
        }
    }

    /// Number of fine-tuning pairs used when training the shared model.
    pub fn finetune_pairs(&self) -> usize {
        match self {
            Scale::Small => 400,
            Scale::Full => 2000,
        }
    }
}

/// Seeded synthetic embedding cloud for the clustering benches: `n` points
/// of dimension `dim` scattered around 10 random centroids (shared by the
/// Criterion `clustering` group and the `exp_clustering` binary so both
/// measure the same input distribution).
pub fn clustered_points(n: usize, dim: usize, seed: u64) -> Vec<Vector> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centroids: Vec<Vec<f32>> = (0..10)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    (0..n)
        .map(|_| {
            let c = &centroids[rng.gen_range(0..centroids.len())];
            Vector::new(c.iter().map(|x| x + rng.gen_range(-0.2..0.2)).collect())
        })
        .collect()
}

/// Train the shared DUST tuple model on pairs sampled from a lake, returning
/// the model and the dataset (whose test split is used by Fig. 6 / Fig. 10).
pub fn train_dust_model(
    lake: &DataLake,
    backbone: PretrainedModel,
    pairs: usize,
) -> (DustModel, FineTuneDataset) {
    let dataset = build_finetune_dataset(
        lake,
        &FineTuneDatasetConfig {
            total_pairs: pairs,
            ..FineTuneDatasetConfig::default()
        },
    );
    let config = FineTuneConfig {
        hidden_dim: 96,
        output_dim: 64,
        max_epochs: 80,
        patience: 12,
        learning_rate: 0.3,
        ..FineTuneConfig::default()
    };
    let mut model = DustModel::new(backbone, config);
    if !dataset.train.is_empty() {
        let train = FineTuneDataset::triples(&dataset.train);
        let val = FineTuneDataset::triples(&dataset.validation);
        model.train(&train, &val);
    }
    (model, dataset)
}

/// Build the candidate unionable-tuple pool for a query from the benchmark's
/// ground truth (the diversification experiments of Sec. 6.4 evaluate the
/// diversifiers on the true unionable tuples, independent of search errors).
///
/// Returns the tuples (under the query header) and a parallel source-table
/// id per tuple.
pub fn build_candidates_for_query(
    lake: &DataLake,
    query: &Table,
    max_tables: usize,
) -> (Vec<Tuple>, Vec<usize>) {
    let unionable = lake.ground_truth().unionable_with(query.name());
    let tables: Vec<&Table> = unionable
        .iter()
        .take(max_tables)
        .filter_map(|name| lake.table(name).ok())
        .collect();
    if tables.is_empty() {
        return (Vec::new(), Vec::new());
    }
    let aligner = HolisticAligner::new();
    let alignment = aligner.align(query, &tables);
    let tuples = outer_union(query, &tables, &alignment);
    let mut table_ids: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    let sources: Vec<usize> = tuples
        .iter()
        .map(|t| {
            let next = table_ids.len();
            *table_ids
                .entry(t.source_table().to_string())
                .or_insert(next)
        })
        .collect();
    (tuples, sources)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_defaults_to_small() {
        // DUST_SCALE is not set in the test environment
        assert_eq!(scale(), Scale::Small);
        assert!(Scale::Small.santos_k() < Scale::Full.santos_k());
        assert!(Scale::Small.finetune_pairs() < Scale::Full.finetune_pairs());
    }

    #[test]
    fn small_configs_are_smaller_than_full() {
        let small = Scale::Small.santos_config();
        let full = Scale::Full.santos_config();
        assert!(small.num_domains <= full.num_domains);
        assert!(small.base_rows <= full.base_rows);
        assert!(Scale::Small.ugen_config().lake_tables_per_domain <= full.lake_tables_per_domain);
        assert!(
            Scale::Small.tus_sampled_config().base_rows <= BenchmarkConfig::tus_sampled().base_rows
        );
    }

    #[test]
    fn candidate_pool_covers_ground_truth_tables() {
        let lake = BenchmarkConfig::tiny().generate().lake;
        let query_name = lake.query_names()[0].clone();
        let query = lake.query(&query_name).unwrap().clone();
        let (tuples, sources) = build_candidates_for_query(&lake, &query, 10);
        assert!(!tuples.is_empty());
        assert_eq!(tuples.len(), sources.len());
        // sources are dense ids
        let max = sources.iter().copied().max().unwrap();
        assert!(max < lake.ground_truth().unionable_with(&query_name).len());
        // all candidates carry the query header
        for t in &tuples {
            assert_eq!(t.headers(), query.headers());
        }
    }

    #[test]
    fn trained_model_beats_chance_on_its_test_split() {
        let lake = BenchmarkConfig::tiny().generate().lake;
        let (model, dataset) = train_dust_model(&lake, PretrainedModel::Roberta, 200);
        let test = FineTuneDataset::triples(&dataset.test);
        assert!(!test.is_empty());
        let acc = model.classification_accuracy(&test, 0.7);
        assert!(acc > 0.6, "trained model accuracy {acc} too low");
    }
}
