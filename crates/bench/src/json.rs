//! Minimal JSON support for the `serve` binary's JSONL protocol.
//!
//! The vendored `serde` stand-in is an inert marker crate (see
//! `vendor/serde`), so request parsing and response emission are done with
//! this small hand-rolled implementation. It covers the full JSON value
//! grammar (objects, arrays, strings with escapes, numbers, booleans,
//! null) — more than the flat request objects need — and is replaced by
//! `serde_json` the day a registry is reachable.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object (key order preserved via `BTreeMap` for determinism).
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as a non-negative integer.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_f64()
            .filter(|n| n.is_finite() && *n >= 0.0 && n.fract() == 0.0)
            .map(|n| n as usize)
    }
}

/// Parse one JSON document. Errors carry a byte offset and a short reason.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}", pos = *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(JsonValue::Number)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                            16,
                        )
                        .map_err(|e| e.to_string())?;
                        // Surrogate pairs are not needed by the protocol;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // copy one UTF-8 scalar (possibly multi-byte)
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().ok_or("unterminated string")?;
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // consume '{'
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}", pos = *pos));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}", pos = *pos));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}", pos = *pos)),
        }
    }
}

/// Escape a string for embedding in JSON output (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` for JSON output (finite values only; NaN/∞ become null).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// A JSON array of strings.
pub fn string_array<'a>(items: impl IntoIterator<Item = &'a str>) -> String {
    let quoted: Vec<String> = items
        .into_iter()
        .map(|s| format!("\"{}\"", escape(s)))
        .collect();
    format!("[{}]", quoted.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_flat_request_object() {
        let v = parse(r#"{"id": "q1", "k": 8, "query": "santos_query_0"}"#).unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("q1"));
        assert_eq!(v.get("k").unwrap().as_usize(), Some(8));
        assert_eq!(v.get("query").unwrap().as_str(), Some("santos_query_0"));
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn parses_nested_values_numbers_and_literals() {
        let v = parse(r#"{"a": [1, -2.5, 1e3, true, false, null], "b": {"c": "x"}}"#).unwrap();
        match v.get("a").unwrap() {
            JsonValue::Array(items) => {
                assert_eq!(items[0].as_f64(), Some(1.0));
                assert_eq!(items[1].as_f64(), Some(-2.5));
                assert_eq!(items[2].as_f64(), Some(1000.0));
                assert_eq!(items[3], JsonValue::Bool(true));
                assert_eq!(items[5], JsonValue::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("b").unwrap().get("c").and_then(JsonValue::as_str),
            Some("x")
        );
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "line1\nline2\t\"quoted\" back\\slash ünïcode";
        let json = format!("\"{}\"", escape(original));
        let parsed = parse(&json).unwrap();
        assert_eq!(parsed.as_str(), Some(original));
    }

    #[test]
    fn csv_payloads_survive_embedded_newlines() {
        // the serve protocol ships CSV tables inside JSON strings
        let line = r#"{"csv": "Park Name,Country\nRiver Park,USA\nHyde Park,UK"}"#;
        let v = parse(line).unwrap();
        let csv = v.get("csv").unwrap().as_str().unwrap();
        assert_eq!(csv.lines().count(), 3);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse(r#"{"a" 1}"#).is_err());
        assert!(parse(r#"{"a": 1} trailing"#).is_err());
        assert!(parse(r#""unterminated"#).is_err());
        assert!(parse("[1, 2,]").is_err());
    }

    #[test]
    fn number_formatting_handles_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn string_array_quotes_and_escapes() {
        assert_eq!(string_array(["a", "b\"c"]), r#"["a","b\"c"]"#);
        assert_eq!(string_array([]), "[]");
    }
}
