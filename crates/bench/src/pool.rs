//! Bounded worker-pool connection multiplexing for the `serve` binary's
//! TCP mode (std-only — no epoll crate, no async runtime).
//!
//! Thread-per-connection falls over under heavy traffic: every accepted
//! socket costs a stack, an unbounded number of them can be opened, and a
//! client trickling bytes holds its thread forever. This pool inverts the
//! shape: **K workers multiplex a bounded registry of nonblocking
//! connections**. Worker 0 folds `accept` into its poll cycle (no
//! dedicated accept thread, no fixed accept-retry sleep) and hands new
//! sockets round-robin to the other workers through per-worker queues;
//! each worker then owns its slice of connections outright and polls them
//! with per-connection read/write buffers.
//!
//! Resource exhaustion is answered with *typed* protocol lines instead of
//! degradation:
//!
//! * more than [`PoolOptions::max_connections`] live sockets → the excess
//!   connection is written [`PoolOptions::overloaded_line`] and closed
//!   (backpressure, not unbounded spawn);
//! * a request line exceeding [`PoolOptions::max_line_bytes`] → the
//!   buffered prefix is dropped, [`PoolOptions::line_too_long_line`] is
//!   sent, and input is discarded until the next newline (a slow-loris
//!   client can no longer grow server memory without bound);
//! * a connection whose unread responses exceed
//!   [`PoolOptions::max_write_buffer`] is closed (a never-reading client
//!   cannot buffer unbounded output either).
//!
//! Shutdown is a graceful drain: once the shared flag flips, workers stop
//! accepting, flush every connection's pending responses (bounded,
//! best-effort), and exit. The request handler runs on the worker thread,
//! so an in-flight request always finishes and its response is part of
//! the drain.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, PoisonError};
use std::time::Duration;

/// Tuning knobs for [`run`]. Start from `PoolOptions::default()` and
/// override per flag.
#[derive(Debug, Clone)]
pub struct PoolOptions {
    /// Worker threads multiplexing the connections (≥ 1; worker 0 also
    /// accepts).
    pub workers: usize,
    /// Live-connection cap; accepts past it are rejected with
    /// [`Self::overloaded_line`].
    pub max_connections: usize,
    /// Per-connection cap on a single request line (bytes, newline
    /// exclusive); longer lines are dropped with
    /// [`Self::line_too_long_line`].
    pub max_line_bytes: usize,
    /// Per-connection cap on buffered unwritten responses; a connection
    /// exceeding it (a client that never reads) is closed.
    pub max_write_buffer: usize,
    /// Idle back-off ceiling: a worker whose cycle did no work sleeps,
    /// doubling from [`Self::min_backoff`] up to this, and resets to the
    /// minimum on any activity. Bounds both idle CPU and worst-case
    /// connect latency.
    pub max_backoff: Duration,
    /// Idle back-off floor.
    pub min_backoff: Duration,
    /// Full response line (newline appended by the pool) written to a
    /// connection rejected over [`Self::max_connections`].
    pub overloaded_line: String,
    /// Full response line (newline appended by the pool) written when a
    /// request line exceeds [`Self::max_line_bytes`].
    pub line_too_long_line: String,
}

impl Default for PoolOptions {
    fn default() -> Self {
        PoolOptions {
            workers: 4,
            max_connections: 256,
            max_line_bytes: 1 << 20,
            max_write_buffer: 8 << 20,
            max_backoff: Duration::from_millis(5),
            min_backoff: Duration::from_micros(200),
            overloaded_line: "overloaded".to_string(),
            line_too_long_line: "line too long".to_string(),
        }
    }
}

/// Shared observability counters, readable while the pool runs (the
/// `serve` binary surfaces them under `{"mode":"stats"}`).
#[derive(Debug, Default)]
pub struct PoolCounters {
    /// Connections currently registered (accepted and not yet closed).
    pub active: AtomicUsize,
    /// Total connections accepted (including rejected ones).
    pub accepted: AtomicU64,
    /// Connections rejected with the overloaded line.
    pub rejected_overloaded: AtomicU64,
    /// Request lines dropped for exceeding the line cap.
    pub lines_too_long: AtomicU64,
    /// Request lines answered by the handler.
    pub served_lines: AtomicU64,
}

/// What one connection's service pass concluded.
struct Serviced {
    /// Keep the connection registered?
    keep: bool,
    /// Did any byte move (governs the idle back-off reset)?
    worked: bool,
}

/// One multiplexed connection: the nonblocking socket plus its partial
/// request line and pending responses. Owned by exactly one worker.
struct Conn {
    stream: TcpStream,
    /// Bytes of the current (incomplete) request line. Capped at
    /// `max_line_bytes` + one read chunk.
    buf: Vec<u8>,
    /// Responses not yet accepted by the socket.
    out: Vec<u8>,
    /// Inside an oversized line: drop input until the next newline.
    discarding: bool,
}

enum FlushState {
    Done,
    Blocked,
    Dead,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            buf: Vec::new(),
            out: Vec::new(),
            discarding: false,
        }
    }

    /// Push pending responses into the socket without blocking.
    fn flush(&mut self) -> (FlushState, bool) {
        let mut wrote = false;
        while !self.out.is_empty() {
            match self.stream.write(&self.out) {
                Ok(0) => return (FlushState::Dead, wrote),
                Ok(n) => {
                    self.out.drain(..n);
                    wrote = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return (FlushState::Blocked, wrote),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return (FlushState::Dead, wrote),
            }
        }
        (FlushState::Done, wrote)
    }

    /// Best-effort blocking flush for shutdown drain and EOF: pending
    /// responses get one bounded chance to reach a well-behaved client.
    fn drain(&mut self) {
        if self.out.is_empty() {
            return;
        }
        let _ = self.stream.set_nonblocking(false);
        let _ = self.stream.set_write_timeout(Some(Duration::from_secs(1)));
        let _ = self.stream.write_all(&self.out);
        let _ = self.stream.flush();
        self.out.clear();
    }

    /// Fold freshly-read bytes into the line buffer, answering every
    /// completed line via `handler` and enforcing the line cap.
    fn ingest(
        &mut self,
        mut bytes: &[u8],
        options: &PoolOptions,
        counters: &PoolCounters,
        handler: &(dyn Fn(&str) -> String + Sync),
    ) {
        if self.discarding {
            match bytes.iter().position(|&b| b == b'\n') {
                Some(pos) => {
                    self.discarding = false;
                    bytes = &bytes[pos + 1..];
                }
                None => return, // still inside the oversized line: drop
            }
        }
        self.buf.extend_from_slice(bytes);
        while let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
            let line: Vec<u8> = self.buf.drain(..=pos).collect();
            self.answer(&line[..line.len() - 1], counters, handler);
        }
        if self.buf.len() > options.max_line_bytes {
            counters.lines_too_long.fetch_add(1, Ordering::Relaxed);
            self.buf.clear();
            self.buf.shrink_to_fit();
            self.discarding = true;
            self.out
                .extend_from_slice(options.line_too_long_line.as_bytes());
            self.out.push(b'\n');
        }
    }

    /// Answer one complete request line (blank lines are ignored, as on
    /// the stdin path).
    fn answer(
        &mut self,
        line: &[u8],
        counters: &PoolCounters,
        handler: &(dyn Fn(&str) -> String + Sync),
    ) {
        let text = String::from_utf8_lossy(line);
        let text = text.trim();
        if text.is_empty() {
            return;
        }
        counters.served_lines.fetch_add(1, Ordering::Relaxed);
        let response = handler(text);
        self.out.extend_from_slice(response.as_bytes());
        self.out.push(b'\n');
    }

    /// One multiplexing pass: flush what's pending, read what's ready
    /// (bounded per pass so one firehose client cannot starve its worker's
    /// other connections), answer completed lines.
    fn service(
        &mut self,
        options: &PoolOptions,
        counters: &PoolCounters,
        handler: &(dyn Fn(&str) -> String + Sync),
    ) -> Serviced {
        let (state, mut worked) = self.flush();
        if matches!(state, FlushState::Dead) {
            return Serviced {
                keep: false,
                worked,
            };
        }
        let mut chunk = [0u8; 4096];
        for _ in 0..64 {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // EOF: a trailing unterminated line is still a request
                    // (same as the stdin path), then drain and close.
                    if !self.buf.is_empty() && !self.discarding {
                        let line = std::mem::take(&mut self.buf);
                        self.answer(&line, counters, handler);
                    }
                    self.drain();
                    return Serviced {
                        keep: false,
                        worked: true,
                    };
                }
                Ok(n) => {
                    worked = true;
                    self.ingest(&chunk[..n], options, counters, handler);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    return Serviced {
                        keep: false,
                        worked,
                    }
                }
            }
        }
        if let (FlushState::Dead, _) = self.flush() {
            return Serviced {
                keep: false,
                worked,
            };
        }
        if self.out.len() > options.max_write_buffer {
            // A client that never reads cannot hold unbounded responses.
            return Serviced {
                keep: false,
                worked,
            };
        }
        Serviced { keep: true, worked }
    }
}

/// Run the pool until `shutdown` flips, multiplexing every connection
/// accepted on `listener` through `handler` (one request line in, one
/// response line out). Blocks the calling thread; worker threads are
/// scoped inside. The handler runs on worker threads and so must be
/// `Sync`; it may itself flip `shutdown` (the serve binary's
/// `{"mode":"shutdown"}` does) — the ack still reaches the client through
/// the drain.
pub fn run(
    listener: &TcpListener,
    options: &PoolOptions,
    counters: &PoolCounters,
    shutdown: &AtomicBool,
    handler: &(dyn Fn(&str) -> String + Sync),
) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let workers = options.workers.max(1);
    let queues: Vec<Mutex<Vec<TcpStream>>> = (0..workers).map(|_| Mutex::new(Vec::new())).collect();
    std::thread::scope(|scope| {
        for w in 0..workers {
            let queues = &queues;
            scope.spawn(move || {
                worker_loop(w, listener, options, counters, shutdown, handler, queues)
            });
        }
    });
    Ok(())
}

/// One worker's poll cycle: (worker 0 only) drain `accept`, drain the
/// hand-off queue, service every owned connection, back off when idle.
fn worker_loop(
    w: usize,
    listener: &TcpListener,
    options: &PoolOptions,
    counters: &PoolCounters,
    shutdown: &AtomicBool,
    handler: &(dyn Fn(&str) -> String + Sync),
    queues: &[Mutex<Vec<TcpStream>>],
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut backoff = options.min_backoff;
    let mut next_assignee = 0usize;
    loop {
        let mut busy = false;
        if w == 0 && !shutdown.load(Ordering::SeqCst) {
            busy |= accept_ready(listener, options, counters, queues, &mut next_assignee);
        }
        {
            // dust-lint: lock(pool-conns)
            let mut queue = queues[w].lock().unwrap_or_else(PoisonError::into_inner);
            for stream in queue.drain(..) {
                conns.push(Conn::new(stream));
                busy = true;
            }
        }
        let mut i = 0;
        while i < conns.len() {
            let outcome = conns[i].service(options, counters, handler);
            busy |= outcome.worked;
            if outcome.keep {
                i += 1;
            } else {
                conns.swap_remove(i);
                counters.active.fetch_sub(1, Ordering::Relaxed);
            }
        }
        if shutdown.load(Ordering::SeqCst) {
            // Graceful drain: every pending response gets its bounded
            // chance to reach the client before the socket closes.
            for conn in &mut conns {
                conn.drain();
            }
            counters.active.fetch_sub(conns.len(), Ordering::Relaxed);
            conns.clear();
            return;
        }
        if busy {
            backoff = options.min_backoff;
        } else {
            std::thread::sleep(backoff);
            backoff = (backoff * 2).min(options.max_backoff);
        }
    }
}

/// Drain every connection the listener has ready: register up to the cap
/// (handing off round-robin), reject the rest with the typed overloaded
/// line. Returns whether anything was accepted.
fn accept_ready(
    listener: &TcpListener,
    options: &PoolOptions,
    counters: &PoolCounters,
    queues: &[Mutex<Vec<TcpStream>>],
    next_assignee: &mut usize,
) -> bool {
    let mut any = false;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                any = true;
                counters.accepted.fetch_add(1, Ordering::Relaxed);
                if counters.active.load(Ordering::Relaxed) >= options.max_connections {
                    counters.rejected_overloaded.fetch_add(1, Ordering::Relaxed);
                    reject(stream, &options.overloaded_line);
                    continue;
                }
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                counters.active.fetch_add(1, Ordering::Relaxed);
                let target = *next_assignee % queues.len();
                *next_assignee = next_assignee.wrapping_add(1);
                // dust-lint: lock(pool-conns)
                queues[target]
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .push(stream);
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    any
}

/// Tell an over-cap connection why it is being closed (bounded,
/// best-effort: the socket is still blocking at this point).
fn reject(mut stream: TcpStream, line: &str) {
    let _ = stream.set_write_timeout(Some(Duration::from_millis(200)));
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{BufRead, BufReader};

    fn options(max_line: usize) -> PoolOptions {
        PoolOptions {
            max_line_bytes: max_line,
            line_too_long_line: "TOO_LONG".to_string(),
            ..PoolOptions::default()
        }
    }

    /// A loopback pair: `Conn` wraps the server end, the test drives the
    /// client end.
    fn pair() -> (Conn, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        (Conn::new(server), client)
    }

    fn echo() -> impl Fn(&str) -> String + Sync {
        |line: &str| format!("echo:{line}")
    }

    #[test]
    fn completed_lines_are_answered_and_partials_buffered() {
        let (mut conn, mut client) = pair();
        let counters = PoolCounters::default();
        client.write_all(b"alpha\nbet").unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let outcome = conn.service(&options(64), &counters, &echo());
        assert!(outcome.keep && outcome.worked);
        assert_eq!(conn.buf, b"bet");
        let mut reader = BufReader::new(&client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "echo:alpha\n");
        assert_eq!(counters.served_lines.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn oversized_line_is_dropped_with_typed_response_and_memory_stays_bounded() {
        let (mut conn, mut client) = pair();
        let counters = PoolCounters::default();
        let opts = options(64);
        // Trickle 10 KiB without a newline: far over the 64-byte cap.
        for _ in 0..10 {
            client.write_all(&[b'x'; 1024]).unwrap();
            client.flush().unwrap();
            std::thread::sleep(Duration::from_millis(5));
            let outcome = conn.service(&opts, &counters, &echo());
            assert!(outcome.keep, "oversized line must not kill the conn");
        }
        assert_eq!(counters.lines_too_long.load(Ordering::Relaxed), 1);
        assert!(conn.discarding);
        assert!(
            conn.buf.capacity() <= opts.max_line_bytes + 4096,
            "partial-line buffer must stay bounded, got {}",
            conn.buf.capacity()
        );
        // The newline ends the discard; the next line is served normally.
        client.write_all(b"\nafter\n").unwrap();
        client.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
        conn.service(&opts, &counters, &echo());
        let mut reader = BufReader::new(&client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "TOO_LONG\n");
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "echo:after\n");
        assert_eq!(counters.served_lines.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn eof_serves_the_trailing_unterminated_line() {
        let (mut conn, mut client) = pair();
        let counters = PoolCounters::default();
        client.write_all(b"tail-no-newline").unwrap();
        client.shutdown(std::net::Shutdown::Write).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        let outcome = conn.service(&options(64), &counters, &echo());
        assert!(!outcome.keep, "EOF closes the connection");
        let mut reader = BufReader::new(&client);
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert_eq!(line, "echo:tail-no-newline\n");
    }
}
