//! Shared driver for the diversification comparisons (Table 2, Table 3,
//! Fig. 7, Fig. 11): run a set of diversifiers per query, measure both
//! diversity metrics and per-query wall-clock time, and count per-metric
//! wins.

use dust_diversify::{DiversificationInput, Diversifier, DiversityScores};
use dust_embed::{Distance, Vector};
use std::time::Instant;

/// The pre-embedded candidate pool of one query.
#[derive(Debug, Clone)]
pub struct QueryCandidates {
    /// Query table name (for reporting).
    pub query_name: String,
    /// Embeddings of the query tuples.
    pub query_embeddings: Vec<Vector>,
    /// Embeddings of the candidate unionable tuples.
    pub candidate_embeddings: Vec<Vector>,
    /// Source-table id per candidate.
    pub sources: Vec<usize>,
}

/// Aggregated outcome of one diversifier across all queries.
#[derive(Debug, Clone, PartialEq)]
pub struct DiversifierOutcome {
    /// Algorithm name.
    pub name: String,
    /// Number of queries where this algorithm achieved the (strictly) best
    /// Average Diversity.
    pub best_average: usize,
    /// Number of queries where this algorithm achieved the best Min Diversity.
    pub best_min: usize,
    /// Mean Average Diversity across queries.
    pub mean_average: f64,
    /// Mean Min Diversity across queries.
    pub mean_min: f64,
    /// Average wall-clock seconds per query.
    pub avg_time_secs: f64,
}

/// Run every diversifier on every query and aggregate wins, scores, and
/// per-query time. Ties count as a win for all tied algorithms (matching the
/// paper's "number of queries for which each algorithm gives the best
/// score" reporting).
pub fn evaluate_diversifiers(
    queries: &[QueryCandidates],
    diversifiers: &[(&str, &dyn Diversifier)],
    k: usize,
    distance: Distance,
) -> Vec<DiversifierOutcome> {
    let mut outcomes: Vec<DiversifierOutcome> = diversifiers
        .iter()
        .map(|(name, _)| DiversifierOutcome {
            name: name.to_string(),
            best_average: 0,
            best_min: 0,
            mean_average: 0.0,
            mean_min: 0.0,
            avg_time_secs: 0.0,
        })
        .collect();
    if queries.is_empty() {
        return outcomes;
    }

    for query in queries {
        let mut per_query: Vec<(usize, DiversityScores, f64)> = Vec::new();
        for (idx, (_, diversifier)) in diversifiers.iter().enumerate() {
            // Fresh input per diversifier so the timing below includes each
            // algorithm's own share of the lazy caches (a shared input would
            // bill the pairwise-matrix build to whichever algorithm ran
            // first).
            let input = DiversificationInput::with_sources(
                &query.query_embeddings,
                &query.candidate_embeddings,
                &query.sources,
                distance,
            );
            let start = Instant::now();
            let selection = diversifier.select(&input, k);
            let elapsed = start.elapsed().as_secs_f64();
            let selected: Vec<Vector> = selection
                .iter()
                .map(|&i| query.candidate_embeddings[i].clone())
                .collect();
            let scores = DiversityScores::compute(&query.query_embeddings, &selected, distance);
            per_query.push((idx, scores, elapsed));
        }
        let best_avg = per_query
            .iter()
            .map(|(_, s, _)| s.average)
            .fold(f64::NEG_INFINITY, f64::max);
        let best_min = per_query
            .iter()
            .map(|(_, s, _)| s.minimum)
            .fold(f64::NEG_INFINITY, f64::max);
        for (idx, scores, elapsed) in per_query {
            let outcome = &mut outcomes[idx];
            if (scores.average - best_avg).abs() < 1e-12 {
                outcome.best_average += 1;
            }
            if (scores.minimum - best_min).abs() < 1e-12 {
                outcome.best_min += 1;
            }
            outcome.mean_average += scores.average;
            outcome.mean_min += scores.minimum;
            outcome.avg_time_secs += elapsed;
        }
    }
    let n = queries.len() as f64;
    for outcome in &mut outcomes {
        outcome.mean_average /= n;
        outcome.mean_min /= n;
        outcome.avg_time_secs /= n;
    }
    outcomes
}

#[cfg(test)]
mod tests {
    use super::*;
    use dust_diversify::{CltDiversifier, DustDiversifier, RandomDiversifier};

    fn synthetic_query(seed: u64) -> QueryCandidates {
        // query near origin; candidates split between near-duplicates and a
        // diverse far shell
        let query_embeddings = vec![Vector::new(vec![0.0, 0.0]), Vector::new(vec![0.1, 0.0])];
        let mut candidate_embeddings = Vec::new();
        let mut sources = Vec::new();
        for i in 0..20 {
            let x = (i as f32 * 0.013 + seed as f32 * 0.01) % 0.5;
            candidate_embeddings.push(Vector::new(vec![x, 0.0]));
            sources.push(0);
        }
        for i in 0..20 {
            let angle = i as f32 * 0.31 + seed as f32;
            candidate_embeddings.push(Vector::new(vec![10.0 * angle.cos(), 10.0 * angle.sin()]));
            sources.push(1);
        }
        QueryCandidates {
            query_name: format!("q{seed}"),
            query_embeddings,
            candidate_embeddings,
            sources,
        }
    }

    #[test]
    fn dust_wins_against_random_on_synthetic_queries() {
        let queries: Vec<QueryCandidates> = (0..5).map(synthetic_query).collect();
        let dust = DustDiversifier::new();
        let random = RandomDiversifier::default();
        let clt = CltDiversifier::new();
        let outcomes = evaluate_diversifiers(
            &queries,
            &[
                ("DUST", &dust as &dyn Diversifier),
                ("Random", &random),
                ("CLT", &clt),
            ],
            6,
            Distance::Euclidean,
        );
        assert_eq!(outcomes.len(), 3);
        let dust_outcome = &outcomes[0];
        let random_outcome = &outcomes[1];
        assert!(dust_outcome.mean_min >= random_outcome.mean_min);
        assert!(dust_outcome.best_min >= random_outcome.best_min);
        // wins sum to at least the number of queries (ties may exceed it)
        let total_min_wins: usize = outcomes.iter().map(|o| o.best_min).sum();
        assert!(total_min_wins >= queries.len());
    }

    #[test]
    fn empty_query_set_returns_zeroed_outcomes() {
        let dust = DustDiversifier::new();
        let outcomes = evaluate_diversifiers(
            &[],
            &[("DUST", &dust as &dyn Diversifier)],
            5,
            Distance::Cosine,
        );
        assert_eq!(outcomes.len(), 1);
        assert_eq!(outcomes[0].best_average, 0);
        assert_eq!(outcomes[0].mean_average, 0.0);
    }
}
