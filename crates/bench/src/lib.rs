//! # dust-bench
//!
//! The experiment harness: shared setup, result formatting, and the
//! per-table / per-figure experiment drivers used by the `exp_*` binaries
//! (one binary per table and figure of the paper — see DESIGN.md §4 for the
//! index) and by the Criterion microbenches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod diversity_eval;
pub mod json;
pub mod pool;
pub mod report;
pub mod setup;

pub use diversity_eval::{evaluate_diversifiers, DiversifierOutcome, QueryCandidates};
pub use json::JsonValue;
pub use report::Report;
pub use setup::{build_candidates_for_query, scale, train_dust_model, Scale};
