//! Serving experiment: B independent one-shot pipeline runs vs **one**
//! resident [`LakeSession`] answering the same B queries through
//! `query_batch` — the embed-once / query-many claim, measured.
//!
//! The one-shot side is Algorithm 1 exactly as the paper runs it: every
//! query pays lake indexing (or the full-lake Starmie column-embedding
//! pass) and — in the fine-tuned configuration — model training. The
//! session side pays all of that once, at construction, **and the
//! construction cost is included in its measured time**, so the comparison
//! is end-to-end honest: at B = 1 the session can lose (it also pre-embeds
//! the whole lake into its shards); the break-even is where amortization
//! starts paying.
//!
//! Per-query results are asserted identical between the two paths (tuple
//! order included) before any number is reported — a speedup from a
//! behaviour change would be a bug, not a result.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_serving`
//! (`-- --write` additionally writes `BENCH_serve.json`).
//!
//! [`LakeSession`]: dust_core::LakeSession

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::scale;
use dust_core::{DustPipeline, LakeSession, PipelineConfig, SearchTechnique, TupleEmbedderKind};
use dust_embed::{FineTuneConfig, PretrainedModel};
use dust_table::Table;
use std::fmt::Write as _;
use std::time::Instant;

const BATCH_SIZES: [usize; 3] = [1, 8, 32];
const K: usize = 10;

fn configs() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        (
            "overlap+pretrained",
            PipelineConfig {
                search: SearchTechnique::Overlap,
                ..PipelineConfig::fast()
            },
        ),
        (
            "starmie+pretrained",
            PipelineConfig {
                search: SearchTechnique::Starmie,
                ..PipelineConfig::fast()
            },
        ),
        (
            "overlap+finetuned",
            PipelineConfig {
                search: SearchTechnique::Overlap,
                tables_per_query: 5,
                embedder: TupleEmbedderKind::FineTuned {
                    backbone: PretrainedModel::Roberta,
                    config: FineTuneConfig {
                        max_epochs: 10,
                        patience: 3,
                        ..FineTuneConfig::default()
                    },
                    training_pairs: 120,
                },
                ..PipelineConfig::default()
            },
        ),
    ]
}

fn main() {
    let write_json = std::env::args().any(|a| a == "--write");
    let lake = scale().santos_config().generate().lake;
    let query_names = lake.query_names();
    let queries: Vec<Table> = query_names
        .iter()
        .map(|n| lake.query(n).unwrap().clone())
        .collect();
    assert!(!queries.is_empty(), "benchmark lake has no queries");

    let mut json = String::from("{\n");
    let note = format!(
        "cargo run --release -p dust-bench --bin exp_serving: B one-shot DustPipeline::run \
         calls vs one LakeSession (construction INCLUDED in its time) + query_batch(B), SANTOS-small \
         benchmark lake ({} tables), k = {K}; per-query results asserted identical (incl. \
         tuple order) before timing is reported",
        lake.num_tables()
    );
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(
        json,
        "  \"environment\": {{\n    \"note\": \"{note}\",\n    \"cpus\": {cpus}\n  }},"
    );
    let _ = writeln!(json, "  \"serving\": {{");

    for (ci, (name, config)) in configs().iter().enumerate() {
        let mut report = Report::new(format!(
            "Serving: one-shot pipeline × B vs resident session ({name})"
        ))
        .headers(["B", "one-shot (s)", "session (s)", "speedup"]);
        let _ = writeln!(json, "    \"{name}\": {{");
        for (bi, &b) in BATCH_SIZES.iter().enumerate() {
            let batch: Vec<Table> = (0..b).map(|i| queries[i % queries.len()].clone()).collect();

            // ---- one-shot: a fresh pipeline per query ---------------------
            let start = Instant::now();
            let one_shot: Vec<_> = batch
                .iter()
                .map(|q| {
                    DustPipeline::new(config.clone())
                        .run(&lake, q, K)
                        .expect("pipeline run failed")
                })
                .collect();
            let one_shot_secs = start.elapsed().as_secs_f64();

            // ---- resident session (construction included) -----------------
            let lake_copy = lake.clone();
            let start = Instant::now();
            let session = LakeSession::new(lake_copy, config.clone());
            let results = session.query_batch(&batch, K);
            let session_secs = start.elapsed().as_secs_f64();

            for (i, (fresh, resident)) in one_shot.iter().zip(&results).enumerate() {
                let resident = resident.as_ref().expect("session query failed");
                assert_eq!(
                    fresh.tuples, resident.tuples,
                    "{name}, B = {b}, query {i}: one-shot and session selections diverged"
                );
                assert_eq!(fresh.retrieved_tables, resident.retrieved_tables);
            }

            let speedup = one_shot_secs / session_secs;
            report.row([
                b.to_string(),
                fmt3(one_shot_secs),
                fmt3(session_secs),
                format!("{speedup:.2}x"),
            ]);
            let _ = writeln!(
                json,
                "      \"B={b}\": {{ \"one_shot_secs\": {one_shot_secs:.3}, \
                 \"session_secs\": {session_secs:.3}, \"speedup\": {speedup:.2} }}{}",
                if bi + 1 < BATCH_SIZES.len() { "," } else { "" }
            );
        }
        report.note("session time includes session construction (embed-once cost)");
        report.note("per-query results verified identical to the one-shot pipeline");
        report.print();
        let _ = writeln!(
            json,
            "    }}{}",
            if ci + 1 < configs().len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }}\n}}");

    if write_json {
        std::fs::write("BENCH_serve.json", &json).expect("cannot write BENCH_serve.json");
        println!("\nwrote BENCH_serve.json");
    } else {
        println!("\n{json}");
    }
}
