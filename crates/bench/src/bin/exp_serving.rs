//! Serving experiment: B independent one-shot pipeline runs vs **one**
//! resident [`LakeSession`] answering the same B queries through
//! `query_batch` — the embed-once / query-many claim, measured.
//!
//! The one-shot side is Algorithm 1 exactly as the paper runs it: every
//! query pays lake indexing (or the full-lake Starmie column-embedding
//! pass) and — in the fine-tuned configuration — model training. The
//! session side pays all of that once, at construction, **and the
//! construction cost is included in its measured time**, so the comparison
//! is end-to-end honest: at B = 1 the session can lose (it also pre-embeds
//! the whole lake into its shards); the break-even is where amortization
//! starts paying.
//!
//! Per-query results are asserted identical between the two paths (tuple
//! order included) before any number is reported — a speedup from a
//! behaviour change would be a bug, not a result.
//!
//! The **mutation** scenario measures the incremental-mutation claim the
//! same way: a single-table `add_table` on a resident session (per-shard
//! delta) vs building a fresh session over the grown lake, and an
//! interleaved workload (queries between adds/drops) vs the
//! rebuild-per-mutation strategy. Results after every mutation are
//! asserted identical between the two strategies (that equivalence is the
//! contract `tests/session_mutation.rs` pins bit-for-bit).
//!
//! Run with `cargo run --release -p dust-bench --bin exp_serving`
//! (`-- --write` additionally writes `BENCH_serve.json`).
//!
//! [`LakeSession`]: dust_core::LakeSession

use dust_bench::pool::{self, PoolCounters, PoolOptions};
use dust_bench::report::{fmt3, Report};
use dust_bench::setup::scale;
use dust_core::{DustPipeline, LakeSession, PipelineConfig, SearchTechnique, TupleEmbedderKind};
use dust_embed::{FineTuneConfig, PretrainedModel};
use dust_table::Table;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as _};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::PoisonError;
use std::time::Instant;

/// Counting wrapper around the system allocator. The mutation scenario
/// reads the counters around each publish, so the structural-sharing claim
/// ("a mutation clones O(1 table + 1 shard), not the snapshot") is
/// reported as measured bytes, not asserted prose. Frees are not tracked:
/// the interesting number is how much a publish *writes*, not its net
/// footprint.
struct CountingAlloc;

static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
static ALLOC_CALLS: AtomicU64 = AtomicU64::new(0);

// SAFETY: every method delegates verbatim to std::alloc::System with the
// caller's own layout/pointer arguments; the only addition is relaxed
// atomic counter bumps, which allocate nothing and cannot unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: same layout is passed straight through to System.alloc.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: ptr/layout come from the paired alloc and are forwarded
    // unchanged to System.dealloc.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    // SAFETY: arguments are forwarded unchanged to System.realloc, which
    // upholds the GlobalAlloc contract for them.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        ALLOC_CALLS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// Bytes and allocation calls since process start.
fn alloc_counters() -> (u64, u64) {
    (
        ALLOC_BYTES.load(Ordering::Relaxed),
        ALLOC_CALLS.load(Ordering::Relaxed),
    )
}

/// Counter deltas since `before` (bytes, calls).
fn alloc_since(before: (u64, u64)) -> (u64, u64) {
    let now = alloc_counters();
    (now.0 - before.0, now.1 - before.1)
}

fn fmt_bytes(bytes: u64) -> String {
    if bytes >= 1 << 20 {
        format!("{:.1} MiB", bytes as f64 / (1u64 << 20) as f64)
    } else {
        format!("{:.1} KiB", bytes as f64 / 1024.0)
    }
}

const BATCH_SIZES: [usize; 3] = [1, 8, 32];
const K: usize = 10;

fn configs() -> Vec<(&'static str, PipelineConfig)> {
    vec![
        (
            "overlap+pretrained",
            PipelineConfig {
                search: SearchTechnique::Overlap,
                ..PipelineConfig::fast()
            },
        ),
        (
            "starmie+pretrained",
            PipelineConfig {
                search: SearchTechnique::Starmie,
                ..PipelineConfig::fast()
            },
        ),
        (
            "overlap+finetuned",
            PipelineConfig {
                search: SearchTechnique::Overlap,
                tables_per_query: 5,
                embedder: TupleEmbedderKind::FineTuned {
                    backbone: PretrainedModel::Roberta,
                    config: FineTuneConfig {
                        max_epochs: 10,
                        patience: 3,
                        ..FineTuneConfig::default()
                    },
                    training_pairs: 120,
                },
                ..PipelineConfig::default()
            },
        ),
    ]
}

fn main() {
    let write_json = std::env::args().any(|a| a == "--write");
    let lake = scale().santos_config().generate().lake;
    let query_names = lake.query_names();
    let queries: Vec<Table> = query_names
        .iter()
        .map(|n| lake.query(n).unwrap().clone())
        .collect();
    assert!(!queries.is_empty(), "benchmark lake has no queries");

    let mut json = String::from("{\n");
    let note = format!(
        "cargo run --release -p dust-bench --bin exp_serving: B one-shot DustPipeline::run \
         calls vs one LakeSession (construction INCLUDED in its time) + query_batch(B), SANTOS-small \
         benchmark lake ({} tables), k = {K}; per-query results asserted identical (incl. \
         tuple order) before timing is reported",
        lake.num_tables()
    );
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let _ = writeln!(
        json,
        "  \"environment\": {{\n    \"note\": \"{note}\",\n    \"cpus\": {cpus}\n  }},"
    );
    let _ = writeln!(json, "  \"serving\": {{");

    for (ci, (name, config)) in configs().iter().enumerate() {
        let mut report = Report::new(format!(
            "Serving: one-shot pipeline × B vs resident session ({name})"
        ))
        .headers(["B", "one-shot (s)", "session (s)", "speedup"]);
        let _ = writeln!(json, "    \"{name}\": {{");
        for (bi, &b) in BATCH_SIZES.iter().enumerate() {
            let batch: Vec<Table> = (0..b).map(|i| queries[i % queries.len()].clone()).collect();

            // ---- one-shot: a fresh pipeline per query ---------------------
            let start = Instant::now();
            let one_shot: Vec<_> = batch
                .iter()
                .map(|q| {
                    DustPipeline::new(config.clone())
                        .run(&lake, q, K)
                        .expect("pipeline run failed")
                })
                .collect();
            let one_shot_secs = start.elapsed().as_secs_f64();

            // ---- resident session (construction included) -----------------
            let lake_copy = lake.clone();
            let start = Instant::now();
            let session = LakeSession::new(lake_copy, config.clone());
            let results = session.query_batch(&batch, K);
            let session_secs = start.elapsed().as_secs_f64();

            for (i, (fresh, resident)) in one_shot.iter().zip(&results).enumerate() {
                let resident = resident.as_ref().expect("session query failed");
                assert_eq!(
                    fresh.tuples, resident.tuples,
                    "{name}, B = {b}, query {i}: one-shot and session selections diverged"
                );
                assert_eq!(fresh.retrieved_tables, resident.retrieved_tables);
            }

            let speedup = one_shot_secs / session_secs;
            report.row([
                b.to_string(),
                fmt3(one_shot_secs),
                fmt3(session_secs),
                format!("{speedup:.2}x"),
            ]);
            let _ = writeln!(
                json,
                "      \"B={b}\": {{ \"one_shot_secs\": {one_shot_secs:.3}, \
                 \"session_secs\": {session_secs:.3}, \"speedup\": {speedup:.2} }}{}",
                if bi + 1 < BATCH_SIZES.len() { "," } else { "" }
            );
        }
        report.note("session time includes session construction (embed-once cost)");
        report.note("per-query results verified identical to the one-shot pipeline");
        report.print();
        let _ = writeln!(
            json,
            "    }}{}",
            if ci + 1 < configs().len() { "," } else { "" }
        );
    }
    let _ = writeln!(json, "  }},");

    mutation_benchmark(&lake, &queries, &mut json);
    concurrency_benchmark(&lake, &queries, &mut json);
    connections_benchmark(&lake, &queries, &mut json);
    recovery_benchmark(&lake, &queries, &mut json);
    let _ = writeln!(json, "}}");

    if write_json {
        std::fs::write("BENCH_serve.json", &json).expect("cannot write BENCH_serve.json");
        println!("\nwrote BENCH_serve.json");
    } else {
        println!("\n{json}");
    }
}

/// The incremental-mutation scenario: per-shard `add_table`/`remove_table`
/// deltas on one resident session vs rebuilding a fresh session per
/// mutation. Uses the fast overlap+pretrained configuration (the mutation
/// machinery is identical across techniques; the fine-tuned configuration
/// retrains by design — its mutation cost *is* a rebuild, documented in
/// the session docs).
fn mutation_benchmark(full_lake: &dust_table::DataLake, queries: &[Table], json: &mut String) {
    const POOL: usize = 4;
    let config = PipelineConfig {
        search: SearchTechnique::Overlap,
        ..PipelineConfig::fast()
    };

    // Carve a pool of mutation-fodder tables out of the lake: the session
    // starts without them and the scenario adds/drops them.
    let mut base_lake = full_lake.clone();
    let names = base_lake.table_names();
    let pool: Vec<Table> = names
        .iter()
        .rev()
        .take(POOL)
        .map(|name| base_lake.remove_table(name).expect("pool table exists"))
        .collect();

    // ---- single-table add: delta vs fresh rebuild -------------------------
    // Allocation counters bracket each publish: the structural-sharing
    // refactor's claim is that the incremental path allocates the delta
    // (one table + one shard + touched postings), not a snapshot copy.
    let session = LakeSession::new(base_lake.clone(), config.clone());
    let counters = alloc_counters();
    let start = Instant::now();
    session.add_table(pool[0].clone()).expect("pool add");
    let incremental_secs = start.elapsed().as_secs_f64();
    let (incremental_bytes, incremental_allocs) = alloc_since(counters);

    let mut grown = base_lake.clone();
    grown.add_table(pool[0].clone()).expect("pool add");
    let counters = alloc_counters();
    let start = Instant::now();
    let rebuilt = LakeSession::new(grown, config.clone());
    let rebuild_secs = start.elapsed().as_secs_f64();
    let (rebuild_bytes, rebuild_allocs) = alloc_since(counters);

    // identical serving behaviour, asserted before any number is reported
    for query in queries.iter().take(4) {
        let a = session.query(query, K).expect("mutated session query");
        let b = rebuilt.query(query, K).expect("rebuilt session query");
        assert_eq!(a.tuples, b.tuples, "single-add: strategies diverged");
        assert_eq!(a.retrieved_tables, b.retrieved_tables);
    }
    let single_speedup = rebuild_secs / incremental_secs;

    // ---- interleaved: M add/drop mutations with queries between ----------
    // Each pool table is added then removed, with 2 queries after every
    // mutation — the slowly-changing-lake serving shape.
    let session = LakeSession::new(base_lake.clone(), config.clone());
    let mut incremental_results = Vec::new();
    let counters = alloc_counters();
    let start = Instant::now();
    for (mi, table) in pool.iter().enumerate() {
        session.add_table(table.clone()).expect("pool add");
        for qi in 0..2 {
            let q = &queries[(mi * 4 + qi) % queries.len()];
            incremental_results.push(session.query(q, K).expect("query"));
        }
        session.remove_table(table.name()).expect("pool remove");
        for qi in 2..4 {
            let q = &queries[(mi * 4 + qi) % queries.len()];
            incremental_results.push(session.query(q, K).expect("query"));
        }
    }
    let interleaved_incremental_secs = start.elapsed().as_secs_f64();
    let (interleaved_incremental_bytes, _) = alloc_since(counters);
    let mutations = pool.len() * 2;
    let query_count = incremental_results.len();

    let mut rebuild_results = Vec::new();
    let mut lake = base_lake.clone();
    let counters = alloc_counters();
    let start = Instant::now();
    for (mi, table) in pool.iter().enumerate() {
        lake.add_table(table.clone()).expect("pool add");
        let fresh = LakeSession::new(lake.clone(), config.clone());
        for qi in 0..2 {
            let q = &queries[(mi * 4 + qi) % queries.len()];
            rebuild_results.push(fresh.query(q, K).expect("query"));
        }
        lake.remove_table(table.name()).expect("pool remove");
        let fresh = LakeSession::new(lake.clone(), config.clone());
        for qi in 2..4 {
            let q = &queries[(mi * 4 + qi) % queries.len()];
            rebuild_results.push(fresh.query(q, K).expect("query"));
        }
    }
    let interleaved_rebuild_secs = start.elapsed().as_secs_f64();
    let (interleaved_rebuild_bytes, _) = alloc_since(counters);
    for (i, (a, b)) in incremental_results.iter().zip(&rebuild_results).enumerate() {
        assert_eq!(
            a.tuples, b.tuples,
            "interleaved query {i}: strategies diverged"
        );
        assert_eq!(a.retrieved_tables, b.retrieved_tables);
    }
    let interleaved_speedup = interleaved_rebuild_secs / interleaved_incremental_secs;

    let mut report = Report::new(
        "Lake mutation: incremental per-shard deltas vs rebuild-per-mutation (overlap+pretrained)",
    )
    .headers([
        "scenario",
        "incremental (s)",
        "rebuild (s)",
        "speedup",
        "incr alloc",
        "rebuild alloc",
    ]);
    report.row([
        "single-table add".to_string(),
        fmt3(incremental_secs),
        fmt3(rebuild_secs),
        format!("{single_speedup:.2}x"),
        format!("{} / {incremental_allocs}", fmt_bytes(incremental_bytes)),
        format!("{} / {rebuild_allocs}", fmt_bytes(rebuild_bytes)),
    ]);
    report.row([
        format!("{mutations} mutations + {query_count} queries"),
        fmt3(interleaved_incremental_secs),
        fmt3(interleaved_rebuild_secs),
        format!("{interleaved_speedup:.2}x"),
        fmt_bytes(interleaved_incremental_bytes),
        fmt_bytes(interleaved_rebuild_bytes),
    ]);
    report.note("alloc = bytes allocated / allocation calls inside the timed publish window");
    report.note("results asserted identical between strategies after every mutation");
    report.note("equivalence itself is pinned bit-for-bit by tests/session_mutation.rs");
    report.print();

    let _ = writeln!(json, "  \"mutation\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"incremental LakeSession::add_table/remove_table (per-shard deltas) vs \
         a fresh LakeSession::new per mutation, SANTOS-small, overlap+pretrained, k = {K}; \
         results asserted identical between strategies\","
    );
    let _ = writeln!(
        json,
        "    \"single_add\": {{ \"incremental_secs\": {incremental_secs:.4}, \
         \"rebuild_secs\": {rebuild_secs:.4}, \"speedup\": {single_speedup:.2}, \
         \"incremental_alloc_bytes\": {incremental_bytes}, \
         \"incremental_allocs\": {incremental_allocs}, \
         \"rebuild_alloc_bytes\": {rebuild_bytes}, \
         \"rebuild_allocs\": {rebuild_allocs} }},"
    );
    let _ = writeln!(
        json,
        "    \"interleaved\": {{ \"mutations\": {mutations}, \"queries\": {query_count}, \
         \"incremental_secs\": {interleaved_incremental_secs:.3}, \
         \"rebuild_secs\": {interleaved_rebuild_secs:.3}, \
         \"speedup\": {interleaved_speedup:.2}, \
         \"incremental_alloc_bytes\": {interleaved_incremental_bytes}, \
         \"rebuild_alloc_bytes\": {interleaved_rebuild_bytes} }}"
    );
    let _ = writeln!(json, "  }},");
}

/// The multi-client scenario: the generation-snapshot concurrency model,
/// measured. Pure-read first — the same queries through one pinned view on
/// one thread vs spread across parallel client threads (each pinning its
/// own view), results asserted bit-identical before timing is reported; the
/// snapshot model's read path must not tax the serial case. Then the
/// headline shape: readers querying *while* a mutator publishes new
/// generations — reads never block on mutations, so read throughput is
/// reported alongside the generation span the readers actually observed
/// (linearizability of those observations is pinned by
/// `tests/session_concurrency.rs`).
fn concurrency_benchmark(full_lake: &dust_table::DataLake, queries: &[Table], json: &mut String) {
    const READERS: usize = 4;
    const READS: usize = 16;
    let config = PipelineConfig {
        search: SearchTechnique::Overlap,
        ..PipelineConfig::fast()
    };
    let session = LakeSession::new(full_lake.clone(), config.clone());
    let batch: Vec<Table> = (0..READS)
        .map(|i| queries[i % queries.len()].clone())
        .collect();

    // ---- pure read: one thread, one pinned view ---------------------------
    let view = session.view();
    let start = Instant::now();
    let serial: Vec<_> = batch
        .iter()
        .map(|q| view.query(q, K).expect("serial query"))
        .collect();
    let serial_secs = start.elapsed().as_secs_f64();
    drop(view);

    // ---- pure read: the same queries across READERS client threads -------
    let collected = std::sync::Mutex::new(Vec::with_capacity(READS));
    let start = Instant::now();
    std::thread::scope(|scope| {
        for reader in 0..READERS {
            let (session, batch, collected) = (&session, &batch, &collected);
            scope.spawn(move || {
                for i in (reader..batch.len()).step_by(READERS) {
                    let view = session.view();
                    let result = view.query(&batch[i], K).expect("concurrent query");
                    // dust-lint: lock(bench-collect)
                    collected
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push((i, result));
                }
            });
        }
    });
    let concurrent_secs = start.elapsed().as_secs_f64();
    let mut concurrent = collected.into_inner().unwrap();
    concurrent.sort_by_key(|(i, _)| *i);
    for ((i, c), s) in concurrent.iter().zip(&serial) {
        assert_eq!(
            c.tuples, s.tuples,
            "pure-read query {i}: concurrent and serial selections diverged"
        );
        assert_eq!(c.retrieved_tables, s.retrieved_tables);
    }
    let overhead = concurrent_secs / serial_secs;

    // ---- interleaved: readers keep serving while a mutator publishes ------
    let mut base_lake = full_lake.clone();
    let names = base_lake.table_names();
    let pool: Vec<Table> = names
        .iter()
        .rev()
        .take(2)
        .map(|name| base_lake.remove_table(name).expect("pool table exists"))
        .collect();
    let session = LakeSession::new(base_lake, config.clone());
    let observed = std::sync::Mutex::new(Vec::with_capacity(READS));
    let start = Instant::now();
    std::thread::scope(|scope| {
        scope.spawn(|| {
            for table in &pool {
                session.add_table(table.clone()).expect("bench add");
                session.remove_table(table.name()).expect("bench remove");
            }
        });
        for reader in 0..READERS {
            let (session, batch, observed) = (&session, &batch, &observed);
            scope.spawn(move || {
                for i in (reader..batch.len()).step_by(READERS) {
                    let view = session.view();
                    view.query(&batch[i], K).expect("interleaved query");
                    // dust-lint: lock(bench-collect)
                    observed
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .push(view.generation());
                }
            });
        }
    });
    let interleaved_secs = start.elapsed().as_secs_f64();
    let observed = observed.into_inner().unwrap();
    let mutations = pool.len() * 2;
    let gen_lo = observed.iter().min().copied().unwrap_or(0);
    let gen_hi = observed.iter().max().copied().unwrap_or(0);
    let pure_rate = READS as f64 / concurrent_secs;
    let interleaved_rate = READS as f64 / interleaved_secs;

    let mut report = Report::new(
        "Concurrent serving: pinned-view readers, with and without interleaved mutations",
    )
    .headers(["scenario", "wall (s)", "reads/s", "detail"]);
    report.row([
        format!("{READS} reads, 1 thread"),
        fmt3(serial_secs),
        format!("{:.1}", READS as f64 / serial_secs),
        "serial baseline".to_string(),
    ]);
    report.row([
        format!("{READS} reads, {READERS} clients"),
        fmt3(concurrent_secs),
        format!("{pure_rate:.1}"),
        format!("{overhead:.2}x serial wall clock"),
    ]);
    report.row([
        format!("{READS} reads + {mutations} mutations"),
        fmt3(interleaved_secs),
        format!("{interleaved_rate:.1}"),
        format!("readers observed generations {gen_lo}..{gen_hi}"),
    ]);
    report.note("concurrent pure-read results asserted bit-identical to the serial view");
    report.note("read ≡ rebuild-at-observed-generation is pinned by tests/session_concurrency.rs");
    report.print();

    let _ = writeln!(json, "  \"concurrency\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"generation-snapshot serving: {READS} queries through one pinned view \
         on one thread vs {READERS} client threads (results asserted identical), then the same \
         reads while a mutator publishes {mutations} generations; reads never block on \
         mutations\","
    );
    let _ = writeln!(
        json,
        "    \"pure_read\": {{ \"reads\": {READS}, \"readers\": {READERS}, \
         \"serial_secs\": {serial_secs:.3}, \"concurrent_secs\": {concurrent_secs:.3}, \
         \"overhead_vs_serial\": {overhead:.2} }},"
    );
    let _ = writeln!(
        json,
        "    \"interleaved\": {{ \"reads\": {READS}, \"mutations\": {mutations}, \
         \"secs\": {interleaved_secs:.3}, \"reads_per_sec\": {interleaved_rate:.1}, \
         \"generations_observed\": [{gen_lo}, {gen_hi}] }}"
    );
    let _ = writeln!(json, "  }},");
}

/// The connection-multiplexing scenario: the serve worker pool under many
/// more clients than workers. A serial reference first computes every
/// response on one thread; then 64 concurrent TCP clients drive the same
/// requests through the bounded pool and every response line is asserted
/// **bit-identical** to the reference before any timing is reported.
/// Finally the same workload at 4 clients runs against both connection
/// models — the worker pool and the thread-per-connection shape it
/// replaced — so the multiplexing refactor's low-concurrency cost is a
/// measured number, not a hope.
fn connections_benchmark(full_lake: &dust_table::DataLake, queries: &[Table], json: &mut String) {
    const CLIENTS: usize = 64;
    const BASELINE_CLIENTS: usize = 4;
    const REQUESTS: usize = 64;
    const WORKERS: usize = 4;
    let config = PipelineConfig {
        search: SearchTechnique::Overlap,
        ..PipelineConfig::fast()
    };
    let session = LakeSession::new(full_lake.clone(), config);

    // One request line in ("query index"), one deterministic response
    // line out: index, selected tuples, retrieved tables, and the
    // diversity scores as raw bits — any divergence anywhere is visible.
    let handler = |line: &str| -> String {
        let i: usize = line.trim().parse().expect("request index");
        let view = session.view();
        let r = view
            .query(&queries[i % queries.len()], K)
            .expect("bench query");
        format!(
            "{i}|{:?}|{:?}|{:016x}|{:016x}",
            r.tuples,
            r.retrieved_tables,
            r.diversity.average.to_bits(),
            r.diversity.minimum.to_bits()
        )
    };

    // ---- serial reference: every response, one thread, no sockets --------
    let serial: Vec<String> = (0..REQUESTS).map(|i| handler(&i.to_string())).collect();

    // ---- worker pool under CLIENTS concurrent connections ----------------
    let pool_secs = drive_pool(&handler, &serial, CLIENTS, WORKERS);
    // ---- both models at the low-concurrency baseline ----------------------
    let pool_baseline_secs = drive_pool(&handler, &serial, BASELINE_CLIENTS, WORKERS);
    let thread_secs = drive_thread_per_conn(&handler, &serial, BASELINE_CLIENTS);
    let pool_vs_thread = thread_secs / pool_baseline_secs;

    let mut report = Report::new(format!(
        "Connection multiplexing: {WORKERS}-worker pool vs thread-per-connection (overlap+pretrained)"
    ))
    .headers(["model", "clients", "requests", "wall (s)", "lines/s"]);
    report.row([
        "worker pool".to_string(),
        CLIENTS.to_string(),
        REQUESTS.to_string(),
        fmt3(pool_secs),
        format!("{:.1}", REQUESTS as f64 / pool_secs),
    ]);
    report.row([
        "worker pool".to_string(),
        BASELINE_CLIENTS.to_string(),
        REQUESTS.to_string(),
        fmt3(pool_baseline_secs),
        format!("{:.1}", REQUESTS as f64 / pool_baseline_secs),
    ]);
    report.row([
        "thread-per-connection".to_string(),
        BASELINE_CLIENTS.to_string(),
        REQUESTS.to_string(),
        fmt3(thread_secs),
        format!("{:.1}", REQUESTS as f64 / thread_secs),
    ]);
    report.note("every response line asserted bit-identical to the serial reference before timing");
    report.note(format!(
        "pool wall clock at {BASELINE_CLIENTS} clients is {pool_vs_thread:.2}x thread-per-connection (>1 = pool faster)"
    ));
    report.print();

    let _ = writeln!(json, "  \"connections\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"serve TCP models over loopback, one query request per line: \
         {CLIENTS} concurrent clients multiplexed by a {WORKERS}-worker bounded pool, then the \
         same {REQUESTS} requests at {BASELINE_CLIENTS} clients under both the pool and the \
         thread-per-connection model it replaced; every response asserted bit-identical to a \
         serial single-thread reference before timing\","
    );
    let _ = writeln!(
        json,
        "    \"pool\": {{ \"clients\": {CLIENTS}, \"workers\": {WORKERS}, \
         \"requests\": {REQUESTS}, \"secs\": {pool_secs:.3}, \
         \"lines_per_sec\": {:.1} }},",
        REQUESTS as f64 / pool_secs
    );
    let _ = writeln!(
        json,
        "    \"baseline\": {{ \"clients\": {BASELINE_CLIENTS}, \"requests\": {REQUESTS}, \
         \"pool_secs\": {pool_baseline_secs:.3}, \"thread_per_connection_secs\": {thread_secs:.3}, \
         \"pool_speedup_vs_thread\": {pool_vs_thread:.2} }}"
    );
    let _ = writeln!(json, "  }},");
}

/// Drive `REQUESTS` request lines through a live worker pool from
/// `clients` concurrent blocking sockets, asserting every response
/// against the serial reference. Returns the client-side wall clock.
fn drive_pool(
    handler: &(dyn Fn(&str) -> String + Sync),
    serial: &[String],
    clients: usize,
    workers: usize,
) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let counters = PoolCounters::default();
    let shutdown = AtomicBool::new(false);
    let options = PoolOptions {
        workers,
        max_connections: clients + 8,
        ..PoolOptions::default()
    };
    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        scope.spawn(|| {
            pool::run(&listener, &options, &counters, &shutdown, handler).expect("pool run");
        });
        let start = Instant::now();
        std::thread::scope(|inner| {
            for c in 0..clients {
                inner.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for i in (c..serial.len()).step_by(clients) {
                        writeln!(stream, "{i}").expect("send");
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("recv");
                        assert_eq!(
                            line.trim_end(),
                            serial[i],
                            "pool response {i} diverged from the serial reference"
                        );
                    }
                });
            }
        });
        elapsed = start.elapsed().as_secs_f64();
        shutdown.store(true, Ordering::SeqCst);
    });
    assert_eq!(
        counters.served_lines.load(Ordering::Relaxed),
        serial.len() as u64,
        "pool served a different number of lines than were sent"
    );
    elapsed
}

/// The model the pool replaced, reconstructed for the head-to-head: one
/// OS thread per accepted connection, blocking reads. Returns the
/// client-side wall clock for the same asserted workload.
fn drive_thread_per_conn(
    handler: &(dyn Fn(&str) -> String + Sync),
    serial: &[String],
    clients: usize,
) -> f64 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let mut elapsed = 0.0;
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for _ in 0..clients {
                let (stream, _) = listener.accept().expect("accept");
                scope.spawn(move || {
                    let mut writer = stream.try_clone().expect("clone");
                    let mut reader = BufReader::new(stream);
                    let mut line = String::new();
                    while reader.read_line(&mut line).unwrap_or(0) > 0 {
                        let response = handler(line.trim());
                        if writeln!(writer, "{response}").is_err() {
                            break;
                        }
                        line.clear();
                    }
                });
            }
        });
        let start = Instant::now();
        std::thread::scope(|inner| {
            for c in 0..clients {
                inner.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect");
                    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                    for i in (c..serial.len()).step_by(clients) {
                        writeln!(stream, "{i}").expect("send");
                        let mut line = String::new();
                        reader.read_line(&mut line).expect("recv");
                        assert_eq!(
                            line.trim_end(),
                            serial[i],
                            "thread-per-connection response {i} diverged"
                        );
                    }
                });
            }
        });
        elapsed = start.elapsed().as_secs_f64();
    });
    elapsed
}

/// The durability scenario: restart cost by strategy. A server that dies
/// pays one of three prices to come back: rebuild the session from the
/// lake (re-embed, and for the fine-tuned embedder retrain), load a
/// snapshot (`SnapshotStore::open`), or load a snapshot and replay a WAL
/// of mutations that happened after it. Results are asserted identical
/// across all three before any timing is reported.
///
/// Both embedder kinds are measured because they tell different stories:
/// the pretrained hash-embedder rebuilds almost for free, so the snapshot
/// mostly buys crash-consistent mutations; the fine-tuned configuration —
/// the paper's actual DUST shape — pays model training on every cold
/// start, which the snapshot skips entirely (the trained weights are
/// persisted). WAL replay on a fine-tuned session retrains per record by
/// design (the documented mutation fallback), which is exactly why
/// checkpointing exists.
fn recovery_benchmark(full_lake: &dust_table::DataLake, queries: &[Table], json: &mut String) {
    const WAL_MUTATIONS: usize = 3;
    let configs = configs();
    let picks = [0usize, 2]; // overlap+pretrained, overlap+finetuned
    let dir = std::env::temp_dir().join(format!("dust-exp-recovery-{}", std::process::id()));

    let mut report = Report::new(
        "Recovery: cold rebuild vs snapshot load vs snapshot + WAL replay (SANTOS-small)",
    )
    .headers(["config", "strategy", "restart (s)", "speedup vs cold"]);
    let _ = writeln!(json, "  \"recovery\": {{");
    let _ = writeln!(
        json,
        "    \"note\": \"restart cost on SANTOS-small: LakeSession::new from the lake vs \
         SnapshotStore::open (snapshot only) vs SnapshotStore::open (snapshot + \
         {WAL_MUTATIONS} WAL records); results asserted identical across strategies first; \
         the fine-tuned snapshot persists the trained model, so loading skips training\","
    );

    for (pi, &ci) in picks.iter().enumerate() {
        let (name, config) = &configs[ci];
        let _ = std::fs::remove_dir_all(&dir);

        // ---- cold rebuild: restart without persistence --------------------
        let lake = full_lake.clone();
        let start = Instant::now();
        let session = LakeSession::new(lake, config.clone());
        let cold_secs = start.elapsed().as_secs_f64();

        // ---- snapshot load: no WAL records --------------------------------
        dust_core::SnapshotStore::create(&dir, &session).expect("snapshot create");
        let start = Instant::now();
        let (_store, loaded, rep) = dust_core::SnapshotStore::open(&dir).expect("snapshot open");
        let load_secs = start.elapsed().as_secs_f64();
        assert_eq!(rep.replayed, 0, "fresh snapshot should have an empty WAL");
        for (i, query) in queries.iter().take(4).enumerate() {
            let a = session.query(query, K).expect("cold query");
            let b = loaded.query(query, K).expect("loaded query");
            assert_eq!(
                a.tuples, b.tuples,
                "{name}, query {i}: snapshot load diverged"
            );
            assert_eq!(a.retrieved_tables, b.retrieved_tables);
        }
        drop(loaded);

        // ---- snapshot + WAL replay: mutations logged after the save -------
        let mut store = dust_core::SnapshotStore::create(&dir, &session).expect("snapshot create");
        let victims = session.lake().table_names();
        for victim in victims.iter().rev().take(WAL_MUTATIONS) {
            session.remove_table(victim).expect("bench remove");
            store
                .log_remove_table(victim, session.generation())
                .expect("bench log");
        }
        drop(store);
        let start = Instant::now();
        let (_store, replayed, rep) = dust_core::SnapshotStore::open(&dir).expect("replay open");
        let replay_secs = start.elapsed().as_secs_f64();
        assert_eq!(rep.replayed, WAL_MUTATIONS, "replay count");
        for (i, query) in queries.iter().take(4).enumerate() {
            let a = session.query(query, K).expect("mutated query");
            let b = replayed.query(query, K).expect("replayed query");
            assert_eq!(a.tuples, b.tuples, "{name}, query {i}: WAL replay diverged");
            assert_eq!(a.retrieved_tables, b.retrieved_tables);
        }
        let _ = std::fs::remove_dir_all(&dir);

        let load_speedup = cold_secs / load_secs;
        let replay_speedup = cold_secs / replay_secs;
        report.row([
            name.to_string(),
            "cold rebuild".to_string(),
            fmt3(cold_secs),
            "1.00x".to_string(),
        ]);
        report.row([
            name.to_string(),
            "snapshot load".to_string(),
            fmt3(load_secs),
            format!("{load_speedup:.2}x"),
        ]);
        report.row([
            name.to_string(),
            format!("snapshot + {WAL_MUTATIONS}-record WAL replay"),
            fmt3(replay_secs),
            format!("{replay_speedup:.2}x"),
        ]);
        let _ = writeln!(json, "    \"{name}\": {{");
        let _ = writeln!(
            json,
            "      \"cold_rebuild_secs\": {cold_secs:.4},\n      \
             \"snapshot_load_secs\": {load_secs:.4},\n      \
             \"snapshot_replay_secs\": {replay_secs:.4},\n      \
             \"wal_records_replayed\": {WAL_MUTATIONS},\n      \
             \"load_speedup\": {load_speedup:.2},\n      \
             \"replay_speedup\": {replay_speedup:.2}"
        );
        let _ = writeln!(
            json,
            "    }}{}",
            if pi + 1 < picks.len() { "," } else { "" }
        );
    }
    report.note("results asserted identical across all three strategies before timing");
    report.note("bit-exact recovery is pinned by tests/session_recovery.rs");
    report.print();
    let _ = writeln!(json, "  }}");
}
