//! Figure 10 / Appendix A.2.1 — robustness of DUST embeddings to
//! column-order shuffling.
//!
//! For every tuple of the fine-tuning test split, embed the original tuple
//! and a randomly column-permuted copy with the trained DUST model and
//! report the distribution of cosine similarities between the two
//! embeddings (the paper reports mean 0.98, standard deviation 0.04).
//!
//! Run with `cargo run --release -p dust-bench --bin exp_fig10`.

#![forbid(unsafe_code)]

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::{scale, train_dust_model};
use dust_embed::{cosine_similarity, PretrainedModel};
use dust_table::Tuple;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = scale();
    let lake = scale.tus_sampled_config().generate().lake;
    let (model, dataset) =
        train_dust_model(&lake, PretrainedModel::Roberta, scale.finetune_pairs());

    // Collect the distinct tuples appearing in the test split.
    let mut tuples: Vec<Tuple> = Vec::new();
    let mut seen = std::collections::HashSet::new();
    for pair in &dataset.test {
        for tuple in [&pair.a, &pair.b] {
            let key = format!("{}:{}", tuple.source_table(), tuple.source_row());
            if seen.insert(key) {
                tuples.push(tuple.clone());
            }
        }
    }

    let mut rng = StdRng::seed_from_u64(0x510);
    let mut similarities = Vec::with_capacity(tuples.len());
    for tuple in &tuples {
        let mut order: Vec<usize> = (0..tuple.arity()).collect();
        for i in (1..order.len()).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let shuffled = tuple.permuted(&order);
        let original_embedding = model.embed_tuple(tuple);
        let shuffled_embedding = model.embed_tuple(&shuffled);
        similarities.push(cosine_similarity(&original_embedding, &shuffled_embedding));
    }

    let n = similarities.len().max(1) as f64;
    let mean = similarities.iter().sum::<f64>() / n;
    let std_dev = (similarities.iter().map(|s| (s - mean).powi(2)).sum::<f64>() / n).sqrt();

    let mut report = Report::new(
        "Figure 10: cosine similarity between original and column-shuffled tuple embeddings",
    )
    .headers(["Statistic", "Value"]);
    report.row(["Tuples".to_string(), similarities.len().to_string()]);
    report.row(["Mean similarity".to_string(), fmt3(mean)]);
    report.row(["Std deviation".to_string(), fmt3(std_dev)]);
    report.row([
        "Min similarity".to_string(),
        fmt3(similarities.iter().copied().fold(f64::INFINITY, f64::min)),
    ]);

    // coarse histogram over [0, 1]
    let mut histogram = [0usize; 10];
    for s in &similarities {
        let bin = ((s.clamp(0.0, 1.0)) * 10.0).min(9.0) as usize;
        histogram[bin] += 1;
    }
    for (i, count) in histogram.iter().enumerate() {
        report.row([
            format!("[{:.1}, {:.1})", i as f64 / 10.0, (i + 1) as f64 / 10.0),
            count.to_string(),
        ]);
    }
    report.note(
        "paper: mean 0.98, standard deviation 0.04 — embeddings are insensitive to column order",
    );
    report.print();
}
