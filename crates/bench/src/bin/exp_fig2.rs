//! Figure 2 — table vs tuple embedding distributions.
//!
//! The paper motivates tuple-level diversification by showing (via PCA of
//! 768-dimensional embeddings) that unionable *tables* occupy a small region
//! of the embedding space while unionable *tuples* are spread widely. This
//! experiment reproduces the figure's data: it embeds the tables and tuples
//! of five unionable sets, projects them to 2-D with PCA, and reports the
//! within-set and between-set spreads for both granularities.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_fig2`.

#![forbid(unsafe_code)]

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::{scale, train_dust_model};
use dust_embed::{Distance, Pca, PretrainedModel, Vector};
use dust_search::StarmieSearch;
use dust_table::DataLake;

fn main() {
    let scale = scale();
    let lake = scale.santos_config().generate().lake;
    let (model, _) = train_dust_model(&lake, PretrainedModel::Roberta, scale.finetune_pairs());

    // Pick five unionable sets (domains); each set = the tables of one domain.
    let domains: Vec<String> = {
        let mut names: Vec<String> = lake
            .table_names()
            .iter()
            .map(|n| n.split("_dl_").next().unwrap_or(n).to_string())
            .collect();
        names.sort();
        names.dedup();
        names.into_iter().take(5).collect()
    };

    // ---- table embeddings (Starmie-style table vectors) -----------------
    let starmie = StarmieSearch::new();
    let mut table_embeddings: Vec<Vector> = Vec::new();
    let mut table_sets: Vec<usize> = Vec::new();
    for (set_id, domain) in domains.iter().enumerate() {
        for table in tables_of_domain(&lake, domain) {
            let columns = starmie.contextual_column_embeddings(table);
            if let Some(mean) = Vector::mean(columns.iter()) {
                table_embeddings.push(mean.normalized());
                table_sets.push(set_id);
            }
        }
    }

    // ---- tuple embeddings (DUST model), sampled per domain --------------
    let mut tuple_embeddings: Vec<Vector> = Vec::new();
    let mut tuple_sets: Vec<usize> = Vec::new();
    let tuples_per_domain = 60usize;
    for (set_id, domain) in domains.iter().enumerate() {
        let mut taken = 0usize;
        for table in tables_of_domain(&lake, domain) {
            for tuple in table.tuples() {
                if taken >= tuples_per_domain {
                    break;
                }
                tuple_embeddings.push(model.embed_tuple(&tuple));
                tuple_sets.push(set_id);
                taken += 1;
            }
        }
    }

    let mut report = Report::new("Figure 2: table vs tuple embedding spread (PCA)").headers([
        "Granularity",
        "Points",
        "PC1+PC2 variance",
        "Within-set spread",
        "Between-set spread",
        "Spread ratio (within/between)",
    ]);
    for (label, embeddings, sets) in [
        ("Tables", &table_embeddings, &table_sets),
        ("Tuples", &tuple_embeddings, &tuple_sets),
    ] {
        let (variance, within, between) = project_and_measure(embeddings, sets);
        report.row([
            label.to_string(),
            embeddings.len().to_string(),
            fmt3(variance),
            fmt3(within),
            fmt3(between),
            fmt3(if between > 0.0 { within / between } else { 0.0 }),
        ]);
    }
    report.note(
        "the paper's observation: tuples are spread much more widely than tables \
         (higher within-set spread), so diversifying tuples is worthwhile while \
         diversifying tables has limited effect",
    );
    report.print();
}

fn tables_of_domain<'a>(lake: &'a DataLake, domain: &str) -> Vec<&'a dust_table::Table> {
    lake.tables()
        .filter(|t| t.name().starts_with(&format!("{domain}_dl_")))
        .collect()
}

/// PCA-project embeddings to 2-D and measure average within-set and
/// between-set pairwise distances in the projected space.
fn project_and_measure(embeddings: &[Vector], sets: &[usize]) -> (f64, f64, f64) {
    if embeddings.len() < 2 {
        return (0.0, 0.0, 0.0);
    }
    let pca = Pca::fit(embeddings, 2).expect("non-empty embeddings");
    let projected = pca.transform_all(embeddings);
    let variance: f64 = pca.explained_variance().iter().sum();
    let dist = |a: &[f64], b: &[f64]| -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    let mut within = (0.0, 0usize);
    let mut between = (0.0, 0usize);
    for i in 0..projected.len() {
        for j in (i + 1)..projected.len() {
            let d = dist(&projected[i], &projected[j]);
            if sets[i] == sets[j] {
                within.0 += d;
                within.1 += 1;
            } else {
                between.0 += d;
                between.1 += 1;
            }
        }
    }
    let _ = Distance::Euclidean; // distances in projected space are Euclidean by construction
    (
        variance,
        within.0 / within.1.max(1) as f64,
        between.0 / between.1.max(1) as f64,
    )
}
