//! Figure 6 — unionable-tuple representation accuracy.
//!
//! Builds the TUS fine-tuning benchmark (balanced tuple pairs with
//! unionability labels, split 70:15:15 without leakage), then reports the
//! threshold-classification accuracy (cosine distance < 0.7 ⇒ unionable) of
//! the pre-trained baselines (BERT, RoBERTa, sBERT, the entity-matching
//! model Ditto) and the two fine-tuned DUST variants (DUST (BERT) and
//! DUST (RoBERTa)).
//!
//! Run with `cargo run --release -p dust-bench --bin exp_fig6`.

#![forbid(unsafe_code)]

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::scale;
use dust_datagen::{build_finetune_dataset, FineTuneDataset, FineTuneDatasetConfig};
use dust_embed::{
    classification_accuracy, DustModel, FineTuneConfig, PretrainedModel, TupleEncoder,
};

const THRESHOLD: f64 = 0.7;

fn main() {
    let scale = scale();
    // The fine-tuning benchmark is built from a TUS-like lake (Sec. 6.1.1).
    let lake = scale.tus_sampled_config().generate().lake;
    let dataset = build_finetune_dataset(
        &lake,
        &FineTuneDatasetConfig {
            total_pairs: scale.finetune_pairs(),
            ..FineTuneDatasetConfig::default()
        },
    );
    let train = FineTuneDataset::triples(&dataset.train);
    let validation = FineTuneDataset::triples(&dataset.validation);
    let test = FineTuneDataset::triples(&dataset.test);
    println!(
        "fine-tuning pairs: {} train / {} validation / {} test (balanced)",
        train.len(),
        validation.len(),
        test.len()
    );

    let mut report = Report::new("Figure 6: unionable tuple representation accuracy")
        .headers(["Model", "Accuracy"]);

    // pre-trained baselines
    for model in PretrainedModel::tuple_models() {
        let encoder = TupleEncoder::new(model);
        let accuracy = classification_accuracy(|t| encoder.embed_tuple(t), &test, THRESHOLD);
        report.row([model.name().to_string(), fmt3(accuracy)]);
    }

    // fine-tuned DUST variants
    for backbone in [PretrainedModel::Bert, PretrainedModel::Roberta] {
        let mut model = DustModel::new(
            backbone,
            FineTuneConfig {
                hidden_dim: 96,
                output_dim: 64,
                max_epochs: 80,
                patience: 12,
                ..FineTuneConfig::default()
            },
        );
        let training_report = model.train(&train, &validation);
        let accuracy = model.classification_accuracy(&test, THRESHOLD);
        report.row([format!("DUST ({})", backbone.name()), fmt3(accuracy)]);
        println!(
            "DUST ({}) trained for {} epochs (best validation loss {:.3})",
            backbone.name(),
            training_report.epochs_run,
            training_report.best_val_loss
        );
    }
    report.note("paper: BERT 0.50, RoBERTa 0.50, sBERT 0.56, Ditto 0.66, DUST (BERT) 0.84, DUST (RoBERTa) 0.85");
    report.print();
}
