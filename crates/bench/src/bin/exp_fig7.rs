//! Figure 7 — diversification runtime scaling.
//!
//! (a) Runtime vs the number of input unionable tuples `s` (k fixed).
//! (b) Runtime vs the number of output tuples `k` (s fixed).
//!
//! GMC's runtime grows quadratically with `s`; DUST grows roughly linearly
//! with a small slope and is essentially flat in `k`; CLT behaves like DUST
//! without the re-ranking step.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_fig7`
//! (use `DUST_SCALE=full` for the paper-scale sweep up to 6 000 tuples).

#![forbid(unsafe_code)]

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::{scale, Scale};
use dust_diversify::{
    CltDiversifier, DiversificationInput, Diversifier, DustConfig, DustDiversifier, GmcDiversifier,
};
use dust_embed::{Distance, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let scale = scale();
    let (s_values, k_fixed, s_fixed, k_values): (Vec<usize>, usize, usize, Vec<usize>) = match scale
    {
        Scale::Small => (vec![250, 500, 1000, 1500], 50, 1500, vec![25, 50, 100, 150]),
        Scale::Full => (
            vec![1000, 2000, 3000, 4000, 5000, 6000],
            100,
            5000,
            vec![100, 200, 300, 400, 500],
        ),
    };

    let dim = 64;
    let max_s = *s_values.iter().max().unwrap_or(&1000);
    let (query, candidates) = synthetic_embeddings(20, max_s.max(s_fixed), dim);

    let gmc = GmcDiversifier::new();
    let clt = CltDiversifier::new();
    // DUST's pruning budget (Sec. 5.1) is part of the algorithm: beyond it
    // the clustering cost stops growing with s, which is what makes DUST's
    // curve flat while GMC keeps growing quadratically.
    let prune_budget = match scale {
        Scale::Small => 500,
        Scale::Full => 2500,
    };
    let dust = DustDiversifier::with_config(DustConfig {
        prune_to: Some(prune_budget),
        ..DustConfig::default()
    });
    let algorithms: Vec<(&str, &dyn Diversifier)> =
        vec![("GMC", &gmc), ("CLT", &clt), ("DUST", &dust)];

    // ---- (a) runtime vs s ------------------------------------------------
    let mut report_a =
        Report::new("Figure 7a: runtime (seconds) vs number of input unionable tuples (s)")
            .headers(["s", "GMC", "CLT", "DUST"]);
    for &s in &s_values {
        let slice = &candidates[..s];
        let mut cells = vec![s.to_string()];
        for (_, algorithm) in &algorithms {
            let input = DiversificationInput::new(&query, slice, Distance::Cosine);
            let start = Instant::now();
            let selection = algorithm.select(&input, k_fixed);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(selection.len(), k_fixed.min(s));
            cells.push(fmt3(elapsed));
        }
        report_a.row(cells);
    }
    report_a.note("paper: GMC grows quadratically in s; DUST is linear with a small slope");
    report_a.print();

    // ---- (b) runtime vs k ------------------------------------------------
    let slice = &candidates[..s_fixed.min(candidates.len())];
    let mut report_b = Report::new(format!(
        "Figure 7b: runtime (seconds) vs number of output tuples (k), s = {s_fixed}"
    ))
    .headers(["k", "GMC", "CLT", "DUST"]);
    for &k in &k_values {
        let mut cells = vec![k.to_string()];
        for (_, algorithm) in &algorithms {
            let input = DiversificationInput::new(&query, slice, Distance::Cosine);
            let start = Instant::now();
            let selection = algorithm.select(&input, k);
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(selection.len(), k.min(slice.len()));
            cells.push(fmt3(elapsed));
        }
        report_b.row(cells);
    }
    report_b.note("paper: DUST's runtime is essentially unaffected by k");
    report_b.print();
}

/// Synthetic, clustered tuple embeddings (unit-norm vectors around a few
/// dozen topic centroids) standing in for the unionable tuples of one query.
fn synthetic_embeddings(
    num_query: usize,
    num_candidates: usize,
    dim: usize,
) -> (Vec<Vector>, Vec<Vector>) {
    let mut rng = StdRng::seed_from_u64(0xF16);
    let num_centroids = 24;
    let centroids: Vec<Vec<f32>> = (0..num_centroids)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let point = |spread: f32, rng: &mut StdRng| -> Vector {
        let c = &centroids[rng.gen_range(0..num_centroids)];
        let v: Vec<f32> = c
            .iter()
            .map(|x| x + rng.gen_range(-spread..spread))
            .collect();
        Vector::new(v).normalized()
    };
    let query: Vec<Vector> = (0..num_query).map(|_| point(0.1, &mut rng)).collect();
    let candidates: Vec<Vector> = (0..num_candidates).map(|_| point(0.4, &mut rng)).collect();
    (query, candidates)
}
