//! Table 1 — column-alignment effectiveness.
//!
//! For every benchmark (TUS-Sampled, SANTOS, UGEN-V1) and every column
//! representation (cell-level FastText / GloVe / BERT / RoBERTa / sBERT,
//! column-level BERT / RoBERTa / sBERT, and Starmie embeddings with
//! bipartite vs holistic matching), align the columns of each query's
//! ground-truth unionable tables to the query columns and report precision,
//! recall, and F1 against the generator's ground truth.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_table1`.

#![forbid(unsafe_code)]

use dust_align::{
    alignment_items, bipartite_alignment, ground_truth_from_map, precision_recall_f1, Alignment,
    ColumnRef, HolisticAligner,
};
use dust_bench::report::{fmt3, Report};
use dust_bench::setup::scale;
use dust_datagen::{BenchmarkConfig, Domain};
use dust_embed::{ColumnEncoder, ColumnSerialization, PretrainedModel};
use dust_search::StarmieSearch;
use dust_table::{DataLake, Table};
use std::collections::BTreeSet;

/// (technique, matcher, per-benchmark (precision, recall, f1)).
type MethodRow = (String, String, Vec<(f64, f64, f64)>);

fn main() {
    let scale = scale();
    let benchmarks: Vec<(&str, BenchmarkConfig)> = vec![
        ("TUS-Sampled", scale.tus_sampled_config()),
        ("SANTOS", scale.santos_config()),
        ("UGEN-V1", scale.ugen_config()),
    ];

    let mut report = Report::new("Table 1: column alignment effectiveness (P / R / F1)").headers([
        "Serialization",
        "Model",
        "TUS-Sampled",
        "SANTOS",
        "UGEN-V1",
    ]);

    // method name -> per-benchmark (P, R, F1)
    let mut method_rows: Vec<MethodRow> = Vec::new();

    for (_bench_name, config) in &benchmarks {
        let lake = config.generate().lake;
        let mut col = 0usize;
        // cell-level models
        for model in PretrainedModel::alignment_models() {
            let scores = evaluate_encoder(&lake, model, ColumnSerialization::CellLevel);
            push_scores(&mut method_rows, "Cell-level", model.name(), col, scores);
        }
        // column-level language models
        for model in [
            PretrainedModel::Bert,
            PretrainedModel::Roberta,
            PretrainedModel::SBert,
        ] {
            let scores = evaluate_encoder(&lake, model, ColumnSerialization::ColumnLevel);
            push_scores(&mut method_rows, "Column-level", model.name(), col, scores);
        }
        // Starmie embeddings: bipartite and holistic matching
        let starmie_b = evaluate_starmie(&lake, false);
        push_scores(
            &mut method_rows,
            "Table context",
            "Starmie (B)",
            col,
            starmie_b,
        );
        let starmie_h = evaluate_starmie(&lake, true);
        push_scores(
            &mut method_rows,
            "Table context",
            "Starmie (H)",
            col,
            starmie_h,
        );
        col += 1;
        let _ = col;
    }

    for (serialization, model, scores) in &method_rows {
        let cells: Vec<String> = scores
            .iter()
            .map(|(p, r, f1)| format!("{} / {} / {}", fmt3(*p), fmt3(*r), fmt3(*f1)))
            .collect();
        let mut row = vec![serialization.clone(), model.clone()];
        row.extend(cells);
        report.row(row);
    }
    report.note("paper's best configuration is Column-level RoBERTa (F1 0.74 / 0.76 / 0.58)");
    report.print();
}

/// Accumulate scores into the per-method rows (methods appear once; each
/// benchmark appends one (P, R, F1) triple).
fn push_scores(
    rows: &mut Vec<MethodRow>,
    serialization: &str,
    model: &str,
    _benchmark_idx: usize,
    scores: (f64, f64, f64),
) {
    if let Some(entry) = rows
        .iter_mut()
        .find(|(s, m, _)| s == serialization && m == model)
    {
        entry.2.push(scores);
    } else {
        rows.push((serialization.to_string(), model.to_string(), vec![scores]));
    }
}

/// Average alignment P/R/F1 over every query of a lake for a hashing-encoder
/// configuration.
fn evaluate_encoder(
    lake: &DataLake,
    model: PretrainedModel,
    serialization: ColumnSerialization,
) -> (f64, f64, f64) {
    let aligner = HolisticAligner::with_encoder(ColumnEncoder::new(model, serialization));
    evaluate_alignment_method(lake, |query, tables| aligner.align(query, tables))
}

/// Average alignment P/R/F1 using Starmie's contextualized column
/// embeddings, matched either pairwise (bipartite) or holistically.
fn evaluate_starmie(lake: &DataLake, holistic: bool) -> (f64, f64, f64) {
    let starmie = StarmieSearch::new();
    evaluate_alignment_method(lake, |query, tables| {
        let embed = |t: &Table| starmie.contextual_column_embeddings(t);
        if holistic {
            HolisticAligner::new().align_with(query, tables, embed)
        } else {
            bipartite_alignment(query, tables, embed)
        }
    })
}

fn evaluate_alignment_method<F>(lake: &DataLake, align: F) -> (f64, f64, f64)
where
    F: Fn(&Table, &[&Table]) -> Alignment,
{
    let mut totals = (0.0, 0.0, 0.0);
    let mut count = 0usize;
    for query_name in lake.query_names() {
        let query = lake.query(&query_name).expect("query exists");
        let unionable = lake.ground_truth().unionable_with(&query_name);
        let tables: Vec<&Table> = unionable
            .iter()
            .filter_map(|t| lake.table(t).ok())
            .collect();
        if tables.is_empty() {
            continue;
        }
        let alignment = align(query, &tables);
        let method_items = alignment_items(&alignment, query);
        let truth = alignment_ground_truth(query, &tables);
        let scores = precision_recall_f1(&method_items, &truth);
        totals.0 += scores.precision;
        totals.1 += scores.recall;
        totals.2 += scores.f1;
        count += 1;
    }
    let n = count.max(1) as f64;
    (totals.0 / n, totals.1 / n, totals.2 / n)
}

/// Ground-truth column alignment derived from the generator: a data-lake
/// column aligns with a query column iff both resolve to the same canonical
/// column of the same domain.
fn alignment_ground_truth(query: &Table, tables: &[&Table]) -> BTreeSet<dust_align::AlignmentItem> {
    let domain_name = query.name().split("_query_").next().unwrap_or(query.name());
    let domain = Domain::by_name(domain_name);
    let canonical = |header: &str| -> String {
        if let Some(d) = &domain {
            for c in &d.columns {
                if c.name == header || c.alt_name == header {
                    return c.name.to_string();
                }
            }
        }
        header.to_string()
    };
    let mut mapping: Vec<(String, Vec<ColumnRef>)> = Vec::new();
    for q_header in query.headers() {
        let q_canonical = canonical(q_header);
        let mut members = Vec::new();
        for table in tables {
            for header in table.headers() {
                if canonical(header) == q_canonical {
                    members.push(ColumnRef::new(table.name(), header.clone()));
                }
            }
        }
        mapping.push((q_header.clone(), members));
    }
    ground_truth_from_map(query, &mapping)
}
