//! Table 2 — tuple-diversification effectiveness and efficiency.
//!
//! For the SANTOS-like and UGEN-V1-like benchmarks: for every query, build
//! the pool of truly unionable tuples (ground-truth tables, aligned and
//! outer-unioned), embed them with the fine-tuned DUST model, run every
//! diversification algorithm (GMC, GNE — UGEN only, CLT, Random, DUST), and
//! report (i) the number of queries for which each algorithm achieves the
//! best Average Diversity and the best Min Diversity, and (ii) the average
//! per-query time.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_table2`.

#![forbid(unsafe_code)]

use dust_bench::diversity_eval::{evaluate_diversifiers, QueryCandidates};
use dust_bench::report::{fmt3, Report};
use dust_bench::setup::{build_candidates_for_query, scale, train_dust_model};
use dust_diversify::{
    CltDiversifier, Diversifier, DustDiversifier, GmcDiversifier, GneDiversifier, RandomDiversifier,
};
use dust_embed::{Distance, PretrainedModel};

fn main() {
    let scale = scale();
    for (bench_name, config, k, include_gne) in [
        ("SANTOS", scale.santos_config(), scale.santos_k(), false),
        ("UGEN-V1", scale.ugen_config(), scale.ugen_k(), true),
    ] {
        let lake = config.generate().lake;
        let (model, _) = train_dust_model(&lake, PretrainedModel::Roberta, scale.finetune_pairs());

        // Build and embed candidate pools per query.
        let mut queries = Vec::new();
        for query_name in lake.query_names() {
            let query = lake.query(&query_name).expect("query exists");
            let (tuples, sources) = build_candidates_for_query(&lake, query, 50);
            if tuples.len() < k {
                continue;
            }
            queries.push(QueryCandidates {
                query_name: query_name.clone(),
                query_embeddings: model.embed_tuples(&query.tuples()),
                candidate_embeddings: model.embed_tuples(&tuples),
                sources,
            });
        }
        println!(
            "{bench_name}: {} queries, avg {} candidate tuples per query, k = {k}",
            queries.len(),
            queries
                .iter()
                .map(|q| q.candidate_embeddings.len())
                .sum::<usize>()
                / queries.len().max(1)
        );

        let gmc = GmcDiversifier::new();
        let gne = GneDiversifier::new();
        let clt = CltDiversifier::new();
        let random = RandomDiversifier::default();
        let dust = DustDiversifier::new();
        let mut algorithms: Vec<(&str, &dyn Diversifier)> = vec![
            ("GMC", &gmc),
            ("CLT", &clt),
            ("Random", &random),
            ("DUST", &dust),
        ];
        if include_gne {
            algorithms.insert(1, ("GNE", &gne));
        }

        let outcomes = evaluate_diversifiers(&queries, &algorithms, k, Distance::Cosine);

        let mut report = Report::new(format!(
            "Table 2 ({bench_name}): # queries with best Average / Min diversity and avg time per query"
        ))
        .headers(["Method", "# Average", "# Min", "Mean Avg Div", "Mean Min Div", "Time (s)"]);
        for outcome in &outcomes {
            report.row([
                outcome.name.clone(),
                outcome.best_average.to_string(),
                outcome.best_min.to_string(),
                fmt3(outcome.mean_average),
                fmt3(outcome.mean_min),
                fmt3(outcome.avg_time_secs),
            ]);
        }
        report.note("paper (SANTOS, k=100): GMC 23/1/556s, CLT 0/0/82s, DUST 27/49/85s; (UGEN-V1, k=30): GMC 3/2, GNE 0/0, CLT 18/12, DUST 27/34");
        report.print();
    }
}
