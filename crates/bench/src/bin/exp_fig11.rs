//! Figure 11 / Appendix A.2.2 — impact of the candidate multiplier `p`.
//!
//! For `p` in 1..=5 on the SANTOS-like and UGEN-V1-like benchmarks, run the
//! DUST diversifier with `k·p` clusters and report the percentage change of
//! the two diversity metrics relative to the previous value of `p`. The
//! paper selects `p = 2`: beyond it the Max-Min score degrades and the
//! Average score barely moves.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_fig11`.

#![forbid(unsafe_code)]

use dust_bench::report::{fmt1, Report};
use dust_bench::setup::{build_candidates_for_query, scale, train_dust_model};
use dust_diversify::{
    DiversificationInput, Diversifier, DiversityScores, DustConfig, DustDiversifier,
};
use dust_embed::{Distance, PretrainedModel};

fn main() {
    let scale = scale();
    for (bench_name, config, k) in [
        ("SANTOS", scale.santos_config(), scale.santos_k()),
        ("UGEN-V1", scale.ugen_config(), scale.ugen_k()),
    ] {
        let lake = config.generate().lake;
        let (model, _) = train_dust_model(&lake, PretrainedModel::Roberta, scale.finetune_pairs());

        // Pre-embed every query's candidate pool once.
        let mut pools = Vec::new();
        for query_name in lake.query_names() {
            let query = lake.query(&query_name).expect("query exists");
            let (tuples, sources) = build_candidates_for_query(&lake, query, 50);
            if tuples.len() < k * 2 {
                continue;
            }
            pools.push((
                model.embed_tuples(&query.tuples()),
                model.embed_tuples(&tuples),
                sources,
            ));
        }

        // Average metrics per p.
        let mut per_p: Vec<(usize, f64, f64)> = Vec::new();
        for p in 1..=5usize {
            let diversifier = DustDiversifier::with_config(DustConfig {
                p,
                ..DustConfig::default()
            });
            let mut avg_sum = 0.0;
            let mut min_sum = 0.0;
            for (query_embeddings, candidate_embeddings, sources) in &pools {
                let input = DiversificationInput::with_sources(
                    query_embeddings,
                    candidate_embeddings,
                    sources,
                    Distance::Cosine,
                );
                let selection = diversifier.select(&input, k);
                let selected: Vec<_> = selection
                    .iter()
                    .map(|&i| candidate_embeddings[i].clone())
                    .collect();
                let scores =
                    DiversityScores::compute(query_embeddings, &selected, Distance::Cosine);
                avg_sum += scores.average;
                min_sum += scores.minimum;
            }
            let n = pools.len().max(1) as f64;
            per_p.push((p, avg_sum / n, min_sum / n));
        }

        let mut report = Report::new(format!(
            "Figure 11 ({bench_name}): % change of diversity metrics vs previous p (k = {k}, {} queries)",
            pools.len()
        ))
        .headers(["p", "Avg Diversity", "Min Diversity", "% change Avg", "% change Min"]);
        for window in per_p.windows(2) {
            let (prev, current) = (&window[0], &window[1]);
            report.row([
                current.0.to_string(),
                fmt1(current.1 * 1000.0) + "e-3",
                fmt1(current.2 * 1000.0) + "e-3",
                fmt1(percent_change(prev.1, current.1)),
                fmt1(percent_change(prev.2, current.2)),
            ]);
        }
        if let Some(first) = per_p.first() {
            report.note(format!(
                "p = 1 reference: Avg {:.4}, Min {:.4}",
                first.1, first.2
            ));
        }
        report.note("paper: beyond p = 2 the Max-Min score drops and the Average score changes insignificantly");
        report.print();
    }
}

fn percent_change(previous: f64, current: f64) -> f64 {
    if previous.abs() < 1e-12 {
        0.0
    } else {
        (current - previous) / previous * 100.0
    }
}
