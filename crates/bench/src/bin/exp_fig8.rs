//! Figure 8 — case study: novel values added to the query table.
//!
//! On the IMDB-like corpus (one query table plus 20 unionable movie tables),
//! compare how many *new* distinct values each method adds to selected query
//! columns (Title, Director, Filming Location) as the number of output
//! tuples k grows. Methods: D3L and Starmie used as table search (tuples
//! taken from their top-ranked tables in order), their duplicate-free
//! variants (D3L-D, Starmie-D), and DUST.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_fig8`.

#![forbid(unsafe_code)]

use dust_bench::report::Report;
use dust_bench::setup::{scale, Scale};
use dust_core::{DustPipeline, PipelineConfig, RetrievalSystem, TupleRetrievalBaseline};
use dust_datagen::{generate_imdb, ImdbConfig};
use dust_table::{Table, Tuple, Value};
use std::collections::HashSet;

fn main() {
    let scale = scale();
    let config = match scale {
        Scale::Small => ImdbConfig {
            base_movies: 200,
            lake_tables: 10,
            query_rows: 40,
            row_fraction: 0.25,
            ..ImdbConfig::default()
        },
        Scale::Full => ImdbConfig::default(),
    };
    let study = generate_imdb(&config);
    let query = study
        .lake
        .query(&study.query_name)
        .expect("query exists")
        .clone();
    let k_values: Vec<usize> = match scale {
        Scale::Small => vec![10, 20, 30, 40],
        Scale::Full => vec![20, 40, 60, 80, 100],
    };
    let columns = ["Title", "Director", "Filming Location"];

    // Baselines that take tuples from the top-ranked tables in rank order.
    let baselines = [
        TupleRetrievalBaseline::new(RetrievalSystem::D3l, false),
        TupleRetrievalBaseline::new(RetrievalSystem::D3l, true),
        TupleRetrievalBaseline::new(RetrievalSystem::Starmie, false),
        TupleRetrievalBaseline::new(RetrievalSystem::Starmie, true),
    ];
    // DUST end-to-end pipeline (no fine-tuning needed at case-study scale —
    // there is a single topic, so the pre-trained encoder's geometry is what
    // matters for diversity within it).
    let pipeline = DustPipeline::new(PipelineConfig {
        tables_per_query: config.lake_tables,
        ..PipelineConfig::fast()
    });

    for column in columns {
        let mut report = Report::new(format!(
            "Figure 8: new distinct values added to query column '{column}'"
        ))
        .headers(["k", "D3L", "D3L-D", "Starmie", "Starmie-D", "DUST"]);
        let existing = query_values(&query, column);
        for &k in &k_values {
            let mut cells = vec![k.to_string()];
            for baseline in &baselines {
                let tuples = baseline.top_k(&study.lake, &query, k);
                cells.push(novel_values(&tuples, column, &existing).to_string());
            }
            let dust_result = pipeline
                .run(&study.lake, &query, k)
                .expect("pipeline runs on the case study");
            cells.push(novel_values(&dust_result.tuples, column, &existing).to_string());
            report.row(cells);
        }
        report.note("paper: DUST adds ~25% more unique movie titles than Starmie-D; D3L and Starmie overlap heavily");
        report.print();
    }
}

fn query_values(query: &Table, column: &str) -> HashSet<String> {
    query
        .column_by_name(column)
        .map(|c| c.normalized_value_set())
        .unwrap_or_default()
}

fn novel_values(tuples: &[Tuple], column: &str, existing: &HashSet<String>) -> usize {
    let mut novel: HashSet<String> = HashSet::new();
    for tuple in tuples {
        if let Some(value) = tuple.value_for(column) {
            if let Value::Null = value {
                continue;
            }
            let rendered = value.render().trim().to_ascii_lowercase();
            if !rendered.is_empty() && !existing.contains(&rendered) {
                novel.insert(rendered);
            }
        }
    }
    novel.len()
}
