//! Clustering-engine experiment: NN-chain vs the cached-NN "generic"
//! agglomerative algorithm, and the k-capped + compacting build vs the
//! full build, on the diversification hot path.
//!
//! Three views:
//!
//! * **raw engines** — full-dendrogram construction time over a prebuilt
//!   [`PairwiseMatrix`] at n ∈ {200, 1000, 2000} (the `BENCH_cluster.json`
//!   numbers come from the Criterion `clustering` group; this table is the
//!   quick release-build sanity check), asserting both engines produce the
//!   same `cut(k)` partition;
//! * **capped + compacting** — the production configuration DUST actually
//!   consumes (stop at `k·p = 100` clusters, workspace compaction on)
//!   against the full non-compacting build at n ∈ {2000, 5000, 10000},
//!   asserting the capped `cut(100)` is *identical* to the full build's;
//! * **end to end** — the DUST diversifier with the engine and
//!   full-dendrogram toggle threaded through [`DustConfig`], asserting the
//!   selection is engine- and cap-independent.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_clustering`.

#![forbid(unsafe_code)]

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::clustered_points;
use dust_cluster::{
    agglomerative_params, agglomerative_with, clusters_from_assignment, AgglomerativeAlgorithm,
    ClusterParams, Compaction, Linkage,
};
use dust_diversify::{DiversificationInput, Diversifier, DustConfig, DustDiversifier};
use dust_embed::{Distance, PairwiseMatrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const ENGINES: [(&str, AgglomerativeAlgorithm); 2] = [
    ("nn_chain", AgglomerativeAlgorithm::NnChain),
    ("generic", AgglomerativeAlgorithm::Generic),
];

/// DUST's cut: k = 50 diverse tuples at the paper's p = 2.
const K_CAP: usize = 100;

fn main() {
    let dim = 32;

    // ---- raw engine comparison (full builds) -----------------------------
    let mut raw = Report::new("Agglomerative engines: dendrogram build seconds (average linkage)")
        .headers(["n", "nn_chain", "generic", "speedup"]);
    for &n in &[200usize, 1000, 2000] {
        let points = clustered_points(n, dim, 7);
        let matrix = PairwiseMatrix::compute(&points, Distance::Cosine);
        let mut secs = Vec::new();
        let mut cuts = Vec::new();
        for (_, algorithm) in ENGINES {
            let start = Instant::now();
            let dendro = agglomerative_with(&matrix, Linkage::Average, algorithm, 1);
            secs.push(start.elapsed().as_secs_f64());
            cuts.push(dendro.cut(n / 20));
        }
        assert_eq!(
            partition_signature(&cuts[0]),
            partition_signature(&cuts[1]),
            "engines disagree at n = {n}"
        );
        raw.row([
            n.to_string(),
            fmt3(secs[0]),
            fmt3(secs[1]),
            format!("{:.2}x", secs[0] / secs[1]),
        ]);
    }
    raw.note("identical cut(n/20) partitions verified per row");
    raw.print();

    // ---- capped + compacting vs the full build ---------------------------
    let mut capped_report = Report::new(format!(
        "Generic engine, k-capped at {K_CAP} + compacting vs full build (average linkage)"
    ))
    .headers(["n", "full", "capped+compact", "speedup", "merges"]);
    for &n in &[2000usize, 5000, 10000] {
        let points = clustered_points(n, dim, 7);
        let matrix = PairwiseMatrix::compute(&points, Distance::Cosine);
        let start = Instant::now();
        let full = agglomerative_params(
            &matrix,
            &ClusterParams {
                linkage: Linkage::Average,
                algorithm: AgglomerativeAlgorithm::Generic,
                min_clusters: 1,
                compaction: Compaction::Never,
            },
        );
        let full_secs = start.elapsed().as_secs_f64();
        let start = Instant::now();
        let capped = agglomerative_params(
            &matrix,
            &ClusterParams {
                linkage: Linkage::Average,
                algorithm: AgglomerativeAlgorithm::Generic,
                min_clusters: K_CAP,
                compaction: Compaction::Always,
            },
        );
        let capped_secs = start.elapsed().as_secs_f64();
        assert_eq!(
            capped.cut(K_CAP),
            full.cut(K_CAP),
            "capped cut({K_CAP}) diverged from the full build at n = {n}"
        );
        capped_report.row([
            n.to_string(),
            fmt3(full_secs),
            fmt3(capped_secs),
            format!("{:.2}x", full_secs / capped_secs),
            format!("{}/{}", capped.merges().len(), full.merges().len()),
        ]);
    }
    capped_report.note(format!(
        "identical cut({K_CAP}) assignments verified per row (bit-for-bit, not just up to relabelling)"
    ));
    capped_report.print();

    // ---- threaded through the DUST diversifier --------------------------
    let s = 2000;
    let (query, candidates) = synthetic_embeddings(20, s, dim);
    let mut e2e = Report::new(format!(
        "DUST diversifier (s = {s}, k = 50, pruning off): engine and cap via DustConfig"
    ))
    .headers(["engine", "dendrogram", "seconds"]);
    let mut selections = Vec::new();
    for (name, algorithm) in ENGINES {
        for full_dendrogram in [false, true] {
            let input = DiversificationInput::new(&query, &candidates, Distance::Cosine);
            let diversifier = DustDiversifier::with_config(DustConfig {
                prune_to: None,
                algorithm,
                full_dendrogram,
                ..DustConfig::default()
            });
            let start = Instant::now();
            selections.push(diversifier.select(&input, 50));
            e2e.row([
                name.to_string(),
                if full_dendrogram {
                    "full".to_string()
                } else {
                    "capped".to_string()
                },
                fmt3(start.elapsed().as_secs_f64()),
            ]);
        }
    }
    assert!(
        selections.windows(2).all(|w| w[0] == w[1]),
        "selection depends on the engine or the dendrogram cap"
    );
    e2e.note("identical k = 50 selections verified across engines and caps");
    e2e.print();
}

fn synthetic_embeddings(
    num_query: usize,
    num_candidates: usize,
    dim: usize,
) -> (Vec<Vector>, Vec<Vector>) {
    let mut rng = StdRng::seed_from_u64(0xF16);
    let num_centroids = 24;
    let centroids: Vec<Vec<f32>> = (0..num_centroids)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let point = |spread: f32, rng: &mut StdRng| -> Vector {
        let c = &centroids[rng.gen_range(0..num_centroids)];
        let v: Vec<f32> = c
            .iter()
            .map(|x| x + rng.gen_range(-spread..spread))
            .collect();
        Vector::new(v).normalized()
    };
    let query: Vec<Vector> = (0..num_query).map(|_| point(0.1, &mut rng)).collect();
    let candidates: Vec<Vector> = (0..num_candidates).map(|_| point(0.4, &mut rng)).collect();
    (query, candidates)
}

fn partition_signature(assignment: &[usize]) -> Vec<Vec<usize>> {
    let mut groups = clusters_from_assignment(assignment);
    groups.sort();
    groups
}
