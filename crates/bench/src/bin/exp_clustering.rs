//! Clustering-engine experiment: NN-chain vs the cached-NN "generic"
//! agglomerative algorithm on the diversification hot path.
//!
//! Two views:
//!
//! * **raw engines** — dendrogram construction time over a prebuilt
//!   [`PairwiseMatrix`] at n ∈ {200, 1000, 2000} (the `BENCH_cluster.json`
//!   numbers come from the Criterion `clustering` group; this table is the
//!   quick release-build sanity check), asserting both engines produce the
//!   same `cut(k)` partition;
//! * **end to end** — the DUST diversifier with the engine threaded through
//!   [`DustConfig::algorithm`], asserting the selection is
//!   engine-independent.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_clustering`.

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::clustered_points;
use dust_cluster::{agglomerative_with, clusters_from_assignment, AgglomerativeAlgorithm, Linkage};
use dust_diversify::{DiversificationInput, Diversifier, DustConfig, DustDiversifier};
use dust_embed::{Distance, PairwiseMatrix, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

const ENGINES: [(&str, AgglomerativeAlgorithm); 2] = [
    ("nn_chain", AgglomerativeAlgorithm::NnChain),
    ("generic", AgglomerativeAlgorithm::Generic),
];

fn main() {
    let dim = 32;

    // ---- raw engine comparison ------------------------------------------
    let mut raw = Report::new("Agglomerative engines: dendrogram build seconds (average linkage)")
        .headers(["n", "nn_chain", "generic", "speedup"]);
    for &n in &[200usize, 1000, 2000] {
        let points = clustered_points(n, dim, 7);
        let matrix = PairwiseMatrix::compute(&points, Distance::Cosine);
        let mut secs = Vec::new();
        let mut cuts = Vec::new();
        for (_, algorithm) in ENGINES {
            let start = Instant::now();
            let dendro = agglomerative_with(&matrix, Linkage::Average, algorithm);
            secs.push(start.elapsed().as_secs_f64());
            cuts.push(dendro.cut(n / 20));
        }
        assert_eq!(
            partition_signature(&cuts[0]),
            partition_signature(&cuts[1]),
            "engines disagree at n = {n}"
        );
        raw.row([
            n.to_string(),
            fmt3(secs[0]),
            fmt3(secs[1]),
            format!("{:.2}x", secs[0] / secs[1]),
        ]);
    }
    raw.note("identical cut(n/20) partitions verified per row");
    raw.print();

    // ---- threaded through the DUST diversifier --------------------------
    let s = 2000;
    let (query, candidates) = synthetic_embeddings(20, s, dim);
    let mut e2e = Report::new(format!(
        "DUST diversifier (s = {s}, k = 50, pruning off): engine threaded via DustConfig"
    ))
    .headers(["engine", "seconds"]);
    let mut selections = Vec::new();
    for (name, algorithm) in ENGINES {
        let input = DiversificationInput::new(&query, &candidates, Distance::Cosine);
        let diversifier = DustDiversifier::with_config(DustConfig {
            prune_to: None,
            algorithm,
            ..DustConfig::default()
        });
        let start = Instant::now();
        selections.push(diversifier.select(&input, 50));
        e2e.row([name.to_string(), fmt3(start.elapsed().as_secs_f64())]);
    }
    assert_eq!(
        selections[0], selections[1],
        "selection is engine-dependent"
    );
    e2e.note("identical k = 50 selections verified across engines");
    e2e.print();
}

fn synthetic_embeddings(
    num_query: usize,
    num_candidates: usize,
    dim: usize,
) -> (Vec<Vector>, Vec<Vector>) {
    let mut rng = StdRng::seed_from_u64(0xF16);
    let num_centroids = 24;
    let centroids: Vec<Vec<f32>> = (0..num_centroids)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect();
    let point = |spread: f32, rng: &mut StdRng| -> Vector {
        let c = &centroids[rng.gen_range(0..num_centroids)];
        let v: Vec<f32> = c
            .iter()
            .map(|x| x + rng.gen_range(-spread..spread))
            .collect();
        Vector::new(v).normalized()
    };
    let query: Vec<Vector> = (0..num_query).map(|_| point(0.1, &mut rng)).collect();
    let candidates: Vec<Vector> = (0..num_candidates).map(|_| point(0.4, &mut rng)).collect();
    (query, candidates)
}

fn partition_signature(assignment: &[usize]) -> Vec<Vec<usize>> {
    let mut groups = clusters_from_assignment(assignment);
    groups.sort();
    groups
}
