//! Table 3 — DUST against table-search techniques.
//!
//! For every query of the SANTOS-like and UGEN-V1-like benchmarks, produce
//! `k` tuples with three strategies — Starmie used as a tuple search (most
//! similar tuples first), the simulated LLM generator (UGEN only, as in the
//! paper), and DUST — embed every returned set with the same fine-tuned
//! DUST model, and count for how many queries each method achieves the best
//! Average Diversity and the best Min Diversity.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_table3`.

#![forbid(unsafe_code)]

use dust_bench::report::Report;
use dust_bench::setup::{build_candidates_for_query, scale, train_dust_model};
use dust_core::{LlmBaseline, StarmieBaseline};
use dust_diversify::{DiversificationInput, Diversifier, DiversityScores, DustDiversifier};
use dust_embed::{Distance, PretrainedModel};

fn main() {
    let scale = scale();
    for (bench_name, config, k, include_llm) in [
        ("SANTOS", scale.santos_config(), scale.santos_k(), false),
        ("UGEN-V1", scale.ugen_config(), scale.ugen_k(), true),
    ] {
        let lake = config.generate().lake;
        let (model, _) = train_dust_model(&lake, PretrainedModel::Roberta, scale.finetune_pairs());
        let starmie = StarmieBaseline::new();
        let llm = LlmBaseline::new();
        let dust = DustDiversifier::new();

        let mut method_names: Vec<&str> = vec!["Starmie", "DUST"];
        if include_llm {
            method_names.insert(1, "LLM");
        }
        let mut best_average = vec![0usize; method_names.len()];
        let mut best_min = vec![0usize; method_names.len()];
        let mut evaluated_queries = 0usize;

        for query_name in lake.query_names() {
            let query = lake.query(&query_name).expect("query exists");
            let (candidates, sources) = build_candidates_for_query(&lake, query, 50);
            if candidates.len() < k {
                continue;
            }
            evaluated_queries += 1;
            let query_embeddings = model.embed_tuples(&query.tuples());
            let candidate_embeddings = model.embed_tuples(&candidates);

            let mut scores: Vec<DiversityScores> = Vec::new();
            for name in &method_names {
                let selected_embeddings = match *name {
                    "Starmie" => {
                        let top = starmie.top_k(query, &candidates, k);
                        model.embed_tuples(&top)
                    }
                    "LLM" => {
                        let generated = llm.top_k(query, k);
                        model.embed_tuples(&generated)
                    }
                    "DUST" => {
                        let input = DiversificationInput::with_sources(
                            &query_embeddings,
                            &candidate_embeddings,
                            &sources,
                            Distance::Cosine,
                        );
                        dust.select(&input, k)
                            .into_iter()
                            .map(|i| candidate_embeddings[i].clone())
                            .collect()
                    }
                    _ => unreachable!(),
                };
                scores.push(DiversityScores::compute(
                    &query_embeddings,
                    &selected_embeddings,
                    Distance::Cosine,
                ));
            }
            let max_avg = scores
                .iter()
                .map(|s| s.average)
                .fold(f64::NEG_INFINITY, f64::max);
            let max_min = scores
                .iter()
                .map(|s| s.minimum)
                .fold(f64::NEG_INFINITY, f64::max);
            for (i, s) in scores.iter().enumerate() {
                if (s.average - max_avg).abs() < 1e-12 {
                    best_average[i] += 1;
                }
                if (s.minimum - max_min).abs() < 1e-12 {
                    best_min[i] += 1;
                }
            }
        }

        let mut report = Report::new(format!(
            "Table 3 ({bench_name}): # queries ({evaluated_queries} total) where each method is best"
        ))
        .headers(["Method", "# Average", "# Min"]);
        for (i, name) in method_names.iter().enumerate() {
            report.row([
                name.to_string(),
                best_average[i].to_string(),
                best_min[i].to_string(),
            ]);
        }
        report.note("paper (SANTOS): Starmie 5/1, DUST 45/49; (UGEN-V1): Starmie 11/2, LLM 14/21, DUST 23/25");
        report.print();
    }
}
