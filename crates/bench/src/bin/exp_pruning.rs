//! Appendix A.2.3 — influence of pre-diversification pruning.
//!
//! Starting from a large pool of unionable tuples, run the DUST diversifier
//! with pruning enabled (cap the pool at `s` tuples before clustering) and
//! disabled, and report the per-query runtime and the diversity metrics of
//! both variants. The paper reports 990 s → 85 s per query on SANTOS with no
//! loss of effectiveness relative to the baselines.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_pruning`.

#![forbid(unsafe_code)]

use dust_bench::report::{fmt3, Report};
use dust_bench::setup::{scale, Scale};
use dust_diversify::{
    DiversificationInput, Diversifier, DiversityScores, DustConfig, DustDiversifier,
};
use dust_embed::{Distance, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Instant;

fn main() {
    let scale = scale();
    let (pool_size, prune_to, k) = match scale {
        Scale::Small => (2500usize, 600usize, 50usize),
        Scale::Full => (10_000, 2500, 100),
    };

    // Synthetic clustered tuple embeddings standing in for one query's
    // unionable tuples (same generator as the Fig. 7 runtime sweep).
    let mut rng = StdRng::seed_from_u64(0xA23);
    let dim = 64;
    let centroids: Vec<Vec<f32>> = (0..30)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
        .collect();
    let point = |spread: f32, rng: &mut StdRng| -> Vector {
        let c = &centroids[rng.gen_range(0..centroids.len())];
        Vector::new(
            c.iter()
                .map(|x| x + rng.gen_range(-spread..spread))
                .collect(),
        )
        .normalized()
    };
    let query: Vec<Vector> = (0..30).map(|_| point(0.1, &mut rng)).collect();
    let candidates: Vec<Vector> = (0..pool_size).map(|_| point(0.4, &mut rng)).collect();
    let sources: Vec<usize> = (0..pool_size).map(|i| i % 20).collect();

    let variants = [
        ("DUST (with pruning)", Some(prune_to)),
        ("DUST (no pruning)", None),
    ];
    let mut report = Report::new(format!(
        "Appendix A.2.3: pruning influence (pool = {pool_size} tuples, s = {prune_to}, k = {k})"
    ))
    .headers(["Variant", "Time (s)", "Avg Diversity", "Min Diversity"]);

    for (name, prune) in variants {
        let diversifier = DustDiversifier::with_config(DustConfig {
            prune_to: prune,
            ..DustConfig::default()
        });
        let input =
            DiversificationInput::with_sources(&query, &candidates, &sources, Distance::Cosine);
        let start = Instant::now();
        let selection = diversifier.select(&input, k);
        let elapsed = start.elapsed().as_secs_f64();
        let selected: Vec<Vector> = selection.iter().map(|&i| candidates[i].clone()).collect();
        let scores = DiversityScores::compute(&query, &selected, Distance::Cosine);
        report.row([
            name.to_string(),
            fmt3(elapsed),
            fmt3(scores.average),
            fmt3(scores.minimum),
        ]);
    }
    report.note(
        "paper: pruning cuts the per-query time from 990 s to 85 s without hurting effectiveness",
    );
    report.print();
}
