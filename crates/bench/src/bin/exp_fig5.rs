//! Figure 5 — benchmark statistics.
//!
//! Regenerates the corpus-statistics table: for every benchmark, the number
//! of query tables / columns / tuples, the number of data-lake tables /
//! columns / tuples, and the average number of unionable tables per query.
//!
//! Run with `cargo run --release -p dust-bench --bin exp_fig5`
//! (set `DUST_SCALE=full` for the larger corpora).

#![forbid(unsafe_code)]

use dust_bench::report::Report;
use dust_bench::setup::scale;
use dust_datagen::BenchmarkConfig;

fn main() {
    let scale = scale();
    let configs: Vec<(&str, BenchmarkConfig)> = vec![
        ("TUS-Sampled", scale.tus_sampled_config()),
        ("SANTOS", scale.santos_config()),
        ("UGEN-V1", scale.ugen_config()),
    ];

    let mut report = Report::new("Figure 5: benchmarks used in the experiments").headers([
        "Benchmark",
        "Q tables",
        "Q columns",
        "Q tuples",
        "DL tables",
        "DL columns",
        "DL tuples",
        "Avg unionable/query",
    ]);

    for (name, config) in configs {
        let generated = config.generate();
        let lake = generated.lake;
        let q = lake.query_stats();
        let d = lake.lake_stats();
        report.row([
            name.to_string(),
            q.tables.to_string(),
            q.columns.to_string(),
            q.tuples.to_string(),
            d.tables.to_string(),
            d.columns.to_string(),
            d.tuples.to_string(),
            format!("{:.0}", lake.ground_truth().avg_unionable_per_query()),
        ]);
    }
    report.note(format!(
        "synthetic regeneration at scale {:?}; paper-scale originals: TUS 125/1.6K/557K vs 5044/55.5K/9.6M (188), \
         SANTOS 50/615/1.07M vs 550/6.3K/3.8M (14), UGEN-V1 50/400/550 vs 1000/8K/10K (10)",
        scale
    ));
    report.print();
}
