//! `serve` — the zero-to-server demo of the resident [`LakeSession`] layer.
//!
//! Builds a session over a data lake **once** (pre-embedded shards, warm
//! candidate indexes, one shared tuple model), then answers JSONL requests
//! with JSONL responses — from stdin (or a file) on stdout, or from many
//! concurrent TCP clients with `--listen`. Logs go to stderr so the
//! response stream stays machine-readable:
//!
//! ```sh
//! # diverse-tuple queries against a generated benchmark lake
//! printf '%s\n' \
//!   '{"id":"q1","query":"<lake query name>","k":5}' \
//!   '{"id":"q2","csv":"Park Name,Country\nRiver Park,USA","k":3}' \
//!   | cargo run --release -p dust-bench --bin serve -- --benchmark tiny
//!
//! # multi-client TCP server on port 7777
//! cargo run --release -p dust-bench --bin serve -- --benchmark tiny --listen 127.0.0.1:7777
//! ```
//!
//! Request fields: `query` (name of a lake query table) **or** `csv` (an
//! inline CSV table); optional `id` (echoed back), `k` (default 10),
//! `mode` (`"diverse"` — full Algorithm 1, the default — or `"similar"` —
//! nearest lake tuples from the resident shards, the Sec. 6.5 retrieval
//! shape). Batched requests: `{"queries": ["name1", "name2"], "k": 5}`
//! runs the whole array through `query_batch` in one go. Error responses
//! keep the request `id` and carry a stable machine-readable `kind`
//! (`bad_request`, `not_found`, `table`, `panic`, or a persistence kind
//! such as `io`/`corrupt`) next to the human-readable `error` message.
//!
//! ## Concurrency and the `generation` token
//!
//! The session serves reads and mutations concurrently: queries run
//! against immutable generation snapshots and **never block** on an
//! in-flight mutation (mutations serialize against each other only). The
//! `generation` echoed in every response is a real consistency token — it
//! names the exact lake version that produced the result, pinned for the
//! whole request (a batch runs entirely within one generation). A request
//! that panics inside a worker degrades to a per-slot `kind:"panic"`
//! error; the session, the batch's other slots, and every other
//! connection keep serving.
//!
//! The token also works in the other direction: a query/similar/batch
//! request carrying `{"generation": g}` is served from that **pinned**
//! generation, as long as it is the current one or among the last
//! `--history` published ones (default 8; near-free to retain thanks to
//! structural sharing). Reconnecting clients thus get repeatable reads
//! across requests and connections. A generation outside the window
//! answers with a typed `kind:"generation_evicted"` error naming the
//! retained window.
//!
//! With `--listen ADDR` the server speaks the same JSONL protocol over
//! TCP through a **bounded worker pool**: `--workers K` (default 4)
//! threads multiplex up to `--max-connections N` (default 256)
//! nonblocking sockets, each with its own read/write buffers — no
//! per-connection thread, no unbounded spawn. A connection over the cap
//! is told so with a typed `kind:"overloaded"` line and closed; a request
//! line over 1 MiB is dropped with `kind:"line_too_long"` (the connection
//! survives, input is skipped to the next newline). `{"mode":"shutdown"}`
//! (from any client, or stdin) stops the server gracefully: workers stop
//! accepting, every connection's pending responses drain, and a durable
//! session writes a final checkpoint so the next recovery replays
//! nothing.
//!
//! The lake can be mutated in place — incremental per-shard deltas, no
//! session rebuild (results stay bit-identical to a rebuild; see
//! `tests/session_mutation.rs`):
//!
//! ```text
//! {"id":"m1","mode":"add_table","name":"parks_new","csv":"Park Name,Country\nDelta Park,USA"}
//! {"id":"m2","mode":"remove_table","table":"parks_new"}
//! ```
//!
//! Mutation responses echo the mutated table, the new lake size, and the
//! session generation (the count of successful mutations). A duplicate
//! `add_table` name is an error (remove first to replace), matching the
//! lake's pinned duplicate semantics.
//!
//! With `--snapshot-dir DIR` the session is **durable**: on startup an
//! existing snapshot is recovered (snapshot load + WAL replay — no
//! re-embedding, no retraining) and every acknowledged mutation is
//! appended to the fsynced WAL before the response is written (one
//! durability lock covers apply + append, so WAL LSNs always equal
//! generations even under concurrent mutating clients). A corrupt or
//! version-skewed snapshot degrades gracefully: the error is logged with
//! its kind and the session is rebuilt from the lake, then re-persisted.
//! `{"mode":"checkpoint"}` forces a snapshot rewrite + WAL truncation on
//! demand; `--checkpoint-after N` sets the automatic record-count
//! threshold (default 64 records) and `--checkpoint-bytes N` the
//! byte-size threshold (default 64 MiB of WAL since the last checkpoint)
//! — whichever trips first wins, so a burst of huge `add_table` payloads
//! compacts long before the record counter would fire.
//!
//! `{"mode":"stats"}` is the operability probe: it reports the pinned
//! generation, lake-wide table/tuple/column counts, per-shard
//! `{tables, live, dead}` rows (dead = tombstoned, awaiting compaction),
//! the generation-history window (`depth`/`retained`/`oldest`/`newest`),
//! the worker-pool counters for a TCP server (`workers`, live
//! `connections`, `accepted`, `rejected_overloaded`, `lines_too_long`;
//! `"server":null` on the stdio path), and — for a durable session — the
//! WAL epoch, record count, and bytes accumulated since the last
//! checkpoint (`"wal":null` otherwise).
//!
//! Flags: `--benchmark tiny|santos|ugen` (generated lake, default tiny),
//! `--lake-dir <dir>` (load every `*.csv` file as a lake table),
//! `--search overlap|d3l|starmie`, `--finetune` (train the DUST model at
//! startup instead of serving pre-trained embeddings), `--shards N`,
//! `--listen ADDR` (TCP worker-pool mode; takes precedence over
//! stdin/`--requests`), `--workers K`, `--max-connections N`,
//! `--history N` (pinnable generations retained), `--snapshot-dir <dir>`
//! (durable session: recover on start, WAL on mutation),
//! `--checkpoint-after N`, `--checkpoint-bytes N`, `--requests
//! <file>` (read JSONL from a file instead of stdin), `--selftest` (build
//! a tiny lake, run built-in requests including a save → drop → recover →
//! re-query cycle and a concurrent worker-pool TCP round-trip with more
//! clients than workers, verify, exit).
//!
//! [`LakeSession`]: dust_core::LakeSession

#![forbid(unsafe_code)]

use dust_bench::json::{self, JsonValue};
use dust_bench::pool::{self, PoolCounters, PoolOptions};
use dust_bench::setup::Scale;
use dust_core::{
    DustResult, LakeSession, PersistError, PipelineConfig, SearchTechnique, SessionView,
    SnapshotStore, StoreOptions, TupleEmbedderKind,
};
use dust_datagen::BenchmarkConfig;
use dust_embed::{FineTuneConfig, PretrainedModel};
use dust_table::{parse_csv, CsvOptions, DataLake, Table};
use std::io::{BufRead, Write};
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Give up on a broken stdin after this many read failures in a row (a
/// single bad line must not kill the server; a permanently dead pipe
/// should not spin forever either).
const MAX_CONSECUTIVE_READ_ERRORS: usize = 16;

/// Per-connection cap on one request line (newline exclusive). A client
/// streaming bytes without a newline is answered `kind:"line_too_long"`
/// when its partial line passes this, and the line is dropped — the
/// server's memory stays bounded no matter how slowly the bytes trickle.
const MAX_LINE_BYTES: usize = 1 << 20;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&args) {
        eprintln!("serve: {message}");
        std::process::exit(1);
    }
}

/// The shared serving state: the resident session (internally concurrent —
/// queries take `&self` and never block on mutations) plus, when
/// `--snapshot-dir` is given, the durable store whose WAL trails every
/// acknowledged mutation. One instance serves every connection.
struct ServerState {
    session: LakeSession,
    /// The durable store, guarded by the *durability lock*: held across
    /// apply + WAL append (+ auto-checkpoint) so record LSNs always equal
    /// session generations, even with concurrent mutating clients. Read
    /// requests never touch it.
    durable: Mutex<Option<SnapshotStore>>,
    /// Set by `{"mode":"shutdown"}`; every serve loop polls it.
    shutdown: AtomicBool,
    /// Worker-pool observability counters, surfaced by `{"mode":"stats"}`.
    /// All-zero on the stdio path.
    pool: PoolCounters,
    /// `(workers, max_connections)` when serving TCP; `None` on the stdio
    /// path (stats then reports `"server":null`). Set once before serving
    /// starts.
    serving: Option<(usize, usize)>,
}

impl ServerState {
    fn new(session: LakeSession, store: Option<SnapshotStore>) -> ServerState {
        ServerState {
            session,
            durable: Mutex::new(store),
            shutdown: AtomicBool::new(false),
            pool: PoolCounters::default(),
            serving: None,
        }
    }
}

/// A request failure: the echoed request `id`, a stable machine-readable
/// `kind`, and a human-readable message. Rendered as
/// `{"id":..,"kind":..,"error":..}` — clients branch on `kind`, humans
/// read `error`.
struct ServeError {
    id: String,
    kind: &'static str,
    message: String,
}

fn run(args: &[String]) -> Result<(), String> {
    let options = CliOptions::parse(args)?;
    if options.selftest {
        return selftest(&options);
    }

    let mut state = build_state(&options)?;
    if options.listen.is_some() {
        state.serving = Some((options.workers, options.max_connections));
    }
    let state = Arc::new(state);
    let stats = state.session.stats();
    eprintln!(
        "serve: session ready in {:.2}s — {} tuples + {} columns resident across {} shards \
         (tuple dim {}, column dim {}), search = {}, generation {}",
        stats.build_secs,
        stats.tuples,
        stats.columns,
        stats.shards,
        stats.tuple_dim,
        stats.column_dim,
        state.session.config().search.name(),
        state.session.generation(),
    );
    for (i, (tables, tuples)) in stats.shard_sizes.iter().enumerate() {
        eprintln!("serve:   shard {i}: {tables} tables, {tuples} tuples");
    }

    if let Some(addr) = &options.listen {
        let listener =
            TcpListener::bind(addr).map_err(|e| format!("cannot listen on {addr}: {e}"))?;
        serve_tcp(&state, listener)?;
    } else {
        serve_stdio(&state, &options)?;
    }
    shutdown_checkpoint(&state);
    Ok(())
}

/// The stdin / `--requests`-file serve loop. A single unreadable line is
/// logged and skipped — the loop keeps serving (bounded by
/// [`MAX_CONSECUTIVE_READ_ERRORS`] so a permanently dead pipe still
/// terminates). `{"mode":"shutdown"}` ends the loop gracefully.
fn serve_stdio(state: &ServerState, options: &CliOptions) -> Result<(), String> {
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0usize;
    let emit = |line: &str, out: &mut dyn Write| -> Result<bool, String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(false);
        }
        let response = handle_request(state, trimmed);
        writeln!(out, "{response}")
            .and_then(|_| out.flush())
            .map_err(|e| e.to_string())?;
        Ok(true)
    };
    match &options.requests {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            for line in text.lines() {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                if emit(line, &mut out)? {
                    served += 1;
                }
            }
        }
        None => {
            let stdin = std::io::stdin();
            let mut lines = stdin.lock().lines();
            let mut consecutive_read_errors = 0usize;
            loop {
                if state.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match lines.next() {
                    None => break,
                    Some(Ok(line)) => {
                        consecutive_read_errors = 0;
                        if emit(&line, &mut out)? {
                            served += 1;
                        }
                    }
                    Some(Err(e)) => {
                        consecutive_read_errors += 1;
                        eprintln!("serve: dropped unreadable stdin line ({e}); still serving");
                        if consecutive_read_errors >= MAX_CONSECUTIVE_READ_ERRORS {
                            eprintln!(
                                "serve: {consecutive_read_errors} consecutive stdin read \
                                 failures; stopping"
                            );
                            break;
                        }
                    }
                }
            }
        }
    }
    eprintln!("serve: {served} request(s) served");
    Ok(())
}

/// The TCP serve mode: a bounded worker pool multiplexing nonblocking
/// connections (see [`dust_bench::pool`]), all sharing one
/// [`ServerState`]. Worker 0 folds `accept` into its poll cycle — no
/// dedicated accept thread, no fixed accept-retry sleep — and the pool's
/// adaptive back-off keeps both idle CPU and connect latency low.
/// Returns only after every worker drained its connections (that is what
/// makes the post-loop checkpoint safe).
fn serve_tcp(state: &Arc<ServerState>, listener: TcpListener) -> Result<(), String> {
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let (workers, max_connections) = state.serving.unwrap_or((4, 256));
    eprintln!(
        "serve: listening on {addr} — one JSONL request per line, {workers} worker(s) \
         multiplexing up to {max_connections} connection(s); send {{\"mode\":\"shutdown\"}} to stop"
    );
    let pool_options = PoolOptions {
        workers,
        max_connections,
        max_line_bytes: MAX_LINE_BYTES,
        overloaded_line: format!(
            "{{\"id\":\"\",\"kind\":\"overloaded\",\"error\":\"server at capacity \
             ({max_connections} connections); retry later\"}}"
        ),
        line_too_long_line: format!(
            "{{\"id\":\"\",\"kind\":\"line_too_long\",\"error\":\"request line exceeded \
             {MAX_LINE_BYTES} bytes and was dropped\"}}"
        ),
        ..PoolOptions::default()
    };
    let handler = |line: &str| handle_request(state, line);
    pool::run(
        &listener,
        &pool_options,
        &state.pool,
        &state.shutdown,
        &handler,
    )
    .map_err(|e| format!("worker pool failed: {e}"))?;
    eprintln!("serve: listener on {addr} shut down");
    Ok(())
}

/// Graceful-shutdown hook: fold the WAL into a fresh checkpoint so the
/// next recovery replays nothing. A failure is logged, not fatal — the
/// fsynced WAL remains authoritative either way.
fn shutdown_checkpoint(state: &ServerState) {
    // dust-lint: lock(durability)
    let mut durable = state.durable.lock().unwrap_or_else(|e| e.into_inner());
    if let Some(store) = durable.as_mut() {
        if store.wal_records() == 0 {
            return;
        }
        match store.checkpoint(&state.session) {
            Ok(()) => eprintln!(
                "serve: shutdown checkpoint → epoch {} at generation {}",
                store.epoch(),
                state.session.generation()
            ),
            Err(e) => eprintln!(
                "serve: shutdown checkpoint failed (kind: {}): {e} — WAL remains authoritative",
                e.kind()
            ),
        }
    }
}

/// Build the serving state: recover from the snapshot directory when one
/// is configured and holds a valid snapshot, otherwise build from the lake
/// (and persist the fresh build when a directory is configured). A corrupt
/// snapshot is reported and *replaced* — degraded startup cost, never
/// degraded answers.
fn build_state(options: &CliOptions) -> Result<ServerState, String> {
    if let Some(dir) = &options.snapshot_dir {
        let dir = Path::new(dir);
        match SnapshotStore::open_with(dir, options.store_options()) {
            Ok((store, session, report)) => {
                eprintln!(
                    "serve: recovered snapshot {} (generation {}, {} WAL record(s) replayed{})",
                    dir.display(),
                    report.snapshot_generation,
                    report.replayed,
                    if report.dropped_torn_tail {
                        ", torn tail dropped"
                    } else {
                        ""
                    }
                );
                // History depth is a serving-time knob, not persisted:
                // apply the flag to the restored session (its ring starts
                // empty — pinnable generations accumulate from here).
                session.set_history_depth(options.history);
                return Ok(ServerState::new(session, Some(store)));
            }
            Err(e @ PersistError::NoSnapshot { .. }) => {
                eprintln!("serve: {e}; building from the lake");
            }
            Err(e) => {
                eprintln!(
                    "serve: snapshot unusable (kind: {}): {e}; rebuilding from the lake",
                    e.kind()
                );
            }
        }
        let session = build_session(options)?;
        let store = SnapshotStore::create_with(dir, &session, options.store_options())
            .map_err(|e| format!("cannot persist fresh session to {}: {e}", dir.display()))?;
        eprintln!("serve: fresh snapshot written to {}", dir.display());
        Ok(ServerState::new(session, Some(store)))
    } else {
        Ok(ServerState::new(build_session(options)?, None))
    }
}

fn build_session(options: &CliOptions) -> Result<LakeSession, String> {
    let lake = match &options.lake_dir {
        Some(dir) => load_lake_dir(dir)?,
        None => generate_lake(&options.benchmark)?,
    };
    eprintln!(
        "serve: lake {:?}: {} tables, {} queries",
        lake.name(),
        lake.num_tables(),
        lake.num_queries()
    );
    Ok(LakeSession::with_options(
        lake,
        options.pipeline_config(),
        dust_core::SessionOptions {
            num_shards: options.shards,
            history: options.history,
        },
    ))
}

struct CliOptions {
    benchmark: String,
    lake_dir: Option<String>,
    search: SearchTechnique,
    finetune: bool,
    shards: usize,
    listen: Option<String>,
    workers: usize,
    max_connections: usize,
    history: usize,
    snapshot_dir: Option<String>,
    checkpoint_after: usize,
    checkpoint_bytes: u64,
    requests: Option<String>,
    selftest: bool,
}

impl CliOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = CliOptions {
            benchmark: "tiny".to_string(),
            lake_dir: None,
            search: SearchTechnique::Overlap,
            finetune: false,
            shards: 4,
            listen: None,
            workers: 4,
            max_connections: 256,
            history: dust_core::SessionOptions::default().history,
            snapshot_dir: None,
            checkpoint_after: StoreOptions::default().checkpoint_after,
            checkpoint_bytes: StoreOptions::default().checkpoint_after_bytes,
            requests: None,
            selftest: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--benchmark" => options.benchmark = value("--benchmark")?,
                "--lake-dir" => options.lake_dir = Some(value("--lake-dir")?),
                "--search" => {
                    options.search = match value("--search")?.as_str() {
                        "overlap" => SearchTechnique::Overlap,
                        "d3l" => SearchTechnique::D3l,
                        "starmie" => SearchTechnique::Starmie,
                        other => return Err(format!("unknown search technique {other:?}")),
                    }
                }
                "--finetune" => options.finetune = true,
                "--shards" => {
                    options.shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?
                }
                "--listen" => options.listen = Some(value("--listen")?),
                "--workers" => {
                    options.workers = value("--workers")?
                        .parse::<usize>()
                        .map_err(|e| format!("--workers: {e}"))?
                        .max(1)
                }
                "--max-connections" => {
                    options.max_connections = value("--max-connections")?
                        .parse::<usize>()
                        .map_err(|e| format!("--max-connections: {e}"))?
                        .max(1)
                }
                "--history" => {
                    options.history = value("--history")?
                        .parse()
                        .map_err(|e| format!("--history: {e}"))?
                }
                "--snapshot-dir" => options.snapshot_dir = Some(value("--snapshot-dir")?),
                "--checkpoint-after" => {
                    options.checkpoint_after = value("--checkpoint-after")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-after: {e}"))?
                }
                "--checkpoint-bytes" => {
                    options.checkpoint_bytes = value("--checkpoint-bytes")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-bytes: {e}"))?
                }
                "--requests" => options.requests = Some(value("--requests")?),
                "--selftest" => options.selftest = true,
                "--help" | "-h" => {
                    return Err("see the module docs: serve [--benchmark tiny|santos|ugen] \
                                [--lake-dir DIR] [--search overlap|d3l|starmie] [--finetune] \
                                [--shards N] [--listen ADDR] [--workers K] \
                                [--max-connections N] [--history N] [--snapshot-dir DIR] \
                                [--checkpoint-after N] [--checkpoint-bytes N] \
                                [--requests FILE] [--selftest]"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(options)
    }

    fn pipeline_config(&self) -> PipelineConfig {
        let mut config = PipelineConfig {
            search: self.search,
            ..PipelineConfig::fast()
        };
        if self.finetune {
            config.embedder = TupleEmbedderKind::FineTuned {
                backbone: PretrainedModel::Roberta,
                config: FineTuneConfig {
                    max_epochs: 15,
                    patience: 3,
                    ..FineTuneConfig::default()
                },
                training_pairs: 150,
            };
        }
        config
    }

    fn store_options(&self) -> StoreOptions {
        StoreOptions {
            checkpoint_after: self.checkpoint_after,
            checkpoint_after_bytes: self.checkpoint_bytes,
        }
    }
}

fn generate_lake(benchmark: &str) -> Result<DataLake, String> {
    let config = match benchmark {
        "tiny" => BenchmarkConfig::tiny(),
        "santos" => Scale::Small.santos_config(),
        "ugen" => Scale::Small.ugen_config(),
        other => return Err(format!("unknown benchmark {other:?} (tiny|santos|ugen)")),
    };
    Ok(config.generate().lake)
}

/// Load every `*.csv` file in a directory as one lake table (file stem =
/// table name).
fn load_lake_dir(dir: &str) -> Result<DataLake, String> {
    let mut lake = DataLake::new(dir.to_string());
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .csv files in {dir}"));
    }
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("table")
            .to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let table = parse_csv(name, &text, CsvOptions::default()).map_err(|e| format!("{e:?}"))?;
        lake.add_table(table).map_err(|e| format!("{e:?}"))?;
    }
    Ok(lake)
}

/// Handle one JSONL request line; always returns one JSON response line.
/// Takes the state by `&` — any number of connections call this
/// concurrently.
fn handle_request(state: &ServerState, line: &str) -> String {
    match serve_line(state, line) {
        Ok(response) => response,
        Err(e) => format!(
            "{{\"id\":\"{}\",\"kind\":\"{}\",\"error\":\"{}\"}}",
            json::escape(&e.id),
            e.kind,
            json::escape(&e.message)
        ),
    }
}

fn serve_line(state: &ServerState, line: &str) -> Result<String, ServeError> {
    let request = json::parse(line).map_err(|e| ServeError {
        id: String::new(),
        kind: "bad_request",
        message: format!("bad request: {e}"),
    })?;
    let id = request
        .get("id")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    let fail = |kind: &'static str, message: String| ServeError {
        id: id.clone(),
        kind,
        message,
    };
    let bad = |message: String| fail("bad_request", message);
    let k = match request.get("k") {
        None => 10,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| bad("k must be a non-negative integer".to_string()))?,
    };

    let mode = request
        .get("mode")
        .and_then(JsonValue::as_str)
        .unwrap_or("diverse");

    // batched form: {"queries": [...], "k": ...} — the whole batch is
    // pinned to one generation snapshot, so every slot answers from the
    // same lake version and the echoed generation names it exactly
    if let Some(JsonValue::Array(names)) = request.get("queries") {
        // a non-default mode would be silently ignored here — reject it so
        // a client never misreads a diverse batch as similar-tuple results
        if mode != "diverse" {
            return Err(bad(format!(
                "batched requests only support mode \"diverse\" (got {mode:?})"
            )));
        }
        let view = pinned_view(state, &request, &id)?;
        let queries: Vec<Table> = names
            .iter()
            .map(|name| {
                let name = name
                    .as_str()
                    .ok_or_else(|| bad("queries must be strings".to_string()))?;
                resolve_query(view.lake(), name).map_err(|m| fail("not_found", m))
            })
            .collect::<Result<_, _>>()?;
        let start = Instant::now();
        let results = view.query_batch(&queries, k);
        let secs = start.elapsed().as_secs_f64();
        let rendered: Vec<String> = results
            .iter()
            .map(|r| match r {
                Ok(result) => render_result(result),
                // a panicked worker shows up here as kind:"panic" in its
                // own slot; the rest of the batch served normally
                Err(e) => format!(
                    "{{\"kind\":\"{}\",\"error\":\"{}\"}}",
                    e.kind(),
                    json::escape(&e.to_string())
                ),
            })
            .collect();
        return Ok(format!(
            "{{\"id\":\"{}\",\"k\":{k},\"generation\":{},\"batch\":[{}],\"secs\":{}}}",
            json::escape(&id),
            view.generation(),
            rendered.join(","),
            json::number(secs)
        ));
    }

    // mutation modes: incremental per-shard deltas on the resident session
    // (no rebuild; results afterwards are bit-identical to one). The
    // durability lock is held across apply + WAL append + auto-checkpoint:
    // concurrent mutating clients serialize here, so the fsynced record's
    // LSN always equals the generation the apply produced. Failed
    // mutations are never logged, acknowledged ones always are. Readers
    // are unaffected — they never take this lock.
    if mode == "add_table" || mode == "remove_table" {
        let start = Instant::now();
        // dust-lint: lock(durability)
        let mut durable = state.durable.lock().unwrap_or_else(|e| e.into_inner());
        let body = if mode == "add_table" {
            let name = request
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("add_table needs \"name\"".to_string()))?;
            let csv = request
                .get("csv")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("add_table needs \"csv\"".to_string()))?;
            let table = parse_csv(name, csv, CsvOptions::default())
                .map_err(|e| bad(format!("bad csv: {e:?}")))?;
            state
                .session
                .add_table(table.clone())
                .map_err(|e| fail("table", e.to_string()))?;
            if let Some(store) = durable.as_mut() {
                store
                    .log_add_table(&table, state.session.generation())
                    .map_err(|e| fail(e.kind(), format!("applied but not logged: {e}")))?;
            }
            format!(
                "{{\"added\":\"{}\",\"tables\":{},\"generation\":{}}}",
                json::escape(name),
                state.session.lake().num_tables(),
                state.session.generation()
            )
        } else {
            let name = request
                .get("table")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("remove_table needs \"table\"".to_string()))?
                .to_string();
            state
                .session
                .remove_table(&name)
                .map_err(|e| fail("table", e.to_string()))?;
            if let Some(store) = durable.as_mut() {
                store
                    .log_remove_table(&name, state.session.generation())
                    .map_err(|e| fail(e.kind(), format!("applied but not logged: {e}")))?;
            }
            format!(
                "{{\"removed\":\"{}\",\"tables\":{},\"generation\":{}}}",
                json::escape(&name),
                state.session.lake().num_tables(),
                state.session.generation()
            )
        };
        if let Some(store) = durable.as_mut() {
            match store.maybe_checkpoint(&state.session) {
                Ok(true) => eprintln!(
                    "serve: checkpoint → epoch {} at generation {}",
                    store.epoch(),
                    state.session.generation()
                ),
                Ok(false) => {}
                // the WAL record IS durable; a failed checkpoint only means
                // recovery replays more — log it, don't fail the request
                Err(e) => eprintln!("serve: checkpoint failed (kind: {}): {e}", e.kind()),
            }
        }
        let secs = start.elapsed().as_secs_f64();
        return Ok(format!(
            "{{\"id\":\"{}\",\"result\":{body},\"secs\":{}}}",
            json::escape(&id),
            json::number(secs)
        ));
    }

    // explicit checkpoint: rewrite the snapshot at the current generation
    // and truncate the WAL
    if mode == "checkpoint" {
        // dust-lint: lock(durability)
        let mut durable = state.durable.lock().unwrap_or_else(|e| e.into_inner());
        let store = durable
            .as_mut()
            .ok_or_else(|| bad("checkpoint needs --snapshot-dir".to_string()))?;
        let start = Instant::now();
        store
            .checkpoint(&state.session)
            .map_err(|e| fail(e.kind(), e.to_string()))?;
        let secs = start.elapsed().as_secs_f64();
        return Ok(format!(
            "{{\"id\":\"{}\",\"result\":{{\"checkpoint\":true,\"epoch\":{},\"generation\":{}}},\"secs\":{}}}",
            json::escape(&id),
            store.epoch(),
            state.session.generation(),
            json::number(secs)
        ));
    }

    // graceful stop: every serve loop (stdin, accept, connections) polls
    // the flag; run() writes a final checkpoint after they drain
    if mode == "shutdown" {
        state.shutdown.store(true, Ordering::SeqCst);
        return Ok(format!(
            "{{\"id\":\"{}\",\"result\":{{\"shutdown\":true,\"generation\":{}}}}}",
            json::escape(&id),
            state.session.generation()
        ));
    }

    // operability probe: one pinned view's resource picture — per-shard
    // live/dead rows, the generation it answers from, and how much WAL has
    // accumulated since the last checkpoint (null without --snapshot-dir)
    if mode == "stats" {
        let view = state.session.view();
        let stats = view.stats();
        let shards: Vec<String> = stats
            .shard_sizes
            .iter()
            .zip(&stats.shard_dead)
            .map(|(&(tables, live), &dead)| {
                format!("{{\"tables\":{tables},\"live\":{live},\"dead\":{dead}}}")
            })
            .collect();
        let wal = {
            // dust-lint: lock(durability)
            let durable = state.durable.lock().unwrap_or_else(|e| e.into_inner());
            match durable.as_ref() {
                Some(store) => format!(
                    "{{\"epoch\":{},\"records\":{},\"bytes_since_checkpoint\":{}}}",
                    store.epoch(),
                    store.wal_records(),
                    store.wal_bytes()
                ),
                None => "null".to_string(),
            }
        };
        let (oldest, newest, retained) = state.session.history_window();
        let history = format!(
            "{{\"depth\":{},\"retained\":{retained},\"oldest\":{oldest},\"newest\":{newest}}}",
            state.session.history_depth()
        );
        let server = match state.serving {
            Some((workers, max_connections)) => {
                use std::sync::atomic::Ordering::Relaxed;
                format!(
                    "{{\"workers\":{workers},\"max_connections\":{max_connections},\
                     \"connections\":{},\"accepted\":{},\"rejected_overloaded\":{},\
                     \"lines_too_long\":{},\"served_lines\":{}}}",
                    state.pool.active.load(Relaxed),
                    state.pool.accepted.load(Relaxed),
                    state.pool.rejected_overloaded.load(Relaxed),
                    state.pool.lines_too_long.load(Relaxed),
                    state.pool.served_lines.load(Relaxed),
                )
            }
            None => "null".to_string(),
        };
        return Ok(format!(
            "{{\"id\":\"{}\",\"generation\":{},\"result\":{{\"tables\":{},\"tuples\":{},\"columns\":{},\"shards\":[{}],\"history\":{history},\"server\":{server},\"wal\":{wal}}}}}",
            json::escape(&id),
            view.generation(),
            stats.tables,
            stats.tuples,
            stats.columns,
            shards.join(","),
        ));
    }

    // single query: by lake name or inline CSV, served from one pinned
    // generation (the one echoed in the response — either the current one
    // or the requested {"generation": g} from the history window)
    let view = pinned_view(state, &request, &id)?;
    let query = if let Some(name) = request.get("query").and_then(JsonValue::as_str) {
        resolve_query(view.lake(), name).map_err(|m| fail("not_found", m))?
    } else if let Some(csv) = request.get("csv").and_then(JsonValue::as_str) {
        let name = request
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("inline_query");
        parse_csv(name, csv, CsvOptions::default()).map_err(|e| bad(format!("bad csv: {e:?}")))?
    } else {
        return Err(bad(
            "request needs \"query\", \"queries\", or \"csv\"".to_string()
        ));
    };

    let start = Instant::now();
    let body = match mode {
        "diverse" => {
            let result = view
                .query(&query, k)
                .map_err(|e| fail("table", e.to_string()))?;
            render_result(&result)
        }
        "similar" => {
            let ranked = view.similar_tuples(&query, k);
            let items: Vec<String> = ranked
                .iter()
                .map(|r| {
                    format!(
                        "{{\"table\":\"{}\",\"row\":{},\"score\":{}}}",
                        json::escape(&r.table),
                        r.row,
                        json::number(r.score)
                    )
                })
                .collect();
            format!("{{\"similar\":[{}]}}", items.join(","))
        }
        other => return Err(bad(format!("unknown mode {other:?}"))),
    };
    let secs = start.elapsed().as_secs_f64();
    Ok(format!(
        "{{\"id\":\"{}\",\"k\":{k},\"generation\":{},\"result\":{body},\"secs\":{}}}",
        json::escape(&id),
        view.generation(),
        json::number(secs)
    ))
}

/// The view a read request runs against: the current generation, or —
/// when the request carries `{"generation": g}` — that exact pinned
/// generation from the bounded history window. Past the window the typed
/// `generation_evicted` error names the retained range, so a reconnecting
/// client knows precisely why its token no longer serves.
fn pinned_view<'a>(
    state: &'a ServerState,
    request: &JsonValue,
    id: &str,
) -> Result<SessionView<'a>, ServeError> {
    let fail = |kind: &'static str, message: String| ServeError {
        id: id.to_string(),
        kind,
        message,
    };
    match request.get("generation") {
        None => Ok(state.session.view()),
        Some(value) => {
            let generation = value.as_usize().ok_or_else(|| {
                fail(
                    "bad_request",
                    "generation must be a non-negative integer".to_string(),
                )
            })?;
            state
                .session
                .view_at(generation as u64)
                .map_err(|e| fail(e.kind(), e.to_string()))
        }
    }
}

fn resolve_query(lake: &DataLake, name: &str) -> Result<Table, String> {
    lake.query(name)
        .or_else(|_| lake.table(name))
        .cloned()
        .map_err(|_| format!("no lake query or table named {name:?}"))
}

/// Render a `DustResult` as a JSON object (tuples as cell-string arrays).
fn render_result(result: &DustResult) -> String {
    let tuples: Vec<String> = result
        .tuples
        .iter()
        .map(|t| {
            let mut rendered: Vec<String> = Vec::with_capacity(t.headers().len());
            for header in t.headers() {
                let cell = t
                    .value_for(header)
                    .map(|v| v.render().to_string())
                    .unwrap_or_default();
                rendered.push(format!("\"{}\"", json::escape(&cell)));
            }
            format!("[{}]", rendered.join(","))
        })
        .collect();
    format!(
        "{{\"tables\":{},\"dropped\":{},\"candidates\":{},\"tuples\":[{}],\
         \"avg_diversity\":{},\"min_diversity\":{}}}",
        json::string_array(result.retrieved_tables.iter().map(String::as_str)),
        json::string_array(result.dropped_tables.iter().map(String::as_str)),
        result.candidate_tuples,
        tuples.join(","),
        json::number(result.diversity.average),
        json::number(result.diversity.minimum)
    )
}

/// Build a tiny lake, serve built-in requests, verify the responses parse
/// and contain results, then run a full durability cycle (save → mutate
/// (WAL) → drop → recover → re-query) and a concurrent TCP round-trip
/// (parallel reading clients + a mutating client + graceful shutdown),
/// asserting recovered and TCP-served sessions answer identically. Used
/// by CI as the serving + recovery smoke test.
fn selftest(options: &CliOptions) -> Result<(), String> {
    let lake = BenchmarkConfig::tiny().generate().lake;
    let query_name = lake
        .query_names()
        .first()
        .cloned()
        .ok_or("tiny benchmark generated no queries")?;
    // an inline-CSV request built from a real query table, so alignment has
    // something to union (arbitrary CSV also works, it just may yield an
    // empty candidate pool on an unrelated lake)
    let inline_csv = dust_table::write_csv(
        lake.query(&query_name).map_err(|e| format!("{e:?}"))?,
        CsvOptions::default(),
    );
    let state = ServerState::new(LakeSession::new(lake, PipelineConfig::fast()), None);

    let requests = [
        format!("{{\"id\":\"one\",\"query\":\"{query_name}\",\"k\":5}}"),
        format!("{{\"id\":\"sim\",\"query\":\"{query_name}\",\"k\":3,\"mode\":\"similar\"}}"),
        format!("{{\"id\":\"batch\",\"queries\":[\"{query_name}\",\"{query_name}\"],\"k\":4}}"),
        format!(
            "{{\"id\":\"inline\",\"csv\":\"{}\",\"k\":2}}",
            json::escape(&inline_csv)
        ),
        "{\"id\":\"bad\",\"k\":1}".to_string(),
        format!(
            "{{\"id\":\"badmode\",\"queries\":[\"{query_name}\"],\"k\":2,\"mode\":\"similar\"}}"
        ),
        "{\"id\":\"nostore\",\"mode\":\"checkpoint\"}".to_string(),
        "{\"id\":\"stats\",\"mode\":\"stats\"}".to_string(),
    ];
    for request in &requests {
        let response = handle_request(&state, request);
        let parsed = json::parse(&response)
            .map_err(|e| format!("selftest: unparseable response {response:?}: {e}"))?;
        let id = parsed.get("id").and_then(JsonValue::as_str).unwrap_or("");
        match id {
            "one" | "inline" => {
                if parsed.get("generation").and_then(JsonValue::as_usize) != Some(0) {
                    return Err(format!("selftest: no generation in {response}"));
                }
                let tuples = parsed
                    .get("result")
                    .and_then(|r| r.get("tuples"))
                    .ok_or_else(|| format!("selftest: no tuples in {response}"))?;
                match tuples {
                    JsonValue::Array(items) if !items.is_empty() => {}
                    _ => return Err(format!("selftest: empty result for {id}: {response}")),
                }
            }
            "sim" => {
                if parsed
                    .get("result")
                    .and_then(|r| r.get("similar"))
                    .is_none()
                {
                    return Err(format!("selftest: no similar tuples: {response}"));
                }
            }
            "batch" => match parsed.get("batch") {
                Some(JsonValue::Array(items)) if items.len() == 2 => {}
                _ => return Err(format!("selftest: bad batch response: {response}")),
            },
            "stats" => {
                let result = parsed
                    .get("result")
                    .ok_or_else(|| format!("selftest: no result in {response}"))?;
                match result.get("shards") {
                    Some(JsonValue::Array(items)) if !items.is_empty() => {
                        for shard in items {
                            if shard.get("live").and_then(JsonValue::as_usize).is_none()
                                || shard.get("dead").and_then(JsonValue::as_usize).is_none()
                            {
                                return Err(format!(
                                    "selftest: shard stats lack live/dead: {response}"
                                ));
                            }
                        }
                    }
                    _ => return Err(format!("selftest: no shard stats: {response}")),
                }
                if result.get("wal") != Some(&JsonValue::Null) {
                    return Err(format!(
                        "selftest: wal must be null without --snapshot-dir: {response}"
                    ));
                }
                // history window counters: default depth, nothing retained
                // yet (no mutation has published a second generation)
                let history = result
                    .get("history")
                    .ok_or_else(|| format!("selftest: stats lack history: {response}"))?;
                let default_depth = dust_core::SessionOptions::default().history;
                if history.get("depth").and_then(JsonValue::as_usize) != Some(default_depth)
                    || history.get("retained").and_then(JsonValue::as_usize) != Some(0)
                {
                    return Err(format!(
                        "selftest: history stats must report depth {default_depth}, retained 0: \
                         {response}"
                    ));
                }
                // the stdio path serves no pool: server must be null
                if result.get("server") != Some(&JsonValue::Null) {
                    return Err(format!(
                        "selftest: server stats must be null off TCP: {response}"
                    ));
                }
            }
            "bad" | "badmode" | "nostore" => {
                if parsed.get("error").is_none() {
                    return Err(format!("selftest: bad request not rejected: {response}"));
                }
                if parsed.get("kind").and_then(JsonValue::as_str) != Some("bad_request") {
                    return Err(format!(
                        "selftest: error lacks kind=bad_request: {response}"
                    ));
                }
            }
            other => return Err(format!("selftest: unexpected id {other:?}")),
        }
    }

    // ---- mutation cycle: add → query → remove → query ---------------------
    // After the remove, the query result must be identical to the pre-add
    // one: the mutation deltas leave no residue (the same guarantee
    // tests/session_mutation.rs pins against a full rebuild).
    let query_request = format!("{{\"id\":\"cycle\",\"query\":\"{query_name}\",\"k\":5}}");
    let result_of = |response: &str| -> Result<JsonValue, String> {
        let parsed = json::parse(response)
            .map_err(|e| format!("selftest: unparseable response {response:?}: {e}"))?;
        if let Some(error) = parsed.get("error") {
            return Err(format!("selftest: unexpected error response: {error:?}"));
        }
        parsed
            .get("result")
            .cloned()
            .ok_or_else(|| format!("selftest: no result in {response}"))
    };
    let before = result_of(&handle_request(&state, &query_request))?;

    let mutations = [
        format!(
            "{{\"id\":\"grow\",\"mode\":\"add_table\",\"name\":\"selftest_added\",\"csv\":\"{}\"}}",
            json::escape(&inline_csv)
        ),
        "{\"id\":\"shrink\",\"mode\":\"remove_table\",\"table\":\"selftest_added\"}".to_string(),
    ];
    let generations = [1usize, 2];
    let mut at_generation_1 = None;
    for (request, expected_gen) in mutations.iter().zip(generations) {
        let response = handle_request(&state, request);
        let result = result_of(&response)?;
        let generation = result
            .get("generation")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| format!("selftest: no generation in {response}"))?;
        if generation != expected_gen {
            return Err(format!(
                "selftest: expected generation {expected_gen}, got {generation}: {response}"
            ));
        }
        if expected_gen == 1 {
            // the added table serves immediately
            let mid = result_of(&handle_request(&state, &query_request))?;
            if mid.get("tuples").is_none() {
                return Err(format!("selftest: no tuples after add: {mid:?}"));
            }
            at_generation_1 = Some(mid);
        }
    }
    let after = result_of(&handle_request(&state, &query_request))?;
    if before != after {
        return Err(format!(
            "selftest: post-remove result differs from pre-add result\n  before: {before:?}\n  after: {after:?}"
        ));
    }

    // ---- pinned-generation reads ------------------------------------------
    // The history ring retains the displaced snapshots: a query carrying
    // {"generation": g} answers from exactly that lake version, so the
    // pre-add (generation 0) and mid-mutation (generation 1) results are
    // reproducible bit for bit even though the current generation is 2.
    for (generation, expected_pin) in [(0usize, &before), (1, at_generation_1.as_ref().unwrap())] {
        let pin_request = format!(
            "{{\"id\":\"pin{generation}\",\"query\":\"{query_name}\",\"k\":5,\
             \"generation\":{generation}}}"
        );
        let response = handle_request(&state, &pin_request);
        let parsed = json::parse(&response).map_err(|e| format!("selftest: {e}"))?;
        if parsed.get("generation").and_then(JsonValue::as_usize) != Some(generation) {
            return Err(format!(
                "selftest: pinned read did not echo generation {generation}: {response}"
            ));
        }
        let pinned = result_of(&response)?;
        if &pinned != expected_pin {
            return Err(format!(
                "selftest: pinned read at generation {generation} differs from the result \
                 served when that generation was current"
            ));
        }
    }
    // past the window (never published): the typed eviction error
    let evicted = handle_request(
        &state,
        &format!("{{\"id\":\"pinx\",\"query\":\"{query_name}\",\"k\":5,\"generation\":99}}"),
    );
    let parsed = json::parse(&evicted).map_err(|e| format!("selftest: {e}"))?;
    if parsed.get("kind").and_then(JsonValue::as_str) != Some("generation_evicted") {
        return Err(format!(
            "selftest: out-of-window pin must fail with kind=generation_evicted: {evicted}"
        ));
    }
    // duplicate add and missing remove are rejected without mutating
    let lake_table = state
        .session
        .lake()
        .table_names()
        .first()
        .cloned()
        .ok_or("selftest: lake has no tables")?;
    for bad in [
        format!(
            "{{\"id\":\"dup\",\"mode\":\"add_table\",\"name\":\"{lake_table}\",\"csv\":\"a\\n1\"}}"
        ),
        "{\"id\":\"ghost\",\"mode\":\"remove_table\",\"table\":\"selftest_added\"}".to_string(),
    ] {
        let response = handle_request(&state, &bad);
        let parsed = json::parse(&response).map_err(|e| format!("selftest: {e}"))?;
        if parsed.get("error").is_none() {
            return Err(format!("selftest: bad mutation not rejected: {response}"));
        }
        if parsed.get("kind").and_then(JsonValue::as_str) != Some("table") {
            return Err(format!(
                "selftest: mutation error lacks kind=table: {response}"
            ));
        }
    }

    // ---- durability cycle: save → mutate (WAL) → drop → recover -----------
    let snapshot_dir = options
        .snapshot_dir
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("dust-serve-selftest-{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    // dust-lint: lock(durability)
    *state.durable.lock().unwrap_or_else(|e| e.into_inner()) = Some(
        SnapshotStore::create(&snapshot_dir, &state.session)
            .map_err(|e| format!("selftest: save failed: {e}"))?,
    );
    // mutate through the server so the record lands in the WAL
    let regrow = format!(
        "{{\"id\":\"regrow\",\"mode\":\"add_table\",\"name\":\"selftest_saved\",\"csv\":\"{}\"}}",
        json::escape(&inline_csv)
    );
    result_of(&handle_request(&state, &regrow))?;
    let expected = result_of(&handle_request(&state, &query_request))?;
    let expected_generation = state.session.generation();

    // the stats probe on a durable session sees the un-checkpointed record
    let stats = result_of(&handle_request(
        &state,
        "{\"id\":\"ds\",\"mode\":\"stats\"}",
    ))?;
    let wal = stats
        .get("wal")
        .ok_or_else(|| format!("selftest: durable stats lack wal: {stats:?}"))?;
    if wal.get("records").and_then(JsonValue::as_usize) != Some(1)
        || wal
            .get("bytes_since_checkpoint")
            .and_then(JsonValue::as_usize)
            .unwrap_or(0)
            == 0
    {
        return Err(format!(
            "selftest: durable stats must report 1 WAL record and nonzero bytes: {stats:?}"
        ));
    }

    // drop the entire serving state; recover from disk alone (WAL replay)
    drop(state);
    let (store, session, report) = SnapshotStore::open(&snapshot_dir)
        .map_err(|e| format!("selftest: recovery failed: {e}"))?;
    if report.replayed != 1 || session.generation() != expected_generation {
        return Err(format!(
            "selftest: recovery replayed {} record(s) to generation {}, expected 1 → {expected_generation}",
            report.replayed,
            session.generation()
        ));
    }
    let state = ServerState::new(session, Some(store));
    let recovered = result_of(&handle_request(&state, &query_request))?;
    if recovered != expected {
        return Err(format!(
            "selftest: recovered session answers differently\n  expected: {expected:?}\n  recovered: {recovered:?}"
        ));
    }

    // checkpoint truncates the WAL; a second recovery replays nothing
    let checkpoint = result_of(&handle_request(
        &state,
        "{\"id\":\"ck\",\"mode\":\"checkpoint\"}",
    ))?;
    if checkpoint.get("epoch").and_then(JsonValue::as_usize) != Some(2) {
        return Err(format!(
            "selftest: checkpoint did not advance epoch: {checkpoint:?}"
        ));
    }
    drop(state);
    let (store, session, report) = SnapshotStore::open(&snapshot_dir)
        .map_err(|e| format!("selftest: post-checkpoint recovery failed: {e}"))?;
    if report.replayed != 0 || session.generation() != expected_generation {
        return Err(format!(
            "selftest: post-checkpoint recovery replayed {} record(s), expected 0",
            report.replayed
        ));
    }
    let state = ServerState::new(session, Some(store));
    let reread = result_of(&handle_request(&state, &query_request))?;
    if reread != expected {
        return Err("selftest: post-checkpoint recovery answers differently".to_string());
    }
    // the checkpoint truncated the WAL; the byte counter restarts at zero
    let stats = result_of(&handle_request(
        &state,
        "{\"id\":\"cs\",\"mode\":\"stats\"}",
    ))?;
    let wal = stats
        .get("wal")
        .ok_or_else(|| format!("selftest: post-checkpoint stats lack wal: {stats:?}"))?;
    if wal.get("records").and_then(JsonValue::as_usize) != Some(0)
        || wal
            .get("bytes_since_checkpoint")
            .and_then(JsonValue::as_usize)
            != Some(0)
    {
        return Err(format!(
            "selftest: post-checkpoint stats must report an empty WAL: {stats:?}"
        ));
    }

    // ---- concurrent TCP round-trip (worker pool) --------------------------
    // More parallel reading clients than pool workers + a mutating client
    // against one live TCP server, then a graceful shutdown whose final
    // checkpoint leaves the WAL empty. Readers assert the generation
    // token: any response at the starting generation must be bit-identical
    // to the stdin-served one.
    let (pool_workers, pool_cap) = (2usize, 64usize);
    let mut state = state;
    state.serving = Some((pool_workers, pool_cap));
    let state = Arc::new(state);
    let listener =
        TcpListener::bind("127.0.0.1:0").map_err(|e| format!("selftest: bind failed: {e}"))?;
    let addr = listener
        .local_addr()
        .map_err(|e| format!("selftest: {e}"))?;
    let server = {
        let state = Arc::clone(&state);
        std::thread::spawn(move || serve_tcp(&state, listener))
    };
    let tcp_request = |request: &str| -> Result<JsonValue, String> {
        let mut stream =
            TcpStream::connect(addr).map_err(|e| format!("selftest: connect failed: {e}"))?;
        writeln!(stream, "{request}").map_err(|e| format!("selftest: send failed: {e}"))?;
        let mut reader = std::io::BufReader::new(stream);
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("selftest: recv failed: {e}"))?;
        json::parse(line.trim())
            .map_err(|e| format!("selftest: unparseable TCP response {line:?}: {e}"))
    };

    let base_generation = expected_generation as usize;
    let reading_clients = 6usize; // deliberately more clients than workers
    std::thread::scope(|scope| -> Result<(), String> {
        let mut clients = Vec::new();
        for client in 0..reading_clients {
            let tcp_request = &tcp_request;
            let query_request = &query_request;
            let expected = &expected;
            clients.push(scope.spawn(move || -> Result<(), String> {
                for round in 0..3usize {
                    let parsed = tcp_request(query_request)?;
                    if let Some(error) = parsed.get("error") {
                        return Err(format!(
                            "selftest: TCP client {client} round {round}: {error:?}"
                        ));
                    }
                    let generation = parsed
                        .get("generation")
                        .and_then(JsonValue::as_usize)
                        .ok_or("selftest: TCP response lacks generation")?;
                    let result = parsed
                        .get("result")
                        .ok_or("selftest: TCP response lacks result")?;
                    // the consistency token: at the starting generation the
                    // result must be bit-identical to the stdin-served one
                    if generation == base_generation && result != expected {
                        return Err(format!(
                            "selftest: TCP result at generation {generation} differs from the \
                             stdin-served one"
                        ));
                    }
                }
                Ok(())
            }));
        }
        // a mutating client interleaved with the readers
        let mutator = {
            let tcp_request = &tcp_request;
            let inline_csv = &inline_csv;
            scope.spawn(move || -> Result<(), String> {
                let add = format!(
                    "{{\"id\":\"tadd\",\"mode\":\"add_table\",\"name\":\"tcp_added\",\"csv\":\"{}\"}}",
                    json::escape(inline_csv)
                );
                for (request, label) in [
                    (add.as_str(), "add"),
                    (
                        "{\"id\":\"tdel\",\"mode\":\"remove_table\",\"table\":\"tcp_added\"}",
                        "remove",
                    ),
                ] {
                    let parsed = tcp_request(request)?;
                    if let Some(error) = parsed.get("error") {
                        return Err(format!("selftest: TCP {label} failed: {error:?}"));
                    }
                }
                Ok(())
            })
        };
        for client in clients {
            client
                .join()
                .map_err(|_| "selftest: TCP client panicked".to_string())??;
        }
        mutator
            .join()
            .map_err(|_| "selftest: TCP mutator panicked".to_string())??;
        Ok(())
    })?;

    // after add + remove the lake is back to the recovered content: the
    // query must answer identically, two generations later
    let settled = tcp_request(&query_request)?;
    if settled.get("generation").and_then(JsonValue::as_usize) != Some(base_generation + 2) {
        return Err(format!(
            "selftest: expected generation {} after the TCP mutation cycle, got {settled:?}",
            base_generation + 2
        ));
    }
    if settled.get("result") != Some(&expected) {
        return Err("selftest: post-TCP-mutation result differs".to_string());
    }

    // a pinned read over TCP: the pre-mutation generation still serves,
    // bit-identical, two generations later
    let pinned = tcp_request(&format!(
        "{{\"id\":\"tpin\",\"query\":\"{query_name}\",\"k\":5,\"generation\":{base_generation}}}"
    ))?;
    if pinned.get("generation").and_then(JsonValue::as_usize) != Some(base_generation)
        || pinned.get("result") != Some(&expected)
    {
        return Err(format!(
            "selftest: TCP pinned read at generation {base_generation} differs: {pinned:?}"
        ));
    }

    // the stats probe sees the pool: worker/connection/history counters
    let tcp_stats = tcp_request("{\"id\":\"ts\",\"mode\":\"stats\"}")?;
    let result = tcp_stats
        .get("result")
        .ok_or("selftest: TCP stats lack result")?;
    let pool_stats = result
        .get("server")
        .ok_or("selftest: TCP stats lack server")?;
    if pool_stats.get("workers").and_then(JsonValue::as_usize) != Some(pool_workers)
        || pool_stats
            .get("max_connections")
            .and_then(JsonValue::as_usize)
            != Some(pool_cap)
    {
        return Err(format!(
            "selftest: TCP stats must report {pool_workers} workers / cap {pool_cap}: \
             {tcp_stats:?}"
        ));
    }
    // every tcp_request above opened one connection; all reached the pool
    let accepted = pool_stats
        .get("accepted")
        .and_then(JsonValue::as_usize)
        .unwrap_or(0);
    let served = pool_stats
        .get("served_lines")
        .and_then(JsonValue::as_usize)
        .unwrap_or(0);
    let min_requests = reading_clients * 3 + 2 /* mutator */ + 2 /* settled + pinned */;
    if accepted < min_requests || served < min_requests {
        return Err(format!(
            "selftest: pool counters too low (accepted {accepted}, served {served}, \
             expected ≥ {min_requests}): {tcp_stats:?}"
        ));
    }
    let history = result
        .get("history")
        .ok_or("selftest: TCP stats lack history")?;
    if history.get("newest").and_then(JsonValue::as_usize) != Some(base_generation + 2)
        || history.get("retained").and_then(JsonValue::as_usize) != Some(2)
    {
        return Err(format!(
            "selftest: TCP history window must retain the 2 mutation generations: {tcp_stats:?}"
        ));
    }

    // graceful shutdown: the accept loop and every connection drain
    let bye = tcp_request("{\"id\":\"bye\",\"mode\":\"shutdown\"}")?;
    if bye.get("result").and_then(|r| r.get("shutdown")) != Some(&JsonValue::Bool(true)) {
        return Err(format!("selftest: shutdown not acknowledged: {bye:?}"));
    }
    server
        .join()
        .map_err(|_| "selftest: server thread panicked".to_string())??;
    shutdown_checkpoint(&state);
    drop(state);

    // the shutdown checkpoint folded the TCP mutations into the snapshot:
    // recovery replays nothing and lands on the post-mutation generation
    let (_store, session, report) = SnapshotStore::open(&snapshot_dir)
        .map_err(|e| format!("selftest: post-shutdown recovery failed: {e}"))?;
    if report.replayed != 0 || session.generation() != expected_generation + 2 {
        return Err(format!(
            "selftest: post-shutdown recovery replayed {} record(s) to generation {}, \
             expected 0 → {}",
            report.replayed,
            session.generation(),
            expected_generation + 2
        ));
    }
    if options.snapshot_dir.is_none() {
        let _ = std::fs::remove_dir_all(&snapshot_dir);
    }

    eprintln!(
        "serve: selftest ok ({} requests + mutation cycle + pinned-generation reads + recovery \
         cycle + worker-pool TCP round-trip ({reading_clients} clients on {pool_workers} \
         workers) verified)",
        requests.len()
    );
    Ok(())
}
