//! `serve` — the zero-to-server demo of the resident [`LakeSession`] layer.
//!
//! Builds a session over a data lake **once** (pre-embedded shards, warm
//! candidate indexes, one shared tuple model), then answers JSONL requests
//! from stdin (or a file) with JSONL responses on stdout. Logs go to
//! stderr so the response stream stays machine-readable:
//!
//! ```sh
//! # diverse-tuple queries against a generated benchmark lake
//! printf '%s\n' \
//!   '{"id":"q1","query":"<lake query name>","k":5}' \
//!   '{"id":"q2","csv":"Park Name,Country\nRiver Park,USA","k":3}' \
//!   | cargo run --release -p dust-bench --bin serve -- --benchmark tiny
//! ```
//!
//! Request fields: `query` (name of a lake query table) **or** `csv` (an
//! inline CSV table); optional `id` (echoed back), `k` (default 10),
//! `mode` (`"diverse"` — full Algorithm 1, the default — or `"similar"` —
//! nearest lake tuples from the resident shards, the Sec. 6.5 retrieval
//! shape). Batched requests: `{"queries": ["name1", "name2"], "k": 5}`
//! runs the whole array through `query_batch` in one go.
//!
//! The lake can be mutated in place — incremental per-shard deltas, no
//! session rebuild (results stay bit-identical to a rebuild; see
//! `tests/session_mutation.rs`):
//!
//! ```text
//! {"id":"m1","mode":"add_table","name":"parks_new","csv":"Park Name,Country\nDelta Park,USA"}
//! {"id":"m2","mode":"remove_table","table":"parks_new"}
//! ```
//!
//! Mutation responses echo the mutated table, the new lake size, and the
//! session generation (the count of successful mutations). A duplicate
//! `add_table` name is an error (remove first to replace), matching the
//! lake's pinned duplicate semantics.
//!
//! Flags: `--benchmark tiny|santos|ugen` (generated lake, default tiny),
//! `--lake-dir <dir>` (load every `*.csv` file as a lake table),
//! `--search overlap|d3l|starmie`, `--finetune` (train the DUST model at
//! startup instead of serving pre-trained embeddings), `--shards N`,
//! `--requests <file>` (read JSONL from a file instead of stdin),
//! `--selftest` (build a tiny lake, run built-in requests, verify, exit).
//!
//! [`LakeSession`]: dust_core::LakeSession

use dust_bench::json::{self, JsonValue};
use dust_bench::setup::Scale;
use dust_core::{DustResult, LakeSession, PipelineConfig, SearchTechnique, TupleEmbedderKind};
use dust_datagen::BenchmarkConfig;
use dust_embed::{FineTuneConfig, PretrainedModel};
use dust_table::{parse_csv, CsvOptions, DataLake, Table};
use std::io::{BufRead, Write};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&args) {
        eprintln!("serve: {message}");
        std::process::exit(1);
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let options = CliOptions::parse(args)?;
    if options.selftest {
        return selftest();
    }

    // ---- build the lake ---------------------------------------------------
    let lake = match &options.lake_dir {
        Some(dir) => load_lake_dir(dir)?,
        None => generate_lake(&options.benchmark)?,
    };
    eprintln!(
        "serve: lake {:?}: {} tables, {} queries",
        lake.name(),
        lake.num_tables(),
        lake.num_queries()
    );

    // ---- build the resident session (the embed-once step) -----------------
    let config = options.pipeline_config();
    let mut session = LakeSession::with_options(
        lake,
        config,
        dust_core::SessionOptions {
            num_shards: options.shards,
        },
    );
    let stats = session.stats();
    eprintln!(
        "serve: session ready in {:.2}s — {} tuples + {} columns resident across {} shards \
         (tuple dim {}, column dim {}), search = {}",
        stats.build_secs,
        stats.tuples,
        stats.columns,
        stats.shards,
        stats.tuple_dim,
        stats.column_dim,
        session.config().search.name(),
    );
    for (i, (tables, tuples)) in stats.shard_sizes.iter().enumerate() {
        eprintln!("serve:   shard {i}: {tables} tables, {tuples} tuples");
    }

    // ---- serve ------------------------------------------------------------
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0usize;
    let mut process = |line: &str| -> Result<(), String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(());
        }
        let response = handle_request(&mut session, trimmed);
        writeln!(out, "{response}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        served += 1;
        Ok(())
    };
    match &options.requests {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            for line in text.lines() {
                process(line)?;
            }
        }
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| e.to_string())?;
                process(&line)?;
            }
        }
    }
    eprintln!("serve: {served} request(s) served");
    Ok(())
}

struct CliOptions {
    benchmark: String,
    lake_dir: Option<String>,
    search: SearchTechnique,
    finetune: bool,
    shards: usize,
    requests: Option<String>,
    selftest: bool,
}

impl CliOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = CliOptions {
            benchmark: "tiny".to_string(),
            lake_dir: None,
            search: SearchTechnique::Overlap,
            finetune: false,
            shards: 4,
            requests: None,
            selftest: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--benchmark" => options.benchmark = value("--benchmark")?,
                "--lake-dir" => options.lake_dir = Some(value("--lake-dir")?),
                "--search" => {
                    options.search = match value("--search")?.as_str() {
                        "overlap" => SearchTechnique::Overlap,
                        "d3l" => SearchTechnique::D3l,
                        "starmie" => SearchTechnique::Starmie,
                        other => return Err(format!("unknown search technique {other:?}")),
                    }
                }
                "--finetune" => options.finetune = true,
                "--shards" => {
                    options.shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?
                }
                "--requests" => options.requests = Some(value("--requests")?),
                "--selftest" => options.selftest = true,
                "--help" | "-h" => {
                    return Err("see the module docs: serve [--benchmark tiny|santos|ugen] \
                                [--lake-dir DIR] [--search overlap|d3l|starmie] [--finetune] \
                                [--shards N] [--requests FILE] [--selftest]"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(options)
    }

    fn pipeline_config(&self) -> PipelineConfig {
        let mut config = PipelineConfig {
            search: self.search,
            ..PipelineConfig::fast()
        };
        if self.finetune {
            config.embedder = TupleEmbedderKind::FineTuned {
                backbone: PretrainedModel::Roberta,
                config: FineTuneConfig {
                    max_epochs: 15,
                    patience: 3,
                    ..FineTuneConfig::default()
                },
                training_pairs: 150,
            };
        }
        config
    }
}

fn generate_lake(benchmark: &str) -> Result<DataLake, String> {
    let config = match benchmark {
        "tiny" => BenchmarkConfig::tiny(),
        "santos" => Scale::Small.santos_config(),
        "ugen" => Scale::Small.ugen_config(),
        other => return Err(format!("unknown benchmark {other:?} (tiny|santos|ugen)")),
    };
    Ok(config.generate().lake)
}

/// Load every `*.csv` file in a directory as one lake table (file stem =
/// table name).
fn load_lake_dir(dir: &str) -> Result<DataLake, String> {
    let mut lake = DataLake::new(dir.to_string());
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .csv files in {dir}"));
    }
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("table")
            .to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let table = parse_csv(name, &text, CsvOptions::default()).map_err(|e| format!("{e:?}"))?;
        lake.add_table(table).map_err(|e| format!("{e:?}"))?;
    }
    Ok(lake)
}

/// Handle one JSONL request line; always returns one JSON response line.
fn handle_request(session: &mut LakeSession, line: &str) -> String {
    match serve_line(session, line) {
        Ok(response) => response,
        Err((id, message)) => format!(
            "{{\"id\":\"{}\",\"error\":\"{}\"}}",
            json::escape(&id),
            json::escape(&message)
        ),
    }
}

fn serve_line(session: &mut LakeSession, line: &str) -> Result<String, (String, String)> {
    let request = json::parse(line).map_err(|e| (String::new(), format!("bad request: {e}")))?;
    let id = request
        .get("id")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    let fail = |message: String| (id.clone(), message);
    let k = match request.get("k") {
        None => 10,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| fail("k must be a non-negative integer".to_string()))?,
    };

    let mode = request
        .get("mode")
        .and_then(JsonValue::as_str)
        .unwrap_or("diverse");

    // batched form: {"queries": [...], "k": ...}
    if let Some(JsonValue::Array(names)) = request.get("queries") {
        // a non-default mode would be silently ignored here — reject it so
        // a client never misreads a diverse batch as similar-tuple results
        if mode != "diverse" {
            return Err(fail(format!(
                "batched requests only support mode \"diverse\" (got {mode:?})"
            )));
        }
        let queries: Vec<Table> = names
            .iter()
            .map(|name| {
                let name = name
                    .as_str()
                    .ok_or_else(|| fail("queries must be strings".to_string()))?;
                resolve_query(session, name).map_err(&fail)
            })
            .collect::<Result<_, _>>()?;
        let start = Instant::now();
        let results = session.query_batch(&queries, k);
        let secs = start.elapsed().as_secs_f64();
        let rendered: Vec<String> = results
            .iter()
            .map(|r| match r {
                Ok(result) => render_result(result),
                Err(e) => format!("{{\"error\":\"{}\"}}", json::escape(&format!("{e:?}"))),
            })
            .collect();
        return Ok(format!(
            "{{\"id\":\"{}\",\"k\":{k},\"batch\":[{}],\"secs\":{}}}",
            json::escape(&id),
            rendered.join(","),
            json::number(secs)
        ));
    }

    // mutation modes: incremental per-shard deltas on the resident session
    // (no rebuild; results afterwards are bit-identical to one)
    if mode == "add_table" || mode == "remove_table" {
        let start = Instant::now();
        let body = if mode == "add_table" {
            let name = request
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| fail("add_table needs \"name\"".to_string()))?;
            let csv = request
                .get("csv")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| fail("add_table needs \"csv\"".to_string()))?;
            let table = parse_csv(name, csv, CsvOptions::default())
                .map_err(|e| fail(format!("bad csv: {e:?}")))?;
            session
                .add_table(table)
                .map_err(|e| fail(format!("{e:?}")))?;
            format!(
                "{{\"added\":\"{}\",\"tables\":{},\"generation\":{}}}",
                json::escape(name),
                session.lake().num_tables(),
                session.generation()
            )
        } else {
            let name = request
                .get("table")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| fail("remove_table needs \"table\"".to_string()))?;
            session
                .remove_table(name)
                .map_err(|e| fail(format!("{e:?}")))?;
            format!(
                "{{\"removed\":\"{}\",\"tables\":{},\"generation\":{}}}",
                json::escape(name),
                session.lake().num_tables(),
                session.generation()
            )
        };
        let secs = start.elapsed().as_secs_f64();
        return Ok(format!(
            "{{\"id\":\"{}\",\"result\":{body},\"secs\":{}}}",
            json::escape(&id),
            json::number(secs)
        ));
    }

    // single query: by lake name or inline CSV
    let query = if let Some(name) = request.get("query").and_then(JsonValue::as_str) {
        resolve_query(session, name).map_err(&fail)?
    } else if let Some(csv) = request.get("csv").and_then(JsonValue::as_str) {
        let name = request
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("inline_query");
        parse_csv(name, csv, CsvOptions::default()).map_err(|e| fail(format!("bad csv: {e:?}")))?
    } else {
        return Err(fail(
            "request needs \"query\", \"queries\", or \"csv\"".to_string(),
        ));
    };

    let start = Instant::now();
    let body = match mode {
        "diverse" => {
            let result = session
                .query(&query, k)
                .map_err(|e| fail(format!("{e:?}")))?;
            render_result(&result)
        }
        "similar" => {
            let ranked = session.similar_tuples(&query, k);
            let items: Vec<String> = ranked
                .iter()
                .map(|r| {
                    format!(
                        "{{\"table\":\"{}\",\"row\":{},\"score\":{}}}",
                        json::escape(&r.table),
                        r.row,
                        json::number(r.score)
                    )
                })
                .collect();
            format!("{{\"similar\":[{}]}}", items.join(","))
        }
        other => return Err(fail(format!("unknown mode {other:?}"))),
    };
    let secs = start.elapsed().as_secs_f64();
    Ok(format!(
        "{{\"id\":\"{}\",\"k\":{k},\"result\":{body},\"secs\":{}}}",
        json::escape(&id),
        json::number(secs)
    ))
}

fn resolve_query(session: &LakeSession, name: &str) -> Result<Table, String> {
    session
        .lake()
        .query(name)
        .or_else(|_| session.lake().table(name))
        .cloned()
        .map_err(|_| format!("no lake query or table named {name:?}"))
}

/// Render a `DustResult` as a JSON object (tuples as cell-string arrays).
fn render_result(result: &DustResult) -> String {
    let tuples: Vec<String> = result
        .tuples
        .iter()
        .map(|t| {
            let mut rendered: Vec<String> = Vec::with_capacity(t.headers().len());
            for header in t.headers() {
                let cell = t
                    .value_for(header)
                    .map(|v| v.render().to_string())
                    .unwrap_or_default();
                rendered.push(format!("\"{}\"", json::escape(&cell)));
            }
            format!("[{}]", rendered.join(","))
        })
        .collect();
    format!(
        "{{\"tables\":{},\"dropped\":{},\"candidates\":{},\"tuples\":[{}],\
         \"avg_diversity\":{},\"min_diversity\":{}}}",
        json::string_array(result.retrieved_tables.iter().map(String::as_str)),
        json::string_array(result.dropped_tables.iter().map(String::as_str)),
        result.candidate_tuples,
        tuples.join(","),
        json::number(result.diversity.average),
        json::number(result.diversity.minimum)
    )
}

/// Build a tiny lake, serve built-in requests, verify the responses parse
/// and contain results. Used by CI as the serving smoke test.
fn selftest() -> Result<(), String> {
    let lake = BenchmarkConfig::tiny().generate().lake;
    let query_name = lake
        .query_names()
        .first()
        .cloned()
        .ok_or("tiny benchmark generated no queries")?;
    // an inline-CSV request built from a real query table, so alignment has
    // something to union (arbitrary CSV also works, it just may yield an
    // empty candidate pool on an unrelated lake)
    let inline_csv = dust_table::write_csv(
        lake.query(&query_name).map_err(|e| format!("{e:?}"))?,
        CsvOptions::default(),
    );
    let mut session = LakeSession::new(lake, PipelineConfig::fast());

    let requests = [
        format!("{{\"id\":\"one\",\"query\":\"{query_name}\",\"k\":5}}"),
        format!("{{\"id\":\"sim\",\"query\":\"{query_name}\",\"k\":3,\"mode\":\"similar\"}}"),
        format!("{{\"id\":\"batch\",\"queries\":[\"{query_name}\",\"{query_name}\"],\"k\":4}}"),
        format!(
            "{{\"id\":\"inline\",\"csv\":\"{}\",\"k\":2}}",
            json::escape(&inline_csv)
        ),
        "{\"id\":\"bad\",\"k\":1}".to_string(),
        format!(
            "{{\"id\":\"badmode\",\"queries\":[\"{query_name}\"],\"k\":2,\"mode\":\"similar\"}}"
        ),
    ];
    for request in &requests {
        let response = handle_request(&mut session, request);
        let parsed = json::parse(&response)
            .map_err(|e| format!("selftest: unparseable response {response:?}: {e}"))?;
        let id = parsed.get("id").and_then(JsonValue::as_str).unwrap_or("");
        match id {
            "one" | "inline" => {
                let tuples = parsed
                    .get("result")
                    .and_then(|r| r.get("tuples"))
                    .ok_or_else(|| format!("selftest: no tuples in {response}"))?;
                match tuples {
                    JsonValue::Array(items) if !items.is_empty() => {}
                    _ => return Err(format!("selftest: empty result for {id}: {response}")),
                }
            }
            "sim" => {
                if parsed
                    .get("result")
                    .and_then(|r| r.get("similar"))
                    .is_none()
                {
                    return Err(format!("selftest: no similar tuples: {response}"));
                }
            }
            "batch" => match parsed.get("batch") {
                Some(JsonValue::Array(items)) if items.len() == 2 => {}
                _ => return Err(format!("selftest: bad batch response: {response}")),
            },
            "bad" | "badmode" => {
                if parsed.get("error").is_none() {
                    return Err(format!("selftest: bad request not rejected: {response}"));
                }
            }
            other => return Err(format!("selftest: unexpected id {other:?}")),
        }
    }

    // ---- mutation cycle: add → query → remove → query ---------------------
    // After the remove, the query result must be identical to the pre-add
    // one: the mutation deltas leave no residue (the same guarantee
    // tests/session_mutation.rs pins against a full rebuild).
    let query_request = format!("{{\"id\":\"cycle\",\"query\":\"{query_name}\",\"k\":5}}");
    let result_of = |response: &str| -> Result<JsonValue, String> {
        let parsed = json::parse(response)
            .map_err(|e| format!("selftest: unparseable response {response:?}: {e}"))?;
        if let Some(error) = parsed.get("error") {
            return Err(format!("selftest: unexpected error response: {error:?}"));
        }
        parsed
            .get("result")
            .cloned()
            .ok_or_else(|| format!("selftest: no result in {response}"))
    };
    let before = result_of(&handle_request(&mut session, &query_request))?;

    let mutations = [
        format!(
            "{{\"id\":\"grow\",\"mode\":\"add_table\",\"name\":\"selftest_added\",\"csv\":\"{}\"}}",
            json::escape(&inline_csv)
        ),
        "{\"id\":\"shrink\",\"mode\":\"remove_table\",\"table\":\"selftest_added\"}".to_string(),
    ];
    let generations = [1usize, 2];
    for (request, expected_gen) in mutations.iter().zip(generations) {
        let response = handle_request(&mut session, request);
        let result = result_of(&response)?;
        let generation = result
            .get("generation")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| format!("selftest: no generation in {response}"))?;
        if generation != expected_gen {
            return Err(format!(
                "selftest: expected generation {expected_gen}, got {generation}: {response}"
            ));
        }
        if expected_gen == 1 {
            // the added table serves immediately
            let mid = result_of(&handle_request(&mut session, &query_request))?;
            if mid.get("tuples").is_none() {
                return Err(format!("selftest: no tuples after add: {mid:?}"));
            }
        }
    }
    let after = result_of(&handle_request(&mut session, &query_request))?;
    if before != after {
        return Err(format!(
            "selftest: post-remove result differs from pre-add result\n  before: {before:?}\n  after: {after:?}"
        ));
    }
    // duplicate add and missing remove are rejected without mutating
    let lake_table = session
        .lake()
        .table_names()
        .first()
        .cloned()
        .ok_or("selftest: lake has no tables")?;
    for bad in [
        format!(
            "{{\"id\":\"dup\",\"mode\":\"add_table\",\"name\":\"{lake_table}\",\"csv\":\"a\\n1\"}}"
        ),
        "{\"id\":\"ghost\",\"mode\":\"remove_table\",\"table\":\"selftest_added\"}".to_string(),
    ] {
        let response = handle_request(&mut session, &bad);
        let parsed = json::parse(&response).map_err(|e| format!("selftest: {e}"))?;
        if parsed.get("error").is_none() {
            return Err(format!("selftest: bad mutation not rejected: {response}"));
        }
    }

    eprintln!(
        "serve: selftest ok ({} requests + mutation cycle verified)",
        requests.len()
    );
    Ok(())
}
