//! `serve` — the zero-to-server demo of the resident [`LakeSession`] layer.
//!
//! Builds a session over a data lake **once** (pre-embedded shards, warm
//! candidate indexes, one shared tuple model), then answers JSONL requests
//! from stdin (or a file) with JSONL responses on stdout. Logs go to
//! stderr so the response stream stays machine-readable:
//!
//! ```sh
//! # diverse-tuple queries against a generated benchmark lake
//! printf '%s\n' \
//!   '{"id":"q1","query":"<lake query name>","k":5}' \
//!   '{"id":"q2","csv":"Park Name,Country\nRiver Park,USA","k":3}' \
//!   | cargo run --release -p dust-bench --bin serve -- --benchmark tiny
//! ```
//!
//! Request fields: `query` (name of a lake query table) **or** `csv` (an
//! inline CSV table); optional `id` (echoed back), `k` (default 10),
//! `mode` (`"diverse"` — full Algorithm 1, the default — or `"similar"` —
//! nearest lake tuples from the resident shards, the Sec. 6.5 retrieval
//! shape). Batched requests: `{"queries": ["name1", "name2"], "k": 5}`
//! runs the whole array through `query_batch` in one go. Every response
//! echoes the session `generation`, so clients can tell which lake state
//! answered. Error responses keep the request `id` and carry a stable
//! machine-readable `kind` (`bad_request`, `not_found`, `table`, or a
//! persistence kind such as `io`/`corrupt`) next to the human-readable
//! `error` message.
//!
//! The lake can be mutated in place — incremental per-shard deltas, no
//! session rebuild (results stay bit-identical to a rebuild; see
//! `tests/session_mutation.rs`):
//!
//! ```text
//! {"id":"m1","mode":"add_table","name":"parks_new","csv":"Park Name,Country\nDelta Park,USA"}
//! {"id":"m2","mode":"remove_table","table":"parks_new"}
//! ```
//!
//! Mutation responses echo the mutated table, the new lake size, and the
//! session generation (the count of successful mutations). A duplicate
//! `add_table` name is an error (remove first to replace), matching the
//! lake's pinned duplicate semantics.
//!
//! With `--snapshot-dir DIR` the session is **durable**: on startup an
//! existing snapshot is recovered (snapshot load + WAL replay — no
//! re-embedding, no retraining) and every acknowledged mutation is
//! appended to the fsynced WAL before the response is written. A corrupt
//! or version-skewed snapshot degrades gracefully: the error is logged
//! with its kind and the session is rebuilt from the lake, then
//! re-persisted. `{"mode":"checkpoint"}` forces a snapshot rewrite + WAL
//! truncation on demand; `--checkpoint-after N` sets the automatic
//! threshold (default 64 records).
//!
//! Flags: `--benchmark tiny|santos|ugen` (generated lake, default tiny),
//! `--lake-dir <dir>` (load every `*.csv` file as a lake table),
//! `--search overlap|d3l|starmie`, `--finetune` (train the DUST model at
//! startup instead of serving pre-trained embeddings), `--shards N`,
//! `--snapshot-dir <dir>` (durable session: recover on start, WAL on
//! mutation), `--checkpoint-after N`, `--requests <file>` (read JSONL from
//! a file instead of stdin), `--selftest` (build a tiny lake, run built-in
//! requests including a save → drop → recover → re-query cycle, verify,
//! exit).
//!
//! [`LakeSession`]: dust_core::LakeSession

use dust_bench::json::{self, JsonValue};
use dust_bench::setup::Scale;
use dust_core::{
    DustResult, LakeSession, PersistError, PipelineConfig, SearchTechnique, SnapshotStore,
    StoreOptions, TupleEmbedderKind,
};
use dust_datagen::BenchmarkConfig;
use dust_embed::{FineTuneConfig, PretrainedModel};
use dust_table::{parse_csv, CsvOptions, DataLake, Table};
use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if let Err(message) = run(&args) {
        eprintln!("serve: {message}");
        std::process::exit(1);
    }
}

/// The serving state: the resident session plus, when `--snapshot-dir` is
/// given, the durable store whose WAL trails every acknowledged mutation.
struct ServerState {
    session: LakeSession,
    store: Option<SnapshotStore>,
}

/// A request failure: the echoed request `id`, a stable machine-readable
/// `kind`, and a human-readable message. Rendered as
/// `{"id":..,"kind":..,"error":..}` — clients branch on `kind`, humans
/// read `error`.
struct ServeError {
    id: String,
    kind: &'static str,
    message: String,
}

fn run(args: &[String]) -> Result<(), String> {
    let options = CliOptions::parse(args)?;
    if options.selftest {
        return selftest(&options);
    }

    let mut state = build_state(&options)?;
    let stats = state.session.stats();
    eprintln!(
        "serve: session ready in {:.2}s — {} tuples + {} columns resident across {} shards \
         (tuple dim {}, column dim {}), search = {}, generation {}",
        stats.build_secs,
        stats.tuples,
        stats.columns,
        stats.shards,
        stats.tuple_dim,
        stats.column_dim,
        state.session.config().search.name(),
        state.session.generation(),
    );
    for (i, (tables, tuples)) in stats.shard_sizes.iter().enumerate() {
        eprintln!("serve:   shard {i}: {tables} tables, {tuples} tuples");
    }

    // ---- serve ------------------------------------------------------------
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    let mut served = 0usize;
    let mut process = |line: &str| -> Result<(), String> {
        let trimmed = line.trim();
        if trimmed.is_empty() {
            return Ok(());
        }
        let response = handle_request(&mut state, trimmed);
        writeln!(out, "{response}").map_err(|e| e.to_string())?;
        out.flush().map_err(|e| e.to_string())?;
        served += 1;
        Ok(())
    };
    match &options.requests {
        Some(path) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            for line in text.lines() {
                process(line)?;
            }
        }
        None => {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let line = line.map_err(|e| e.to_string())?;
                process(&line)?;
            }
        }
    }
    eprintln!("serve: {served} request(s) served");
    Ok(())
}

/// Build the serving state: recover from the snapshot directory when one
/// is configured and holds a valid snapshot, otherwise build from the lake
/// (and persist the fresh build when a directory is configured). A corrupt
/// snapshot is reported and *replaced* — degraded startup cost, never
/// degraded answers.
fn build_state(options: &CliOptions) -> Result<ServerState, String> {
    if let Some(dir) = &options.snapshot_dir {
        let dir = Path::new(dir);
        match SnapshotStore::open_with(dir, options.store_options()) {
            Ok((store, session, report)) => {
                eprintln!(
                    "serve: recovered snapshot {} (generation {}, {} WAL record(s) replayed{})",
                    dir.display(),
                    report.snapshot_generation,
                    report.replayed,
                    if report.dropped_torn_tail {
                        ", torn tail dropped"
                    } else {
                        ""
                    }
                );
                return Ok(ServerState {
                    session,
                    store: Some(store),
                });
            }
            Err(e @ PersistError::NoSnapshot { .. }) => {
                eprintln!("serve: {e}; building from the lake");
            }
            Err(e) => {
                eprintln!(
                    "serve: snapshot unusable (kind: {}): {e}; rebuilding from the lake",
                    e.kind()
                );
            }
        }
        let session = build_session(options)?;
        let store = SnapshotStore::create_with(dir, &session, options.store_options())
            .map_err(|e| format!("cannot persist fresh session to {}: {e}", dir.display()))?;
        eprintln!("serve: fresh snapshot written to {}", dir.display());
        Ok(ServerState {
            session,
            store: Some(store),
        })
    } else {
        Ok(ServerState {
            session: build_session(options)?,
            store: None,
        })
    }
}

fn build_session(options: &CliOptions) -> Result<LakeSession, String> {
    let lake = match &options.lake_dir {
        Some(dir) => load_lake_dir(dir)?,
        None => generate_lake(&options.benchmark)?,
    };
    eprintln!(
        "serve: lake {:?}: {} tables, {} queries",
        lake.name(),
        lake.num_tables(),
        lake.num_queries()
    );
    Ok(LakeSession::with_options(
        lake,
        options.pipeline_config(),
        dust_core::SessionOptions {
            num_shards: options.shards,
        },
    ))
}

struct CliOptions {
    benchmark: String,
    lake_dir: Option<String>,
    search: SearchTechnique,
    finetune: bool,
    shards: usize,
    snapshot_dir: Option<String>,
    checkpoint_after: usize,
    requests: Option<String>,
    selftest: bool,
}

impl CliOptions {
    fn parse(args: &[String]) -> Result<Self, String> {
        let mut options = CliOptions {
            benchmark: "tiny".to_string(),
            lake_dir: None,
            search: SearchTechnique::Overlap,
            finetune: false,
            shards: 4,
            snapshot_dir: None,
            checkpoint_after: StoreOptions::default().checkpoint_after,
            requests: None,
            selftest: false,
        };
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            let mut value = |name: &str| {
                iter.next()
                    .cloned()
                    .ok_or_else(|| format!("{name} requires a value"))
            };
            match arg.as_str() {
                "--benchmark" => options.benchmark = value("--benchmark")?,
                "--lake-dir" => options.lake_dir = Some(value("--lake-dir")?),
                "--search" => {
                    options.search = match value("--search")?.as_str() {
                        "overlap" => SearchTechnique::Overlap,
                        "d3l" => SearchTechnique::D3l,
                        "starmie" => SearchTechnique::Starmie,
                        other => return Err(format!("unknown search technique {other:?}")),
                    }
                }
                "--finetune" => options.finetune = true,
                "--shards" => {
                    options.shards = value("--shards")?
                        .parse()
                        .map_err(|e| format!("--shards: {e}"))?
                }
                "--snapshot-dir" => options.snapshot_dir = Some(value("--snapshot-dir")?),
                "--checkpoint-after" => {
                    options.checkpoint_after = value("--checkpoint-after")?
                        .parse()
                        .map_err(|e| format!("--checkpoint-after: {e}"))?
                }
                "--requests" => options.requests = Some(value("--requests")?),
                "--selftest" => options.selftest = true,
                "--help" | "-h" => {
                    return Err("see the module docs: serve [--benchmark tiny|santos|ugen] \
                                [--lake-dir DIR] [--search overlap|d3l|starmie] [--finetune] \
                                [--shards N] [--snapshot-dir DIR] [--checkpoint-after N] \
                                [--requests FILE] [--selftest]"
                        .to_string())
                }
                other => return Err(format!("unknown flag {other:?}")),
            }
        }
        Ok(options)
    }

    fn pipeline_config(&self) -> PipelineConfig {
        let mut config = PipelineConfig {
            search: self.search,
            ..PipelineConfig::fast()
        };
        if self.finetune {
            config.embedder = TupleEmbedderKind::FineTuned {
                backbone: PretrainedModel::Roberta,
                config: FineTuneConfig {
                    max_epochs: 15,
                    patience: 3,
                    ..FineTuneConfig::default()
                },
                training_pairs: 150,
            };
        }
        config
    }

    fn store_options(&self) -> StoreOptions {
        StoreOptions {
            checkpoint_after: self.checkpoint_after,
        }
    }
}

fn generate_lake(benchmark: &str) -> Result<DataLake, String> {
    let config = match benchmark {
        "tiny" => BenchmarkConfig::tiny(),
        "santos" => Scale::Small.santos_config(),
        "ugen" => Scale::Small.ugen_config(),
        other => return Err(format!("unknown benchmark {other:?} (tiny|santos|ugen)")),
    };
    Ok(config.generate().lake)
}

/// Load every `*.csv` file in a directory as one lake table (file stem =
/// table name).
fn load_lake_dir(dir: &str) -> Result<DataLake, String> {
    let mut lake = DataLake::new(dir.to_string());
    let mut paths: Vec<std::path::PathBuf> = std::fs::read_dir(dir)
        .map_err(|e| format!("cannot read {dir}: {e}"))?
        .filter_map(|entry| entry.ok().map(|e| e.path()))
        .filter(|p| p.extension().is_some_and(|ext| ext == "csv"))
        .collect();
    paths.sort();
    if paths.is_empty() {
        return Err(format!("no .csv files in {dir}"));
    }
    for path in paths {
        let name = path
            .file_stem()
            .and_then(|s| s.to_str())
            .unwrap_or("table")
            .to_string();
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let table = parse_csv(name, &text, CsvOptions::default()).map_err(|e| format!("{e:?}"))?;
        lake.add_table(table).map_err(|e| format!("{e:?}"))?;
    }
    Ok(lake)
}

/// Handle one JSONL request line; always returns one JSON response line.
fn handle_request(state: &mut ServerState, line: &str) -> String {
    match serve_line(state, line) {
        Ok(response) => response,
        Err(e) => format!(
            "{{\"id\":\"{}\",\"kind\":\"{}\",\"error\":\"{}\"}}",
            json::escape(&e.id),
            e.kind,
            json::escape(&e.message)
        ),
    }
}

fn serve_line(state: &mut ServerState, line: &str) -> Result<String, ServeError> {
    let request = json::parse(line).map_err(|e| ServeError {
        id: String::new(),
        kind: "bad_request",
        message: format!("bad request: {e}"),
    })?;
    let id = request
        .get("id")
        .and_then(JsonValue::as_str)
        .unwrap_or_default()
        .to_string();
    let fail = |kind: &'static str, message: String| ServeError {
        id: id.clone(),
        kind,
        message,
    };
    let bad = |message: String| fail("bad_request", message);
    let k = match request.get("k") {
        None => 10,
        Some(v) => v
            .as_usize()
            .ok_or_else(|| bad("k must be a non-negative integer".to_string()))?,
    };

    let mode = request
        .get("mode")
        .and_then(JsonValue::as_str)
        .unwrap_or("diverse");

    // batched form: {"queries": [...], "k": ...}
    if let Some(JsonValue::Array(names)) = request.get("queries") {
        // a non-default mode would be silently ignored here — reject it so
        // a client never misreads a diverse batch as similar-tuple results
        if mode != "diverse" {
            return Err(bad(format!(
                "batched requests only support mode \"diverse\" (got {mode:?})"
            )));
        }
        let queries: Vec<Table> = names
            .iter()
            .map(|name| {
                let name = name
                    .as_str()
                    .ok_or_else(|| bad("queries must be strings".to_string()))?;
                resolve_query(&state.session, name).map_err(|m| fail("not_found", m))
            })
            .collect::<Result<_, _>>()?;
        let start = Instant::now();
        let results = state.session.query_batch(&queries, k);
        let secs = start.elapsed().as_secs_f64();
        let rendered: Vec<String> = results
            .iter()
            .map(|r| match r {
                Ok(result) => render_result(result),
                Err(e) => format!(
                    "{{\"kind\":\"table\",\"error\":\"{}\"}}",
                    json::escape(&e.to_string())
                ),
            })
            .collect();
        return Ok(format!(
            "{{\"id\":\"{}\",\"k\":{k},\"generation\":{},\"batch\":[{}],\"secs\":{}}}",
            json::escape(&id),
            state.session.generation(),
            rendered.join(","),
            json::number(secs)
        ));
    }

    // mutation modes: incremental per-shard deltas on the resident session
    // (no rebuild; results afterwards are bit-identical to one). With a
    // durable store, the WAL record is appended and fsynced *after* the
    // in-memory apply succeeds and *before* the response is written:
    // failed mutations are never logged, acknowledged ones always are.
    if mode == "add_table" || mode == "remove_table" {
        let start = Instant::now();
        let body = if mode == "add_table" {
            let name = request
                .get("name")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("add_table needs \"name\"".to_string()))?;
            let csv = request
                .get("csv")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("add_table needs \"csv\"".to_string()))?;
            let table = parse_csv(name, csv, CsvOptions::default())
                .map_err(|e| bad(format!("bad csv: {e:?}")))?;
            state
                .session
                .add_table(table.clone())
                .map_err(|e| fail("table", e.to_string()))?;
            if let Some(store) = state.store.as_mut() {
                store
                    .log_add_table(&table, state.session.generation())
                    .map_err(|e| fail(e.kind(), format!("applied but not logged: {e}")))?;
            }
            format!(
                "{{\"added\":\"{}\",\"tables\":{},\"generation\":{}}}",
                json::escape(name),
                state.session.lake().num_tables(),
                state.session.generation()
            )
        } else {
            let name = request
                .get("table")
                .and_then(JsonValue::as_str)
                .ok_or_else(|| bad("remove_table needs \"table\"".to_string()))?
                .to_string();
            state
                .session
                .remove_table(&name)
                .map_err(|e| fail("table", e.to_string()))?;
            if let Some(store) = state.store.as_mut() {
                store
                    .log_remove_table(&name, state.session.generation())
                    .map_err(|e| fail(e.kind(), format!("applied but not logged: {e}")))?;
            }
            format!(
                "{{\"removed\":\"{}\",\"tables\":{},\"generation\":{}}}",
                json::escape(&name),
                state.session.lake().num_tables(),
                state.session.generation()
            )
        };
        if let Some(store) = state.store.as_mut() {
            match store.maybe_checkpoint(&state.session) {
                Ok(true) => eprintln!(
                    "serve: checkpoint → epoch {} at generation {}",
                    store.epoch(),
                    state.session.generation()
                ),
                Ok(false) => {}
                // the WAL record IS durable; a failed checkpoint only means
                // recovery replays more — log it, don't fail the request
                Err(e) => eprintln!("serve: checkpoint failed (kind: {}): {e}", e.kind()),
            }
        }
        let secs = start.elapsed().as_secs_f64();
        return Ok(format!(
            "{{\"id\":\"{}\",\"result\":{body},\"secs\":{}}}",
            json::escape(&id),
            json::number(secs)
        ));
    }

    // explicit checkpoint: rewrite the snapshot at the current generation
    // and truncate the WAL
    if mode == "checkpoint" {
        let store = state
            .store
            .as_mut()
            .ok_or_else(|| bad("checkpoint needs --snapshot-dir".to_string()))?;
        let start = Instant::now();
        store
            .checkpoint(&state.session)
            .map_err(|e| fail(e.kind(), e.to_string()))?;
        let secs = start.elapsed().as_secs_f64();
        return Ok(format!(
            "{{\"id\":\"{}\",\"result\":{{\"checkpoint\":true,\"epoch\":{},\"generation\":{}}},\"secs\":{}}}",
            json::escape(&id),
            store.epoch(),
            state.session.generation(),
            json::number(secs)
        ));
    }

    // single query: by lake name or inline CSV
    let query = if let Some(name) = request.get("query").and_then(JsonValue::as_str) {
        resolve_query(&state.session, name).map_err(|m| fail("not_found", m))?
    } else if let Some(csv) = request.get("csv").and_then(JsonValue::as_str) {
        let name = request
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or("inline_query");
        parse_csv(name, csv, CsvOptions::default()).map_err(|e| bad(format!("bad csv: {e:?}")))?
    } else {
        return Err(bad(
            "request needs \"query\", \"queries\", or \"csv\"".to_string()
        ));
    };

    let start = Instant::now();
    let body = match mode {
        "diverse" => {
            let result = state
                .session
                .query(&query, k)
                .map_err(|e| fail("table", e.to_string()))?;
            render_result(&result)
        }
        "similar" => {
            let ranked = state.session.similar_tuples(&query, k);
            let items: Vec<String> = ranked
                .iter()
                .map(|r| {
                    format!(
                        "{{\"table\":\"{}\",\"row\":{},\"score\":{}}}",
                        json::escape(&r.table),
                        r.row,
                        json::number(r.score)
                    )
                })
                .collect();
            format!("{{\"similar\":[{}]}}", items.join(","))
        }
        other => return Err(bad(format!("unknown mode {other:?}"))),
    };
    let secs = start.elapsed().as_secs_f64();
    Ok(format!(
        "{{\"id\":\"{}\",\"k\":{k},\"generation\":{},\"result\":{body},\"secs\":{}}}",
        json::escape(&id),
        state.session.generation(),
        json::number(secs)
    ))
}

fn resolve_query(session: &LakeSession, name: &str) -> Result<Table, String> {
    session
        .lake()
        .query(name)
        .or_else(|_| session.lake().table(name))
        .cloned()
        .map_err(|_| format!("no lake query or table named {name:?}"))
}

/// Render a `DustResult` as a JSON object (tuples as cell-string arrays).
fn render_result(result: &DustResult) -> String {
    let tuples: Vec<String> = result
        .tuples
        .iter()
        .map(|t| {
            let mut rendered: Vec<String> = Vec::with_capacity(t.headers().len());
            for header in t.headers() {
                let cell = t
                    .value_for(header)
                    .map(|v| v.render().to_string())
                    .unwrap_or_default();
                rendered.push(format!("\"{}\"", json::escape(&cell)));
            }
            format!("[{}]", rendered.join(","))
        })
        .collect();
    format!(
        "{{\"tables\":{},\"dropped\":{},\"candidates\":{},\"tuples\":[{}],\
         \"avg_diversity\":{},\"min_diversity\":{}}}",
        json::string_array(result.retrieved_tables.iter().map(String::as_str)),
        json::string_array(result.dropped_tables.iter().map(String::as_str)),
        result.candidate_tuples,
        tuples.join(","),
        json::number(result.diversity.average),
        json::number(result.diversity.minimum)
    )
}

/// Build a tiny lake, serve built-in requests, verify the responses parse
/// and contain results, then run a full durability cycle: save → mutate
/// (WAL) → drop → recover → re-query, asserting the recovered session
/// answers identically. Used by CI as the serving + recovery smoke test.
fn selftest(options: &CliOptions) -> Result<(), String> {
    let lake = BenchmarkConfig::tiny().generate().lake;
    let query_name = lake
        .query_names()
        .first()
        .cloned()
        .ok_or("tiny benchmark generated no queries")?;
    // an inline-CSV request built from a real query table, so alignment has
    // something to union (arbitrary CSV also works, it just may yield an
    // empty candidate pool on an unrelated lake)
    let inline_csv = dust_table::write_csv(
        lake.query(&query_name).map_err(|e| format!("{e:?}"))?,
        CsvOptions::default(),
    );
    let mut state = ServerState {
        session: LakeSession::new(lake, PipelineConfig::fast()),
        store: None,
    };

    let requests = [
        format!("{{\"id\":\"one\",\"query\":\"{query_name}\",\"k\":5}}"),
        format!("{{\"id\":\"sim\",\"query\":\"{query_name}\",\"k\":3,\"mode\":\"similar\"}}"),
        format!("{{\"id\":\"batch\",\"queries\":[\"{query_name}\",\"{query_name}\"],\"k\":4}}"),
        format!(
            "{{\"id\":\"inline\",\"csv\":\"{}\",\"k\":2}}",
            json::escape(&inline_csv)
        ),
        "{\"id\":\"bad\",\"k\":1}".to_string(),
        format!(
            "{{\"id\":\"badmode\",\"queries\":[\"{query_name}\"],\"k\":2,\"mode\":\"similar\"}}"
        ),
        "{\"id\":\"nostore\",\"mode\":\"checkpoint\"}".to_string(),
    ];
    for request in &requests {
        let response = handle_request(&mut state, request);
        let parsed = json::parse(&response)
            .map_err(|e| format!("selftest: unparseable response {response:?}: {e}"))?;
        let id = parsed.get("id").and_then(JsonValue::as_str).unwrap_or("");
        match id {
            "one" | "inline" => {
                if parsed.get("generation").and_then(JsonValue::as_usize) != Some(0) {
                    return Err(format!("selftest: no generation in {response}"));
                }
                let tuples = parsed
                    .get("result")
                    .and_then(|r| r.get("tuples"))
                    .ok_or_else(|| format!("selftest: no tuples in {response}"))?;
                match tuples {
                    JsonValue::Array(items) if !items.is_empty() => {}
                    _ => return Err(format!("selftest: empty result for {id}: {response}")),
                }
            }
            "sim" => {
                if parsed
                    .get("result")
                    .and_then(|r| r.get("similar"))
                    .is_none()
                {
                    return Err(format!("selftest: no similar tuples: {response}"));
                }
            }
            "batch" => match parsed.get("batch") {
                Some(JsonValue::Array(items)) if items.len() == 2 => {}
                _ => return Err(format!("selftest: bad batch response: {response}")),
            },
            "bad" | "badmode" | "nostore" => {
                if parsed.get("error").is_none() {
                    return Err(format!("selftest: bad request not rejected: {response}"));
                }
                if parsed.get("kind").and_then(JsonValue::as_str) != Some("bad_request") {
                    return Err(format!(
                        "selftest: error lacks kind=bad_request: {response}"
                    ));
                }
            }
            other => return Err(format!("selftest: unexpected id {other:?}")),
        }
    }

    // ---- mutation cycle: add → query → remove → query ---------------------
    // After the remove, the query result must be identical to the pre-add
    // one: the mutation deltas leave no residue (the same guarantee
    // tests/session_mutation.rs pins against a full rebuild).
    let query_request = format!("{{\"id\":\"cycle\",\"query\":\"{query_name}\",\"k\":5}}");
    let result_of = |response: &str| -> Result<JsonValue, String> {
        let parsed = json::parse(response)
            .map_err(|e| format!("selftest: unparseable response {response:?}: {e}"))?;
        if let Some(error) = parsed.get("error") {
            return Err(format!("selftest: unexpected error response: {error:?}"));
        }
        parsed
            .get("result")
            .cloned()
            .ok_or_else(|| format!("selftest: no result in {response}"))
    };
    let before = result_of(&handle_request(&mut state, &query_request))?;

    let mutations = [
        format!(
            "{{\"id\":\"grow\",\"mode\":\"add_table\",\"name\":\"selftest_added\",\"csv\":\"{}\"}}",
            json::escape(&inline_csv)
        ),
        "{\"id\":\"shrink\",\"mode\":\"remove_table\",\"table\":\"selftest_added\"}".to_string(),
    ];
    let generations = [1usize, 2];
    for (request, expected_gen) in mutations.iter().zip(generations) {
        let response = handle_request(&mut state, request);
        let result = result_of(&response)?;
        let generation = result
            .get("generation")
            .and_then(JsonValue::as_usize)
            .ok_or_else(|| format!("selftest: no generation in {response}"))?;
        if generation != expected_gen {
            return Err(format!(
                "selftest: expected generation {expected_gen}, got {generation}: {response}"
            ));
        }
        if expected_gen == 1 {
            // the added table serves immediately
            let mid = result_of(&handle_request(&mut state, &query_request))?;
            if mid.get("tuples").is_none() {
                return Err(format!("selftest: no tuples after add: {mid:?}"));
            }
        }
    }
    let after = result_of(&handle_request(&mut state, &query_request))?;
    if before != after {
        return Err(format!(
            "selftest: post-remove result differs from pre-add result\n  before: {before:?}\n  after: {after:?}"
        ));
    }
    // duplicate add and missing remove are rejected without mutating
    let lake_table = state
        .session
        .lake()
        .table_names()
        .first()
        .cloned()
        .ok_or("selftest: lake has no tables")?;
    for bad in [
        format!(
            "{{\"id\":\"dup\",\"mode\":\"add_table\",\"name\":\"{lake_table}\",\"csv\":\"a\\n1\"}}"
        ),
        "{\"id\":\"ghost\",\"mode\":\"remove_table\",\"table\":\"selftest_added\"}".to_string(),
    ] {
        let response = handle_request(&mut state, &bad);
        let parsed = json::parse(&response).map_err(|e| format!("selftest: {e}"))?;
        if parsed.get("error").is_none() {
            return Err(format!("selftest: bad mutation not rejected: {response}"));
        }
        if parsed.get("kind").and_then(JsonValue::as_str) != Some("table") {
            return Err(format!(
                "selftest: mutation error lacks kind=table: {response}"
            ));
        }
    }

    // ---- durability cycle: save → mutate (WAL) → drop → recover -----------
    let snapshot_dir = options
        .snapshot_dir
        .clone()
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("dust-serve-selftest-{}", std::process::id()))
        });
    let _ = std::fs::remove_dir_all(&snapshot_dir);
    state.store = Some(
        SnapshotStore::create(&snapshot_dir, &state.session)
            .map_err(|e| format!("selftest: save failed: {e}"))?,
    );
    // mutate through the server so the record lands in the WAL
    let regrow = format!(
        "{{\"id\":\"regrow\",\"mode\":\"add_table\",\"name\":\"selftest_saved\",\"csv\":\"{}\"}}",
        json::escape(&inline_csv)
    );
    result_of(&handle_request(&mut state, &regrow))?;
    let expected = result_of(&handle_request(&mut state, &query_request))?;
    let expected_generation = state.session.generation();

    // drop the entire serving state; recover from disk alone (WAL replay)
    drop(state);
    let (store, session, report) = SnapshotStore::open(&snapshot_dir)
        .map_err(|e| format!("selftest: recovery failed: {e}"))?;
    if report.replayed != 1 || session.generation() != expected_generation {
        return Err(format!(
            "selftest: recovery replayed {} record(s) to generation {}, expected 1 → {expected_generation}",
            report.replayed,
            session.generation()
        ));
    }
    let mut state = ServerState {
        session,
        store: Some(store),
    };
    let recovered = result_of(&handle_request(&mut state, &query_request))?;
    if recovered != expected {
        return Err(format!(
            "selftest: recovered session answers differently\n  expected: {expected:?}\n  recovered: {recovered:?}"
        ));
    }

    // checkpoint truncates the WAL; a second recovery replays nothing
    let checkpoint = result_of(&handle_request(
        &mut state,
        "{\"id\":\"ck\",\"mode\":\"checkpoint\"}",
    ))?;
    if checkpoint.get("epoch").and_then(JsonValue::as_usize) != Some(2) {
        return Err(format!(
            "selftest: checkpoint did not advance epoch: {checkpoint:?}"
        ));
    }
    drop(state);
    let (store, session, report) = SnapshotStore::open(&snapshot_dir)
        .map_err(|e| format!("selftest: post-checkpoint recovery failed: {e}"))?;
    if report.replayed != 0 || session.generation() != expected_generation {
        return Err(format!(
            "selftest: post-checkpoint recovery replayed {} record(s), expected 0",
            report.replayed
        ));
    }
    let mut state = ServerState {
        session,
        store: Some(store),
    };
    let reread = result_of(&handle_request(&mut state, &query_request))?;
    if reread != expected {
        return Err("selftest: post-checkpoint recovery answers differently".to_string());
    }
    if options.snapshot_dir.is_none() {
        let _ = std::fs::remove_dir_all(&snapshot_dir);
    }

    eprintln!(
        "serve: selftest ok ({} requests + mutation cycle + recovery cycle verified)",
        requests.len()
    );
    Ok(())
}
