//! Plain-text report tables, printed to stdout in the same layout as the
//! paper's tables and figures (rows / series), so experiment output can be
//! compared side by side with the published numbers.

use std::fmt::Write as _;

/// A simple column-aligned report table.
#[derive(Debug, Clone, Default)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    notes: Vec<String>,
}

impl Report {
    /// Create a report with a title.
    pub fn new(title: impl Into<String>) -> Self {
        Report {
            title: title.into(),
            ..Report::default()
        }
    }

    /// Set the column headers.
    pub fn headers<I, S>(mut self, headers: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.headers = headers.into_iter().map(Into::into).collect();
        self
    }

    /// Append one row of cells.
    pub fn row<I, S>(&mut self, cells: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.rows.push(cells.into_iter().map(Into::into).collect());
    }

    /// Append a free-text note printed under the table.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render the report as a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                if i >= widths.len() {
                    widths.push(cell.chars().count());
                } else {
                    widths[i] = widths[i].max(cell.chars().count());
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "\n== {} ==", self.title);
        if !self.headers.is_empty() {
            let _ = writeln!(out, "{}", format_row(&self.headers, &widths));
            let total: usize = widths.iter().sum::<usize>() + widths.len().saturating_sub(1) * 3;
            let _ = writeln!(out, "{}", "-".repeat(total));
        }
        for row in &self.rows {
            let _ = writeln!(out, "{}", format_row(row, &widths));
        }
        for note in &self.notes {
            let _ = writeln!(out, "  note: {note}");
        }
        out
    }

    /// Print the report to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let w = widths.get(i).copied().unwrap_or(c.len());
            format!("{c:<w$}")
        })
        .collect::<Vec<_>>()
        .join(" | ")
}

/// Format a float with three decimals (the paper's usual precision).
pub fn fmt3(v: f64) -> String {
    format!("{v:.3}")
}

/// Format a float with one decimal.
pub fn fmt1(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns_and_keeps_all_rows() {
        let mut report = Report::new("Table X").headers(["Method", "Score"]);
        report.row(["DUST", "0.91"]);
        report.row(["GMC-with-long-name", "0.5"]);
        report.note("synthetic data");
        let text = report.render();
        assert!(text.contains("== Table X =="));
        assert!(text.contains("Method"));
        assert!(text.contains("GMC-with-long-name | 0.5"));
        assert!(text.contains("note: synthetic data"));
        assert_eq!(report.num_rows(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt3(0.123456), "0.123");
        assert_eq!(fmt1(12.34), "12.3");
    }

    #[test]
    fn headerless_reports_render() {
        let mut report = Report::new("no headers");
        report.row(["a", "b"]);
        assert!(report.render().contains("a | b"));
    }
}
