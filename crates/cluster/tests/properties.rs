//! Property-based tests for the clustering substrate: every cut of a
//! dendrogram is a valid partition, constraints are always honoured, medoids
//! belong to their clusters, and silhouette scores stay in range.

use dust_cluster::{
    agglomerative, agglomerative_constrained, agglomerative_with, cluster_medoids,
    clusters_from_assignment, kmeans, num_clusters, silhouette_score, AgglomerativeAlgorithm,
    Linkage,
};
use dust_embed::{Distance, PairwiseMatrix, Vector};
use proptest::prelude::*;

fn points_strategy() -> impl Strategy<Value = Vec<Vector>> {
    prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 2), 2..30)
        .prop_map(|rows| rows.into_iter().map(Vector::new).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every cut of an unconstrained dendrogram is a partition with exactly
    /// the requested number of clusters (when feasible) and dense ids —
    /// for every linkage, on either engine.
    #[test]
    fn dendrogram_cuts_are_valid_partitions(points in points_strategy(), k in 1usize..10) {
        let matrix = PairwiseMatrix::compute(&points, Distance::Euclidean);
        for linkage in Linkage::ALL {
            for algorithm in [AgglomerativeAlgorithm::NnChain, AgglomerativeAlgorithm::Generic] {
                let dendrogram = agglomerative_with(&matrix, linkage, algorithm, 1);
                prop_assert_eq!(dendrogram.merges().len(), points.len() - 1);
                let assignment = dendrogram.cut(k);
                prop_assert_eq!(assignment.len(), points.len());
                let clusters = num_clusters(&assignment);
                prop_assert_eq!(clusters, k.min(points.len()));
                // dense ids: every id below `clusters` occurs
                let groups = clusters_from_assignment(&assignment);
                prop_assert_eq!(groups.len(), clusters);
                prop_assert!(groups.iter().all(|g| !g.is_empty()));
                prop_assert_eq!(groups.iter().map(|g| g.len()).sum::<usize>(), points.len());
            }
        }
    }

    /// Cannot-link constraints are honoured at every cut level.
    #[test]
    fn constrained_clustering_never_violates_constraints(
        points in points_strategy(),
        k in 1usize..8,
    ) {
        // constrain consecutive pairs (0,1), (2,3), ...
        let constraints: Vec<(usize, usize)> = (0..points.len().saturating_sub(1))
            .step_by(2)
            .map(|i| (i, i + 1))
            .collect();
        let dendrogram = agglomerative_constrained(
            &points,
            Distance::Euclidean,
            Linkage::Average,
            &constraints,
        );
        let assignment = dendrogram.cut(k);
        for &(a, b) in &constraints {
            prop_assert_ne!(assignment[a], assignment[b], "constraint ({}, {}) violated", a, b);
        }
    }

    /// Medoids are members of their own clusters and there is one per cluster.
    #[test]
    fn medoids_belong_to_their_clusters(points in points_strategy(), k in 1usize..8) {
        let dendrogram = agglomerative(&points, Distance::Euclidean, Linkage::Average);
        let assignment = dendrogram.cut(k);
        let medoids = cluster_medoids(&points, &assignment, Distance::Euclidean);
        let groups = clusters_from_assignment(&assignment);
        prop_assert_eq!(medoids.len(), groups.len());
        for (cluster_id, &medoid) in medoids.iter().enumerate() {
            prop_assert_eq!(assignment[medoid], cluster_id);
        }
    }

    /// Silhouette scores, when defined, are within [-1, 1].
    #[test]
    fn silhouette_is_bounded(points in points_strategy(), k in 2usize..6) {
        let dendrogram = agglomerative(&points, Distance::Euclidean, Linkage::Average);
        let assignment = dendrogram.cut(k);
        if let Some(score) = silhouette_score(&points, &assignment, Distance::Euclidean) {
            prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&score));
        }
    }

    /// k-means produces a valid partition and never exceeds k clusters.
    #[test]
    fn kmeans_partitions_are_valid(points in points_strategy(), k in 1usize..8, seed in 0u64..100) {
        let result = kmeans(&points, k, 15, seed, Distance::Euclidean);
        prop_assert_eq!(result.assignment.len(), points.len());
        prop_assert!(num_clusters(&result.assignment) <= k.min(points.len()));
        prop_assert!(result.inertia >= 0.0);
    }
}
