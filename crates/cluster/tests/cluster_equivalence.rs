//! Cross-algorithm equivalence suite: the NN-chain and cached-NN "generic"
//! agglomerative engines must produce the same flat clusterings, and both
//! must match the naive O(n³) greedy reference.
//!
//! Three layers, from exact to approximate:
//!
//! 1. **Generic ≡ naive greedy, bit for bit.** The generic engine is a
//!    cached/lazy implementation of exactly the greedy rule "merge the
//!    lexicographically smallest `(distance, i, j)` pair" — so against the
//!    naive reference (the constrained variant with no constraints) its
//!    entire merge sequence, heights included, must be *identical*, for
//!    every linkage including the non-reducible centroid/median pair.
//! 2. **Generic ≡ NN-chain up to merge order.** For reducible linkages the
//!    NN-chain visits the same merge *tree* but discovers merges along
//!    chains, interleaving subtree formation differently; heights are
//!    compared as sorted multisets (approximately — a different interleaving
//!    reorders the f32 roundings of the Lance–Williams updates) and `cut(k)`
//!    partitions must agree exactly, for every `k`, up to label permutation.
//! 3. **Dendrogram invariants** — merge count, monotone heights for
//!    reducible linkages, `cut`/`cut_at_distance` consistency, and
//!    shuffle-stability of assignments (the PR 1 GMC pattern, extended to
//!    clustering).
//!
//! Tie handling: deliberately tied inputs (duplicate points, all-equal
//! distances, equidistant grids) are pinned by the deterministic tests at
//! the bottom. Random cases additionally guard against *near*-ties: when
//! two merge heights differ by less than the f32 noise floor of the
//! Lance–Williams pipeline, the ascending merge order itself is ambiguous
//! and partition comparison is skipped for that case (the height multiset
//! is still checked). Exact nonzero ties between unrelated random pairs
//! are likewise skipped — adversarial tie chains can make any two valid
//! tie-breaking rules pick genuinely different (equally correct) trees.

use dust_cluster::{
    agglomerative_constrained, agglomerative_params, agglomerative_with, clusters_from_assignment,
    num_clusters, AgglomerativeAlgorithm, ClusterParams, Compaction, Dendrogram, Linkage,
};
use dust_embed::{Distance, PairwiseMatrix, Vector};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REDUCIBLE: [Linkage; 4] = [
    Linkage::Single,
    Linkage::Complete,
    Linkage::Average,
    Linkage::Ward,
];

fn points_strategy() -> impl Strategy<Value = Vec<Vector>> {
    prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 2), 2..64)
        .prop_map(|rows| rows.into_iter().map(Vector::new).collect())
}

fn distance_strategy() -> impl Strategy<Value = Distance> {
    prop_oneof![
        Just(Distance::Euclidean),
        Just(Distance::Cosine),
        Just(Distance::Manhattan),
    ]
}

/// Partition of point indices induced by an assignment, in canonical form
/// (label-permutation invariant).
fn signature(assignment: &[usize]) -> Vec<Vec<usize>> {
    let mut groups = clusters_from_assignment(assignment);
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort();
    groups
}

fn sorted_heights(dendro: &Dendrogram) -> Vec<f64> {
    let mut h: Vec<f64> = dendro.merges().iter().map(|m| m.distance).collect();
    h.sort_by(|a, b| a.total_cmp(b));
    h
}

/// Absolute-plus-relative tolerance for comparing merge heights computed
/// through differently-ordered f32 Lance–Williams updates.
fn height_tol(h: f64) -> f64 {
    1e-4 * (1.0 + h.abs())
}

/// True when some pair of adjacent sorted heights is too close to order
/// reliably: either within f32 noise of each other without being equal, or
/// exactly equal but nonzero (an accidental tie between unrelated pairs —
/// zero-height ties come from duplicate points and are merge-order safe).
fn ambiguous_merge_order(heights: &[f64]) -> bool {
    heights.windows(2).any(|w| {
        let (a, b) = (w[0], w[1]);
        (b - a < height_tol(b) && a != b) || (a == b && a != 0.0)
    })
}

/// Core cross-engine check; returns whether the cut comparison ran (i.e.
/// the case was unambiguous).
fn check_engines_agree(points: &[Vector], distance: Distance, linkage: Linkage) -> bool {
    let matrix = PairwiseMatrix::compute(points, distance);
    let chain = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::NnChain, 1);
    let generic = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::Generic, 1);
    let n = points.len();
    assert_eq!(
        chain.merges().len(),
        n - 1,
        "{linkage:?}: chain merge count"
    );
    assert_eq!(
        generic.merges().len(),
        n - 1,
        "{linkage:?}: generic merge count"
    );
    let hc = sorted_heights(&chain);
    let hg = sorted_heights(&generic);
    for (a, b) in hc.iter().zip(&hg) {
        assert!(
            (a - b).abs() <= height_tol(*a),
            "{linkage:?}: height multisets differ: {a} vs {b}"
        );
    }
    if ambiguous_merge_order(&hc) || ambiguous_merge_order(&hg) {
        return false;
    }
    for k in 1..=n {
        assert_eq!(
            signature(&chain.cut(k)),
            signature(&generic.cut(k)),
            "{linkage:?}: cut({k}) diverged on {n} points"
        );
    }
    true
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Layer 2: generic ≡ NN-chain on random point sets (with occasional
    /// duplicated points) for every reducible linkage: identical cut(k)
    /// partitions for all k, and matching merge-height multisets.
    /// 256 cases × 4 linkages ≥ 1000 engine comparisons.
    #[test]
    fn generic_and_nn_chain_produce_identical_cuts(
        points in points_strategy(),
        distance in distance_strategy(),
        dup in prop::collection::vec(0usize..64, 0..6),
    ) {
        // splice in duplicate points (exact zero-distance ties)
        let mut points = points;
        for &d in &dup {
            let src = points[d % points.len()].clone();
            points.push(src);
        }
        for linkage in REDUCIBLE {
            check_engines_agree(&points, distance, linkage);
        }
    }

    /// Layer 1: the generic engine implements exactly the naive greedy
    /// merge rule — its merge sequence (pairs, heights, sizes) is bitwise
    /// identical to the O(n³) reference for *every* linkage, including the
    /// non-reducible centroid/median pair and under exact ties.
    #[test]
    fn generic_matches_naive_greedy_exactly(
        points in prop::collection::vec(prop::collection::vec(-10.0f32..10.0, 2), 2..24)
            .prop_map(|rows| rows.into_iter().map(Vector::new).collect::<Vec<_>>()),
        distance in distance_strategy(),
    ) {
        let matrix = PairwiseMatrix::compute(&points, distance);
        for linkage in Linkage::ALL {
            let naive = agglomerative_constrained(&points, distance, linkage, &[]);
            let generic = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::Generic, 1);
            prop_assert_eq!(
                generic.merges(), naive.merges(),
                "{:?}: generic diverged from the greedy reference", linkage
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Dendrogram invariants: n-1 merges; the generic (greedy) engine emits
    /// nondecreasing heights for reducible linkages (no inversions).
    #[test]
    fn reducible_linkages_have_monotone_merge_heights(
        points in points_strategy(),
        distance in distance_strategy(),
    ) {
        let matrix = PairwiseMatrix::compute(&points, distance);
        for linkage in REDUCIBLE {
            let dendro = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::Generic, 1);
            prop_assert_eq!(dendro.merges().len(), points.len() - 1);
            for w in dendro.merges().windows(2) {
                prop_assert!(
                    w[1].distance >= w[0].distance - 1e-9 * (1.0 + w[0].distance.abs()),
                    "{:?}: inversion {} -> {}", linkage, w[0].distance, w[1].distance
                );
            }
        }
    }

    /// `cut_at_distance` is consistent with `cut`: cutting at the m-th
    /// sorted merge height (where the next height is strictly larger)
    /// yields exactly the `n - 1 - m` cluster partition.
    #[test]
    fn cut_at_distance_agrees_with_cut(
        points in points_strategy(),
        distance in distance_strategy(),
        linkage_idx in 0usize..4,
    ) {
        let linkage = REDUCIBLE[linkage_idx];
        let dendro = agglomerative_with(
            &PairwiseMatrix::compute(&points, distance),
            linkage,
            AgglomerativeAlgorithm::Generic,
            1,
        );
        let n = points.len();
        let heights = sorted_heights(&dendro);
        for (m, &h) in heights.iter().enumerate() {
            // only thresholds that unambiguously separate merge heights
            if m + 1 < heights.len() && heights[m + 1] <= h + height_tol(h) {
                continue;
            }
            let by_distance = dendro.cut_at_distance(h);
            let by_count = dendro.cut(n - 1 - m);
            prop_assert_eq!(num_clusters(&by_distance), n - 1 - m, "{:?} m={}", linkage, m);
            prop_assert_eq!(
                signature(&by_distance), signature(&by_count),
                "{:?}: threshold {} vs k={}", linkage, h, n - 1 - m
            );
        }
    }

    /// Shuffle-stability (PR 1's GMC pattern, extended to clustering): for
    /// tie-free inputs, permuting the points permutes the assignment and
    /// nothing else — on either engine.
    #[test]
    fn assignments_are_stable_under_input_shuffle(
        points in points_strategy(),
        distance in distance_strategy(),
        k in 1usize..8,
        seed in 0u64..1_000,
    ) {
        let matrix = PairwiseMatrix::compute(&points, distance);
        // tie-free guard: every pairwise f32 distance distinct
        let mut values: Vec<u32> = matrix.condensed_data().iter().map(|d| d.to_bits()).collect();
        values.sort_unstable();
        values.dedup();
        let tie_free = values.len() == matrix.condensed_data().len();
        let n = points.len();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..n).rev() {
            perm.swap(i, rng.gen_range(0..=i));
        }
        let shuffled: Vec<Vector> = perm.iter().map(|&p| points[p].clone()).collect();
        let shuffled_matrix = PairwiseMatrix::compute(&shuffled, distance);
        for linkage in REDUCIBLE.into_iter().filter(|_| tie_free) {
            for algorithm in [AgglomerativeAlgorithm::NnChain, AgglomerativeAlgorithm::Generic] {
                let base = agglomerative_with(&matrix, linkage, algorithm, 1);
                if ambiguous_merge_order(&sorted_heights(&base)) {
                    continue;
                }
                let moved = agglomerative_with(&shuffled_matrix, linkage, algorithm, 1);
                let base_cut = base.cut(k);
                let moved_cut = moved.cut(k);
                // map the shuffled assignment back to original indices
                let mut mapped = vec![0usize; n];
                for (i, &p) in perm.iter().enumerate() {
                    mapped[p] = moved_cut[i];
                }
                prop_assert_eq!(
                    signature(&base_cut), signature(&mapped),
                    "{:?}/{:?}: cut({}) changed under shuffle", linkage, algorithm, k
                );
            }
        }
    }
}

/// The near-tie carve-out must stay a carve-out: on a fixed stream of
/// random cases the overwhelming majority must be unambiguous and get the
/// full cut-equivalence treatment.
#[test]
fn most_random_cases_are_unambiguous() {
    let mut rng = StdRng::seed_from_u64(0xD05);
    let mut full_checks = 0usize;
    const CASES: usize = 100;
    for _ in 0..CASES {
        let n = rng.gen_range(2..64);
        let points: Vec<Vector> = (0..n)
            .map(|_| Vector::new(vec![rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)]))
            .collect();
        if check_engines_agree(&points, Distance::Euclidean, Linkage::Average) {
            full_checks += 1;
        }
    }
    assert!(
        full_checks * 10 >= CASES * 9,
        "only {full_checks}/{CASES} random cases ran the full cut comparison"
    );
}

// ---------------------------------------------------------------------------
// Deliberate ties: the deterministic lowest-index-wins contract makes both
// engines produce the same clusterings even when every choice is a tie.
// ---------------------------------------------------------------------------

fn assert_cuts_identical(points: &[Vector], distance: Distance, linkages: &[Linkage]) {
    let matrix = PairwiseMatrix::compute(points, distance);
    let n = points.len();
    for &linkage in linkages {
        let chain = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::NnChain, 1);
        let generic = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::Generic, 1);
        for k in 1..=n {
            assert_eq!(
                signature(&chain.cut(k)),
                signature(&generic.cut(k)),
                "{linkage:?}: tied cut({k}) diverged on {n} points"
            );
        }
    }
}

#[test]
fn all_equal_distances_are_tie_broken_identically() {
    // scaled standard basis vectors: every pairwise Euclidean distance is
    // exactly s·√2, every cosine distance exactly 1 — all decisions are ties
    for n in 2..=12 {
        let points: Vec<Vector> = (0..n)
            .map(|i| {
                let mut row = vec![0.0f32; n];
                row[i] = 3.0;
                Vector::new(row)
            })
            .collect();
        assert_cuts_identical(&points, Distance::Euclidean, &REDUCIBLE);
        assert_cuts_identical(&points, Distance::Cosine, &REDUCIBLE);
    }
}

#[test]
fn identical_points_are_tie_broken_identically() {
    // n copies of one point: the whole matrix is zeros
    for n in 2..=10 {
        let points: Vec<Vector> = (0..n).map(|_| Vector::new(vec![1.5, -2.5])).collect();
        assert_cuts_identical(&points, Distance::Euclidean, &REDUCIBLE);
        let matrix = PairwiseMatrix::compute(&points, Distance::Euclidean);
        let dendro = agglomerative_with(
            &matrix,
            Linkage::Average,
            AgglomerativeAlgorithm::Generic,
            1,
        );
        assert!(dendro.merges().iter().all(|m| m.distance == 0.0));
    }
}

#[test]
fn duplicate_groups_are_tie_broken_identically() {
    // two duplicate groups plus singletons: zero-height ties inside groups,
    // exact cross ties between the copies and every outside point
    let mut points = Vec::new();
    for _ in 0..3 {
        points.push(Vector::new(vec![0.0, 0.0]));
    }
    for _ in 0..3 {
        points.push(Vector::new(vec![7.0, 1.0]));
    }
    points.push(Vector::new(vec![-4.0, 2.0]));
    points.push(Vector::new(vec![3.0, -6.0]));
    assert_cuts_identical(&points, Distance::Euclidean, &REDUCIBLE);
    assert_cuts_identical(&points, Distance::Manhattan, &REDUCIBLE);
}

#[test]
fn equidistant_grid_is_tie_broken_identically() {
    // collinear equidistant points: d(i, i+1) ties everywhere
    for n in [4usize, 7, 12] {
        let points: Vec<Vector> = (0..n).map(|i| Vector::new(vec![i as f32, 0.0])).collect();
        assert_cuts_identical(&points, Distance::Euclidean, &REDUCIBLE);
    }
}

#[test]
fn non_reducible_linkages_match_the_greedy_reference_on_ties() {
    // centroid/median only run on the generic engine; pin them to the naive
    // greedy reference under heavy ties
    let mut points: Vec<Vector> = (0..6)
        .map(|i| {
            let mut row = vec![0.0f32; 6];
            row[i] = 2.0;
            Vector::new(row)
        })
        .collect();
    points.push(points[0].clone());
    let matrix = PairwiseMatrix::compute(&points, Distance::Euclidean);
    for linkage in [Linkage::Centroid, Linkage::Median] {
        let naive = agglomerative_constrained(&points, Distance::Euclidean, linkage, &[]);
        let generic = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::Generic, 1);
        assert_eq!(generic.merges(), naive.merges(), "{linkage:?}");
    }
}

// ---------------------------------------------------------------------------
// k-capped partial builds: a capped run is a bit-for-bit prefix of the full
// run, and every in-range cut is identical to the full dendrogram's —
// including under deliberate ties, where the strict-boundary stop rule
// keeps the engines merging rather than guessing.
// ---------------------------------------------------------------------------

/// Capped vs full for one engine: prefix property plus exact cut equality
/// for every `k >= capped.min_clusters()`.
fn check_capped_matches_full(
    points: &[Vector],
    distance: Distance,
    linkage: Linkage,
    algorithm: AgglomerativeAlgorithm,
    k_min: usize,
) {
    let matrix = PairwiseMatrix::compute(points, distance);
    let full = agglomerative_with(&matrix, linkage, algorithm, 1);
    let capped = agglomerative_with(&matrix, linkage, algorithm, k_min);
    let n = points.len();
    assert_eq!(
        capped.merges(),
        &full.merges()[..capped.merges().len()],
        "{linkage:?}/{algorithm:?}: capped run is not a prefix of the full run"
    );
    assert!(
        capped.min_clusters() <= k_min.max(1).min(n),
        "{linkage:?}/{algorithm:?}: min_clusters {} exceeds requested cap {k_min}",
        capped.min_clusters()
    );
    for k in capped.min_clusters()..=n {
        assert_eq!(
            capped.cut(k),
            full.cut(k),
            "{linkage:?}/{algorithm:?}: capped cut({k}) diverged (cap {k_min}, n {n})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Capped == full on random point sets (with occasional duplicated
    /// points — exact zero-distance ties) for both engines and every
    /// reducible linkage, across random caps.
    #[test]
    fn capped_cuts_match_full_dendrogram_cuts(
        points in points_strategy(),
        distance in distance_strategy(),
        dup in prop::collection::vec(0usize..64, 0..4),
        k_min in 2usize..32,
    ) {
        let mut points = points;
        for &d in &dup {
            let src = points[d % points.len()].clone();
            points.push(src);
        }
        let k_min = k_min.min(points.len());
        for linkage in REDUCIBLE {
            for algorithm in [AgglomerativeAlgorithm::NnChain, AgglomerativeAlgorithm::Generic] {
                check_capped_matches_full(&points, distance, linkage, algorithm, k_min);
            }
        }
    }

    /// Compacting == non-compacting, bit for bit: the whole dendrogram
    /// (merge pairs, f64 heights, sizes, min_clusters) is identical with
    /// the workspace physically shrinking and with it never shrinking —
    /// both engines, all six linkages, capped and full. Sizes above
    /// ~16 points genuinely compact (the workspace halves at live <= n/2).
    #[test]
    fn compacting_is_bit_for_bit_identical(
        points in points_strategy(),
        distance in distance_strategy(),
        k_min in 1usize..24,
    ) {
        let matrix = PairwiseMatrix::compute(&points, distance);
        for linkage in Linkage::ALL {
            for algorithm in [AgglomerativeAlgorithm::NnChain, AgglomerativeAlgorithm::Generic] {
                let run = |compaction| agglomerative_params(&matrix, &ClusterParams {
                    linkage,
                    algorithm,
                    min_clusters: k_min,
                    compaction,
                });
                let plain = run(Compaction::Never);
                let compacted = run(Compaction::Always);
                prop_assert_eq!(
                    &plain, &compacted,
                    "{:?}/{:?}: compaction changed the dendrogram (cap {})",
                    linkage, algorithm, k_min
                );
            }
        }
    }
}

#[test]
fn capped_tie_families_match_full() {
    // All-equal distances: every stop boundary is tied, so capped builds
    // degenerate to full builds — and must still agree cut for cut.
    for n in 2..=12 {
        let basis: Vec<Vector> = (0..n)
            .map(|i| {
                let mut row = vec![0.0f32; n];
                row[i] = 3.0;
                Vector::new(row)
            })
            .collect();
        for algorithm in [
            AgglomerativeAlgorithm::NnChain,
            AgglomerativeAlgorithm::Generic,
        ] {
            for linkage in REDUCIBLE {
                for k_min in [2usize, 3, n.div_ceil(2), n] {
                    check_capped_matches_full(
                        &basis,
                        Distance::Euclidean,
                        linkage,
                        algorithm,
                        k_min,
                    );
                }
            }
        }
    }
    // Duplicate groups and an equidistant grid: zero-height and exact
    // nonzero cross ties at the cap boundary.
    let mut dups = Vec::new();
    for _ in 0..3 {
        dups.push(Vector::new(vec![0.0, 0.0]));
    }
    for _ in 0..3 {
        dups.push(Vector::new(vec![7.0, 1.0]));
    }
    dups.push(Vector::new(vec![-4.0, 2.0]));
    dups.push(Vector::new(vec![3.0, -6.0]));
    let grid: Vec<Vector> = (0..12).map(|i| Vector::new(vec![i as f32, 0.0])).collect();
    for points in [&dups, &grid] {
        for algorithm in [
            AgglomerativeAlgorithm::NnChain,
            AgglomerativeAlgorithm::Generic,
        ] {
            for linkage in REDUCIBLE {
                for k_min in [2usize, 4, 6] {
                    check_capped_matches_full(
                        points,
                        Distance::Euclidean,
                        linkage,
                        algorithm,
                        k_min,
                    );
                }
            }
        }
    }
}

/// A deterministic larger case (n = 300): several compaction halvings
/// actually fire, and capped + compacting together still reproduce the
/// full non-compacting build's cuts exactly.
#[test]
fn large_capped_compacting_run_matches_plain_full_build() {
    let mut rng = StdRng::seed_from_u64(0xCAB);
    let n = 300;
    let points: Vec<Vector> = (0..n)
        .map(|_| Vector::new(vec![rng.gen_range(-10.0..10.0), rng.gen_range(-10.0..10.0)]))
        .collect();
    let matrix = PairwiseMatrix::compute(&points, Distance::Euclidean);
    for algorithm in [
        AgglomerativeAlgorithm::NnChain,
        AgglomerativeAlgorithm::Generic,
    ] {
        for linkage in [Linkage::Average, Linkage::Ward] {
            let full_plain = agglomerative_params(
                &matrix,
                &ClusterParams {
                    linkage,
                    algorithm,
                    min_clusters: 1,
                    compaction: Compaction::Never,
                },
            );
            let capped_compacting = agglomerative_params(
                &matrix,
                &ClusterParams {
                    linkage,
                    algorithm,
                    min_clusters: 20,
                    compaction: Compaction::Always,
                },
            );
            assert!(
                capped_compacting.merges().len() < full_plain.merges().len(),
                "{linkage:?}/{algorithm:?}: cap did not shorten the build"
            );
            assert_eq!(
                capped_compacting.merges(),
                &full_plain.merges()[..capped_compacting.merges().len()],
                "{linkage:?}/{algorithm:?}: capped+compacting is not a bit-for-bit prefix"
            );
            for k in [20usize, 25, 40, 100, 299] {
                assert_eq!(
                    capped_compacting.cut(k),
                    full_plain.cut(k),
                    "{linkage:?}/{algorithm:?}: cut({k})"
                );
            }
        }
    }
}
