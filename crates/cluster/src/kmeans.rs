//! k-means clustering with k-means++ seeding.
//!
//! Not part of the DUST algorithm itself, but used as an ablation
//! alternative to hierarchical clustering in the benchmarks and as a speed
//! reference.

use crate::Assignment;
use dust_embed::{Distance, EmbeddingStore, Vector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Result of running k-means.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KMeansResult {
    /// Cluster assignment per input point.
    pub assignment: Assignment,
    /// Final centroids (length = number of clusters actually produced).
    pub centroids: Vec<Vector>,
    /// Number of iterations executed.
    pub iterations: usize,
    /// Final within-cluster sum of squared distances.
    pub inertia: f64,
}

/// Run k-means with k-means++ initialization.
///
/// `k` is clamped to the number of points. Distances used for assignment are
/// squared Euclidean regardless of `distance`, which is only used for the
/// seeding probabilities (this mirrors the common practice of clustering
/// normalized embeddings with Euclidean k-means).
pub fn kmeans(
    points: &[Vector],
    k: usize,
    max_iterations: usize,
    seed: u64,
    distance: Distance,
) -> KMeansResult {
    let n = points.len();
    if n == 0 || k == 0 {
        return KMeansResult {
            assignment: vec![],
            centroids: vec![],
            iterations: 0,
            inertia: 0.0,
        };
    }
    let k = k.min(n);
    let mut rng = StdRng::seed_from_u64(seed);
    // The store caches per-point norms, so the k-means++ seeding distances
    // (cosine by default) skip the per-call norm of the point side.
    let store = EmbeddingStore::from_vectors(points);
    let mut centroids = plus_plus_init(points, &store, k, &mut rng, distance);
    let mut assignment = vec![0usize; n];
    let mut iterations = 0usize;

    for it in 0..max_iterations.max(1) {
        iterations = it + 1;
        // assignment step
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (c, centroid) in centroids.iter().enumerate() {
                let d = squared_euclidean(p, centroid);
                if d < best_d {
                    best_d = d;
                    best = c;
                }
            }
            if assignment[i] != best {
                assignment[i] = best;
                changed = true;
            }
        }
        // update step
        let dim = points[0].dim();
        let mut sums = vec![Vector::zeros(dim); k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            sums[assignment[i]].add_assign(p);
            counts[assignment[i]] += 1;
        }
        for (c, count) in counts.iter().enumerate() {
            if *count > 0 {
                let mut mean = sums[c].clone();
                mean.scale(1.0 / *count as f32);
                centroids[c] = mean;
            }
        }
        if !changed && it > 0 {
            break;
        }
    }

    let inertia = points
        .iter()
        .enumerate()
        .map(|(i, p)| squared_euclidean(p, &centroids[assignment[i]]))
        .sum();

    // densify cluster ids (empty clusters can appear)
    let mut remap = std::collections::HashMap::new();
    let mut dense = Vec::with_capacity(n);
    for &c in &assignment {
        let next = remap.len();
        dense.push(*remap.entry(c).or_insert(next));
    }
    let kept_centroids: Vec<Vector> = {
        let mut pairs: Vec<(usize, usize)> = remap.iter().map(|(&c, &d)| (d, c)).collect();
        pairs.sort_unstable();
        pairs
            .into_iter()
            .map(|(_, c)| centroids[c].clone())
            .collect()
    };

    KMeansResult {
        assignment: dense,
        centroids: kept_centroids,
        iterations,
        inertia,
    }
}

fn squared_euclidean(a: &Vector, b: &Vector) -> f64 {
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| ((x - y) as f64).powi(2))
        .sum()
}

fn plus_plus_init(
    points: &[Vector],
    store: &EmbeddingStore,
    k: usize,
    rng: &mut StdRng,
    distance: Distance,
) -> Vec<Vector> {
    let n = points.len();
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.gen_range(0..n)].clone());
    while centroids.len() < k {
        let weights: Vec<f64> = (0..n)
            .map(|i| {
                centroids
                    .iter()
                    .map(|c| store.distance_to_vector(distance, i, c).powi(2))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
        let total: f64 = weights.iter().sum();
        if total <= 1e-15 {
            // all points identical to existing centroids; duplicate one
            centroids.push(points[rng.gen_range(0..n)].clone());
            continue;
        }
        let mut target = rng.gen::<f64>() * total;
        let mut chosen = n - 1;
        for (i, w) in weights.iter().enumerate() {
            target -= w;
            if target <= 0.0 {
                chosen = i;
                break;
            }
        }
        centroids.push(points[chosen].clone());
    }
    centroids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num_clusters;

    fn blobs() -> Vec<Vector> {
        let mut pts = Vec::new();
        for i in 0..15 {
            pts.push(Vector::new(vec![(i % 5) as f32 * 0.1, 0.0]));
        }
        for i in 0..15 {
            pts.push(Vector::new(vec![8.0 + (i % 5) as f32 * 0.1, 9.0]));
        }
        pts
    }

    #[test]
    fn recovers_two_blobs() {
        let pts = blobs();
        let result = kmeans(&pts, 2, 50, 13, Distance::Euclidean);
        assert_eq!(num_clusters(&result.assignment), 2);
        assert!(result.assignment[..15]
            .iter()
            .all(|&c| c == result.assignment[0]));
        assert!(result.assignment[15..]
            .iter()
            .all(|&c| c == result.assignment[15]));
        assert!(result.inertia < 10.0);
        assert!(result.iterations >= 1);
    }

    #[test]
    fn k_clamped_to_number_of_points() {
        let pts = vec![Vector::new(vec![0.0]), Vector::new(vec![1.0])];
        let result = kmeans(&pts, 10, 10, 1, Distance::Euclidean);
        assert!(num_clusters(&result.assignment) <= 2);
    }

    #[test]
    fn empty_input() {
        let result = kmeans(&[], 3, 10, 1, Distance::Euclidean);
        assert!(result.assignment.is_empty());
        assert!(result.centroids.is_empty());
    }

    #[test]
    fn identical_points_produce_single_effective_cluster() {
        let pts = vec![Vector::new(vec![2.0, 2.0]); 6];
        let result = kmeans(&pts, 3, 10, 5, Distance::Euclidean);
        assert_eq!(result.assignment.len(), 6);
        assert!(result.inertia < 1e-9);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let pts = blobs();
        let a = kmeans(&pts, 2, 50, 99, Distance::Euclidean);
        let b = kmeans(&pts, 2, 50, 99, Distance::Euclidean);
        assert_eq!(a.assignment, b.assignment);
    }
}
