//! Medoids: the central-most element of a cluster.
//!
//! The DUST diversifier (Sec. 5.2) selects each cluster's medoid as the
//! cluster's candidate diverse tuple, because medoids are robust to outliers.
//!
//! Two paths are provided: the matrix-backed functions read a precomputed
//! [`PairwiseMatrix`] (O(1) per pair — the DUST/CLT hot path, which reuses
//! the matrix already built for clustering), while the slice-based functions
//! keep the original convenience API and compute distances through a shared
//! [`EmbeddingStore`] with cached norms.

use crate::clusters_from_assignment;
use dust_embed::{Distance, EmbeddingStore, PairwiseMatrix, Vector};

/// Index (into `points`) of the medoid of the subset `members`.
///
/// The medoid minimizes the sum of distances to the other members; ties are
/// broken by the first listed member for determinism. Returns `None` when
/// `members` is empty. Touches only the member pairs (reference distance
/// path) — batch callers should prefer [`medoid_with_store`] or
/// [`medoid_in_matrix`].
pub fn medoid(points: &[Vector], members: &[usize], distance: Distance) -> Option<usize> {
    best_member(members, |i, j| distance.between(&points[i], &points[j]))
}

/// [`medoid`] over a prebuilt store (avoids re-deriving norms per call).
pub fn medoid_with_store(
    store: &EmbeddingStore,
    members: &[usize],
    distance: Distance,
) -> Option<usize> {
    best_member(members, |i, j| store.distance(distance, i, j))
}

/// Medoid of `members` (indices into `matrix`) read from a precomputed
/// pairwise matrix.
pub fn medoid_in_matrix(matrix: &PairwiseMatrix, members: &[usize]) -> Option<usize> {
    best_member(members, |i, j| matrix.get(i, j))
}

/// Shared medoid scan: minimize the summed distance to the other members.
fn best_member(members: &[usize], pair: impl Fn(usize, usize) -> f64) -> Option<usize> {
    if members.is_empty() {
        return None;
    }
    if members.len() == 1 {
        return Some(members[0]);
    }
    let mut best_idx = members[0];
    let mut best_cost = f64::INFINITY;
    for &i in members {
        let cost: f64 = members
            .iter()
            .filter(|&&j| j != i)
            .map(|&j| pair(i, j))
            .sum();
        if cost < best_cost - 1e-15 {
            best_cost = cost;
            best_idx = i;
        }
    }
    Some(best_idx)
}

/// Medoid of every cluster in an assignment, ordered by cluster id.
pub fn cluster_medoids(points: &[Vector], assignment: &[usize], distance: Distance) -> Vec<usize> {
    let store = EmbeddingStore::from_vectors(points);
    clusters_from_assignment(assignment)
        .iter()
        .filter_map(|members| medoid_with_store(&store, members, distance))
        .collect()
}

/// Medoid of every cluster, read from a precomputed pairwise matrix (the
/// DUST/CLT path: the same matrix already drove the clustering).
pub fn cluster_medoids_from_matrix(matrix: &PairwiseMatrix, assignment: &[usize]) -> Vec<usize> {
    clusters_from_assignment(assignment)
        .iter()
        .filter_map(|members| medoid_in_matrix(matrix, members))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn points() -> Vec<Vector> {
        vec![
            Vector::new(vec![0.0, 0.0]),
            Vector::new(vec![1.0, 0.0]),
            Vector::new(vec![2.0, 0.0]),
            Vector::new(vec![10.0, 0.0]),
            Vector::new(vec![11.0, 0.0]),
        ]
    }

    #[test]
    fn medoid_is_the_central_point() {
        let pts = points();
        assert_eq!(medoid(&pts, &[0, 1, 2], Distance::Euclidean), Some(1));
    }

    #[test]
    fn medoid_is_robust_to_an_outlier() {
        // mean of {0, 1, 2, 100} is pulled toward the outlier, but the medoid
        // stays within the dense region.
        let pts = vec![
            Vector::new(vec![0.0]),
            Vector::new(vec![1.0]),
            Vector::new(vec![2.0]),
            Vector::new(vec![100.0]),
        ];
        let m = medoid(&pts, &[0, 1, 2, 3], Distance::Euclidean).unwrap();
        assert!(m <= 2, "medoid should not be the outlier");
    }

    #[test]
    fn empty_and_singleton_members() {
        let pts = points();
        assert_eq!(medoid(&pts, &[], Distance::Euclidean), None);
        assert_eq!(medoid(&pts, &[3], Distance::Euclidean), Some(3));
    }

    #[test]
    fn cluster_medoids_cover_every_cluster() {
        let pts = points();
        let assignment = vec![0, 0, 0, 1, 1];
        let medoids = cluster_medoids(&pts, &assignment, Distance::Euclidean);
        assert_eq!(medoids.len(), 2);
        assert_eq!(medoids[0], 1);
        assert!(medoids[1] == 3 || medoids[1] == 4);
    }

    #[test]
    fn matrix_path_agrees_with_store_path() {
        let pts = points();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        let assignment = vec![0, 0, 0, 1, 1];
        assert_eq!(
            cluster_medoids_from_matrix(&matrix, &assignment),
            cluster_medoids(&pts, &assignment, Distance::Euclidean)
        );
        assert_eq!(
            medoid_in_matrix(&matrix, &[0, 1, 2]),
            medoid(&pts, &[0, 1, 2], Distance::Euclidean)
        );
        assert_eq!(medoid_in_matrix(&matrix, &[]), None);
    }

    #[test]
    fn ties_break_deterministically() {
        let pts = vec![Vector::new(vec![0.0]), Vector::new(vec![1.0])];
        // both points have the same cost; the first listed member wins
        assert_eq!(medoid(&pts, &[0, 1], Distance::Euclidean), Some(0));
        assert_eq!(medoid(&pts, &[1, 0], Distance::Euclidean), Some(1));
    }
}
