//! The nearest-neighbour-chain agglomerative engine.
//!
//! Grows a chain of successive nearest neighbours until it finds a
//! *reciprocal* nearest-neighbour pair, merges it, and continues from the
//! surviving chain — O(n²) time with no priority queue. Valid only for
//! **reducible** linkages (single/complete/average/Ward), where merging a
//! reciprocal pair cannot invalidate the rest of the chain; centroid and
//! median linkage break that property and are routed to the
//! [generic](super::generic) engine instead.
//!
//! Tie-breaking (see [`Dendrogram`](super::Dendrogram)): chains restart at
//! the lowest active slot, nearest-neighbour scans return the lowest tying
//! index, the chain predecessor wins ties (reciprocity), and the merged
//! cluster keeps the higher slot.

use super::workspace::LinkageWorkspace;
use super::{Linkage, Merge};

pub(super) fn cluster(ws: &mut LinkageWorkspace, linkage: Linkage) -> Vec<Merge> {
    debug_assert!(
        linkage.is_reducible(),
        "NN-chain is invalid for {linkage:?}; use the generic engine"
    );
    let n = ws.len();
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));
    if n < 2 {
        return merges;
    }
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    while merges.len() + 1 < n {
        if chain.is_empty() {
            chain.push(ws.first_active().expect("at least one active cluster"));
        }
        loop {
            let current = *chain.last().expect("chain non-empty");
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            // nearest active neighbour of `current` (retired slots are
            // poisoned with INFINITY, so no activity test per element)
            let (best, _) = ws.nearest(current, prev);
            if Some(best) == prev {
                // reciprocal nearest neighbours: merge current and prev
                chain.pop();
                chain.pop();
                merges.push(ws.merge(current, best, linkage, |_, _| {}));
                break;
            }
            chain.push(best);
        }
        // Drop chain entries that are no longer active (their cluster merged).
        while let Some(&last) = chain.last() {
            if ws.is_active(last) {
                break;
            }
            chain.pop();
        }
    }
    merges
}
