//! The nearest-neighbour-chain agglomerative engine.
//!
//! Grows a chain of successive nearest neighbours until it finds a
//! *reciprocal* nearest-neighbour pair, merges it, and continues from the
//! surviving chain — O(n²) time with no priority queue. Valid only for
//! **reducible** linkages (single/complete/average/Ward), where merging a
//! reciprocal pair cannot invalidate the rest of the chain; centroid and
//! median linkage break that property and are routed to the
//! [generic](super::generic) engine instead.
//!
//! # Capped (partial) runs
//!
//! With `min_clusters > 1` the engine stops early — but *not* simply after
//! `n − min_clusters` merges: the chain discovers merges out of height
//! order (a chain started at slot 0 can merge a far reciprocal pair while a
//! closer pair elsewhere is still unmerged), so a count-only stop could
//! omit merges the `cut(k)` of the full dendrogram would apply. The safe
//! rule, checked once the live cluster count reaches the cap: stop only
//! when the smallest remaining live pair distance is **strictly greater**
//! than every merge performed so far. For reducible linkages all future
//! merge heights are bounded below by the current live minimum, so the
//! performed merges are then exactly the lowest part of the full merge
//! tree and every `cut(k)` with `k ≥ n − merges` matches the full
//! dendrogram's (ties at the boundary keep the engine merging, which keeps
//! the guarantee exact even on degenerate all-equal inputs).
//!
//! Tie-breaking (see [`Dendrogram`](super::Dendrogram)): chains restart at
//! the lowest active slot, nearest-neighbour scans return the lowest tying
//! index, the chain predecessor wins ties (reciprocity), and the merged
//! cluster keeps the higher slot. Compaction (see
//! [`LinkageWorkspace::maybe_compact`]) preserves the relative order of
//! live slots, so a compacting run merges identically — the chain's slot
//! references are just renumbered through the returned remap.

use super::workspace::LinkageWorkspace;
use super::{Linkage, Merge};

pub(super) fn cluster(
    ws: &mut LinkageWorkspace,
    linkage: Linkage,
    min_clusters: usize,
) -> Vec<Merge> {
    debug_assert!(
        linkage.is_reducible(),
        "NN-chain is invalid for {linkage:?}; use the generic engine"
    );
    let n = ws.len();
    let cap = min_clusters.max(1);
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(cap));
    if n < 2 {
        return merges;
    }
    let mut max_height = f64::NEG_INFINITY;
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    while merges.len() + 1 < n {
        // Capped stop: once at most `cap` clusters remain, stop as soon as
        // every remaining live pair is strictly farther than every merge
        // performed — the performed set is then exactly the bottom of the
        // full merge tree (see the module docs). On a boundary tie keep
        // merging; correctness over savings.
        if cap > 1 && n - merges.len() <= cap && ws.min_active_distance() > max_height {
            break;
        }
        if chain.is_empty() {
            chain.push(ws.first_active().expect("at least one active cluster"));
        }
        loop {
            let current = *chain.last().expect("chain non-empty");
            let prev = chain.len().checked_sub(2).map(|i| chain[i]);
            // nearest active neighbour of `current` (retired slots are
            // poisoned with INFINITY, so no activity test per element)
            let (best, _) = ws.nearest(current, prev);
            if Some(best) == prev {
                // reciprocal nearest neighbours: merge current and prev
                chain.pop();
                chain.pop();
                let merge = ws.merge(current, best, linkage, |_, _| {});
                max_height = max_height.max(merge.distance);
                merges.push(merge);
                break;
            }
            chain.push(best);
        }
        // Drop chain entries that are no longer active (their cluster merged).
        while let Some(&last) = chain.last() {
            if ws.is_active(last) {
                break;
            }
            chain.pop();
        }
        // After the cleanup every chain entry is live, so a compaction's
        // remap renumbers them all.
        if let Some(remap) = ws.maybe_compact() {
            for slot in &mut chain {
                *slot = remap[*slot];
            }
        }
    }
    merges
}
