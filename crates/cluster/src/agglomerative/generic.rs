//! The cached-nearest-neighbour ("generic") agglomerative engine,
//! fastcluster-style.
//!
//! Maintains, for every active row `i`, a cached candidate `(nghbr[i],
//! mindist[i])` — the nearest higher-index slot the row has seen — plus a
//! lazy min-heap of `(mindist, row)` entries. Each iteration pops the
//! globally closest candidate, **validates it lazily** (the row may have
//! been retired, the entry superseded by a smaller push, or the cached
//! neighbour retired/drifted by a Lance–Williams update), merges, and then
//! repairs only what the merge actually touched: the merged row is
//! rescanned, and lower rows adopt their new distance to the merged slot
//! only when it undercuts their cache. Rows whose cached neighbour was
//! retired are *not* rescanned eagerly — their stale entry surfaces at the
//! top of the heap eventually and is repaired then. This avoids the
//! NN-chain's repeated full-row rescans over retired-slot-poisoned rows and
//! is the only valid engine for the non-reducible centroid/median linkages.
//!
//! The cache invariant that makes lazy validation sound: `mindist[i]` never
//! exceeds row `i`'s true current minimum (decreases are adopted eagerly,
//! increases only ever make the cache stale-*low*), and the heap always
//! holds an entry keyed at the current `mindist[i]` for every active row
//! with a live higher-index neighbour. A popped entry that passes
//! validation is therefore the true global minimum.
//!
//! Tie-breaking (see [`Dendrogram`](super::Dendrogram)): the heap orders
//! candidates by `(distance, row)`, per-row scans return the lowest tying
//! index, equal-distance updates adopt the lower neighbour index, and the
//! merged cluster keeps the higher slot — i.e. the lexicographically
//! smallest `(distance, i, j)` pair always merges first.

use super::workspace::LinkageWorkspace;
use super::{Linkage, Merge};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry: `(distance bits, row)`. Working distances are non-negative
/// and finite, so the IEEE-754 bit pattern of an `f32` orders exactly like
/// the value — no float-ordering wrapper needed.
type Entry = Reverse<(u32, usize)>;

pub(super) fn cluster(ws: &mut LinkageWorkspace, linkage: Linkage) -> Vec<Merge> {
    let n = ws.len();
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));
    if n < 2 {
        return merges;
    }
    // Per-row cached candidate: nearest higher-index slot seen so far.
    let mut nghbr: Vec<usize> = vec![usize::MAX; n];
    let mut mindist: Vec<f32> = vec![f32::INFINITY; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(2 * n);
    for i in 0..n - 1 {
        refresh(ws, &mut nghbr, &mut mindist, &mut heap, i);
    }

    while merges.len() + 1 < n {
        // Pop candidates until one survives lazy validation.
        let (i, j) = loop {
            let Reverse((bits, i)) = heap.pop().expect("an active pair must remain");
            if !ws.is_active(i) || bits != mindist[i].to_bits() {
                // Slot retired, or entry superseded by a fresher push for
                // this row — the current cache still has a live entry.
                continue;
            }
            let j = nghbr[i];
            if ws.is_active(j) && ws.get32(i, j) == mindist[i] {
                break (i, j);
            }
            // Cached neighbour retired, or its distance drifted upward
            // under a Lance–Williams update: rescan the row now (lazy
            // invalidation — this is the only place stale caches are paid
            // for) and keep popping.
            refresh(ws, &mut nghbr, &mut mindist, &mut heap, i);
        };

        // `i < j` by construction; the merged cluster keeps slot `j` (the
        // higher one — its condensed row tail is short, so the mandatory
        // rescan below is cheap). Lower rows see a new distance to the
        // merged slot: adopt it in the update pass itself (no second read
        // of the matrix) whenever it undercuts the cache — this keeps
        // `mindist` a lower bound on the true row minimum, the invariant
        // lazy validation relies on; on an exact tie prefer the lower
        // neighbour index. Retired rows see `INFINITY` and never qualify.
        // Pairs `(j, k)` with `k > j` live in row `j`, which is rescanned
        // wholesale below; row `i` is retired along with its cache.
        let (nghbr_ref, mindist_ref, heap_ref) = (&mut nghbr, &mut mindist, &mut heap);
        merges.push(ws.merge(i, j, linkage, |k, d| {
            if k < j {
                if d < mindist_ref[k] {
                    nghbr_ref[k] = j;
                    mindist_ref[k] = d;
                    heap_ref.push(Reverse((d.to_bits(), k)));
                } else if d == mindist_ref[k] && j < nghbr_ref[k] {
                    // Same key, so the row's existing heap entry stays valid.
                    nghbr_ref[k] = j;
                }
            }
        }));

        // Row `j` was rewritten wholesale by the Lance–Williams update.
        refresh(ws, &mut nghbr, &mut mindist, &mut heap, j);
    }
    merges
}

/// Rescan row `i`'s higher-index tail and push the fresh candidate (rows
/// with no live higher-index neighbour park at `INFINITY`; their remaining
/// pairs belong to lower rows).
fn refresh(
    ws: &LinkageWorkspace,
    nghbr: &mut [usize],
    mindist: &mut [f32],
    heap: &mut BinaryHeap<Entry>,
    i: usize,
) {
    match ws.nearest_in_tail(i) {
        Some((j, d)) => {
            nghbr[i] = j;
            mindist[i] = d;
            heap.push(Reverse((d.to_bits(), i)));
        }
        None => {
            nghbr[i] = usize::MAX;
            mindist[i] = f32::INFINITY;
        }
    }
}
