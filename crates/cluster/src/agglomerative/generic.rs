//! The cached-nearest-neighbour ("generic") agglomerative engine,
//! fastcluster-style.
//!
//! Maintains, for every active row `i`, a cached candidate `(nghbr[i],
//! mindist[i])` — the nearest higher-index slot the row has seen — plus a
//! lazy min-heap of `(mindist, row)` entries. Each iteration pops the
//! globally closest candidate, **validates it lazily** (the row may have
//! been retired, the entry superseded by a smaller push, or the cached
//! neighbour retired/drifted by a Lance–Williams update), merges, and then
//! repairs only what the merge actually touched: the merged row is
//! rescanned, and lower rows adopt their new distance to the merged slot
//! only when it undercuts their cache. Rows whose cached neighbour was
//! retired are *not* rescanned eagerly — their stale entry surfaces at the
//! top of the heap eventually and is repaired then. This avoids the
//! NN-chain's repeated full-row rescans over retired-slot-poisoned rows and
//! is the only valid engine for the non-reducible centroid/median linkages.
//!
//! The cache invariant that makes lazy validation sound: `mindist[i]` never
//! exceeds row `i`'s true current minimum (decreases are adopted eagerly,
//! increases only ever make the cache stale-*low*), and the heap always
//! holds an entry keyed at the current `mindist[i]` for every active row
//! with a live higher-index neighbour. A popped entry that passes
//! validation is therefore the true global minimum.
//!
//! # Capped (partial) runs
//!
//! This engine merges in exactly the greedy ascending `(distance, i, j)`
//! order, so with `min_clusters > 1` it can simply stop once `n −
//! min_clusters` merges are done **and** the next validated candidate is
//! strictly farther than every merge performed: the performed merges are
//! then precisely the strictly-lowest part of the full merge tree, making
//! every `cut(k)` with `k ≥ n − merges` identical to the full
//! dendrogram's. Boundary ties keep the engine merging (degenerate
//! all-tied inputs fall back to a full build) so the guarantee is exact —
//! for *reducible* linkages; the caller skips capping for centroid/median,
//! whose height inversions can dip below the boundary later.
//!
//! # Compaction
//!
//! After a workspace compaction (see
//! [`LinkageWorkspace::maybe_compact`]) the per-row caches are renumbered
//! through the returned remap and the heap is rebuilt with one entry per
//! live row at its current cached key. Stale-low caches stay stale-low
//! (they surface and repair exactly as before), and since compaction
//! preserves relative slot order and moves values verbatim, the merge
//! sequence is bit-for-bit that of a non-compacting run.
//!
//! Tie-breaking (see [`Dendrogram`](super::Dendrogram)): the heap orders
//! candidates by `(distance, row)`, per-row scans return the lowest tying
//! index, equal-distance updates adopt the lower neighbour index, and the
//! merged cluster keeps the higher slot — i.e. the lexicographically
//! smallest `(distance, i, j)` pair always merges first.

use super::workspace::LinkageWorkspace;
use super::{Linkage, Merge};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Heap entry: `(distance bits, row)`. Working distances are non-negative
/// and finite, so the IEEE-754 bit pattern of an `f32` orders exactly like
/// the value — no float-ordering wrapper needed.
type Entry = Reverse<(u32, usize)>;

pub(super) fn cluster(
    ws: &mut LinkageWorkspace,
    linkage: Linkage,
    min_clusters: usize,
) -> Vec<Merge> {
    let n = ws.len();
    let cap = min_clusters.max(1);
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(cap));
    if n < 2 {
        return merges;
    }
    // Per-row cached candidate: nearest higher-index slot seen so far.
    let mut nghbr: Vec<usize> = vec![usize::MAX; n];
    let mut mindist: Vec<f32> = vec![f32::INFINITY; n];
    let mut heap: BinaryHeap<Entry> = BinaryHeap::with_capacity(2 * n);
    for i in 0..n - 1 {
        refresh(ws, &mut nghbr, &mut mindist, &mut heap, i);
    }
    let mut max_height = f64::NEG_INFINITY;

    while merges.len() + 1 < n {
        // Pop candidates until one survives lazy validation.
        let (i, j) = loop {
            let Reverse((bits, i)) = heap.pop().expect("an active pair must remain");
            if !ws.is_active(i) || bits != mindist[i].to_bits() {
                // Slot retired, or entry superseded by a fresher push for
                // this row — the current cache still has a live entry.
                continue;
            }
            let j = nghbr[i];
            if j != usize::MAX && ws.is_active(j) && ws.get32(i, j) == mindist[i] {
                break (i, j);
            }
            // Cached neighbour retired (possibly compacted away), or its
            // distance drifted upward under a Lance–Williams update:
            // rescan the row now (lazy invalidation — this is the only
            // place stale caches are paid for) and keep popping.
            refresh(ws, &mut nghbr, &mut mindist, &mut heap, i);
        };

        // Capped stop: merges happen in greedy ascending order, so once
        // enough are done and the next pair is strictly farther than every
        // performed merge, the remaining tree can never be consulted by an
        // in-range cut. Boundary ties keep merging.
        if cap > 1 && merges.len() + cap >= n && ws.get32(i, j) as f64 > max_height {
            break;
        }

        // `i < j` by construction; the merged cluster keeps slot `j` (the
        // higher one — its condensed row tail is short, so the mandatory
        // rescan below is cheap). Lower rows see a new distance to the
        // merged slot: adopt it in the update pass itself (no second read
        // of the matrix) whenever it undercuts the cache — this keeps
        // `mindist` a lower bound on the true row minimum, the invariant
        // lazy validation relies on; on an exact tie prefer the lower
        // neighbour index. Retired rows see `INFINITY` and never qualify.
        // Pairs `(j, k)` with `k > j` live in row `j`, which is rescanned
        // wholesale below; row `i` is retired along with its cache.
        let (nghbr_ref, mindist_ref, heap_ref) = (&mut nghbr, &mut mindist, &mut heap);
        let merge = ws.merge(i, j, linkage, |k, d| {
            if k < j {
                if d < mindist_ref[k] {
                    nghbr_ref[k] = j;
                    mindist_ref[k] = d;
                    heap_ref.push(Reverse((d.to_bits(), k)));
                } else if d == mindist_ref[k] && j < nghbr_ref[k] {
                    // Same key, so the row's existing heap entry stays valid.
                    nghbr_ref[k] = j;
                }
            }
        });
        max_height = max_height.max(merge.distance);
        merges.push(merge);

        // Row `j` was rewritten wholesale by the Lance–Williams update.
        refresh(ws, &mut nghbr, &mut mindist, &mut heap, j);

        // On compaction, renumber the caches and rebuild the heap: one
        // entry per live row at its current (possibly stale-low) key — the
        // exact lazy-validation state, minus already-dead entries.
        if let Some(remap) = ws.maybe_compact() {
            let m = remap.iter().filter(|&&p| p != usize::MAX).count();
            let mut new_nghbr = vec![usize::MAX; m];
            let mut new_mindist = vec![f32::INFINITY; m];
            heap.clear();
            for (old, &new_i) in remap.iter().enumerate() {
                if new_i == usize::MAX {
                    continue;
                }
                let nb = nghbr[old];
                new_nghbr[new_i] = if nb == usize::MAX {
                    usize::MAX
                } else {
                    remap[nb]
                };
                new_mindist[new_i] = mindist[old];
                if mindist[old].is_finite() {
                    heap.push(Reverse((mindist[old].to_bits(), new_i)));
                }
            }
            nghbr = new_nghbr;
            mindist = new_mindist;
        }
    }
    merges
}

/// Rescan row `i`'s higher-index tail and push the fresh candidate (rows
/// with no live higher-index neighbour park at `INFINITY`; their remaining
/// pairs belong to lower rows).
fn refresh(
    ws: &LinkageWorkspace,
    nghbr: &mut [usize],
    mindist: &mut [f32],
    heap: &mut BinaryHeap<Entry>,
    i: usize,
) {
    match ws.nearest_in_tail(i) {
        Some((j, d)) => {
            nghbr[i] = j;
            mindist[i] = d;
            heap.push(Reverse((d.to_bits(), i)));
        }
        None => {
            nghbr[i] = usize::MAX;
            mindist[i] = f32::INFINITY;
        }
    }
}
