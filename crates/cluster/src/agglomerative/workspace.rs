//! The shared mutable working state of both agglomerative engines.
//!
//! [`LinkageWorkspace`] holds a condensed `f32` copy of the pairwise matrix
//! (seeded with one memcpy from [`PairwiseMatrix::condensed_data`]) plus the
//! per-slot cluster bookkeeping (active flag, size, dendrogram cluster id).
//! Retired cluster slots are *poisoned* with `f32::INFINITY`, so
//! nearest-neighbour scans need no per-element activity test — the first
//! pass is a pure min-reduction the compiler can vectorize over the
//! contiguous half of each row. Poison survives every Lance–Williams
//! update: min/max/average keep `INFINITY` infinite, and the squared
//! formulas (Ward/centroid/median) only ever subtract a *finite* merge
//! distance from an infinite sum. This is a copy of matrix data, not a
//! second distance implementation — no distances are computed here.
//!
//! # Compaction
//!
//! In **compacting** mode the workspace additionally *physically shrinks*
//! as slots retire: whenever at most half the slots are still live, the
//! condensed matrix is rebuilt over the live slots only (in ascending slot
//! order, values copied verbatim — nothing is recomputed), so every later
//! merge pass and nearest-neighbour scan walks a dense live prefix instead
//! of an INF-poisoned full row. The halving threshold makes the total
//! copy cost a geometric series (< n²/3 extra element moves) while keeping
//! the resident working set proportional to the square of the *live*
//! cluster count — the difference between streaming a 200 MB matrix per
//! merge and an L3-resident one at n ≈ 10000. Because the live order is
//! preserved and values move verbatim, compacting runs are bit-for-bit
//! identical to non-compacting runs (pinned by the equivalence suite);
//! engines only need to renumber their slot references through the remap
//! returned by [`LinkageWorkspace::maybe_compact`].
//!
//! Both engines merge through [`LinkageWorkspace::merge`], which applies the
//! Lance–Williams update, retires the lower slot (the merged cluster always
//! keeps the **higher** slot index — part of the deterministic tie-breaking
//! contract, see [`Dendrogram`](super::Dendrogram), and the reason the
//! generic engine's post-merge rescans stay short), and emits the
//! [`Merge`] record.

use super::{Linkage, Merge};
use dust_embed::PairwiseMatrix;

/// Below this slot capacity compaction is never attempted: the whole
/// workspace already fits comfortably in cache and the copy would be churn.
const MIN_COMPACT_STRIDE: usize = 16;

pub(super) struct LinkageWorkspace {
    /// Number of leaves (input points). Fixed for the workspace's lifetime;
    /// dendrogram cluster ids are `n_leaves + merge_index`.
    n_leaves: usize,
    /// Current slot capacity: the condensed layout is over `stride` slots.
    /// Equal to `n_leaves` until a compaction shrinks it.
    stride: usize,
    /// Number of live (unretired) slots; `live <= stride`.
    live: usize,
    compacting: bool,
    data: Vec<f32>,
    active: Vec<bool>,
    size: Vec<usize>,
    cluster_id: Vec<usize>,
    merges_made: usize,
}

impl LinkageWorkspace {
    pub(super) fn from_matrix(matrix: &PairwiseMatrix, compacting: bool) -> Self {
        let n = matrix.len();
        LinkageWorkspace {
            n_leaves: n,
            stride: n,
            live: n,
            compacting,
            data: matrix.condensed_data().to_vec(),
            active: vec![true; n],
            size: vec![1; n],
            cluster_id: (0..n).collect(),
            merges_made: 0,
        }
    }

    /// Number of leaves (input points).
    pub(super) fn len(&self) -> usize {
        self.n_leaves
    }

    /// Whether slot `i` still holds a live cluster.
    #[inline]
    pub(super) fn is_active(&self, i: usize) -> bool {
        self.active[i]
    }

    /// Lowest-index active slot (chain restarts — lowest index wins).
    pub(super) fn first_active(&self) -> Option<usize> {
        (0..self.stride).find(|&i| self.active[i])
    }

    /// Active slot indices in ascending order.
    pub(super) fn active_slots(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.stride).filter(|&i| self.active[i])
    }

    /// Current working distance between slots `i` and `j` (`INFINITY` when
    /// either slot is retired).
    #[inline]
    pub(super) fn get32(&self, i: usize, j: usize) -> f32 {
        self.data[self.index(i, j)]
    }

    /// Smallest working distance over all live cluster pairs (`INFINITY`
    /// when fewer than two clusters remain) — the capped NN-chain's stop
    /// test. Every live pair `(i, j)` with `i < j` sits in live row `i`'s
    /// contiguous tail, so scanning only the live rows (O(live · stride)
    /// rather than the O(stride²) whole-matrix reduction) sees every live
    /// pair; retired columns inside those tails hold poison and cannot
    /// win. The test only runs once at most `min_clusters` rows are live,
    /// which keeps it cheap even without compaction.
    pub(super) fn min_active_distance(&self) -> f64 {
        let mut min = f32::INFINITY;
        for i in 0..self.stride {
            if !self.active[i] || i + 1 >= self.stride {
                continue;
            }
            let start = self.row_start(i);
            min = min.min(tail_min(&self.data[start..start + (self.stride - 1 - i)]));
        }
        min as f64
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j, "no diagonal entries in the condensed workspace");
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        a * self.stride - a * (a + 1) / 2 + (b - a - 1)
    }

    #[inline]
    fn row_start(&self, i: usize) -> usize {
        i * self.stride - i * (i + 1) / 2
    }

    /// Nearest neighbour of `i` over the whole row: the smallest-index `j`
    /// attaining the row minimum, except that `prev` wins whenever it ties
    /// the minimum (the NN-chain's reciprocity rule). Retired slots hold
    /// `INFINITY` and can never win. Two passes: a branch-free
    /// min-reduction, then a short argmin lookup.
    pub(super) fn nearest(&self, i: usize, prev: Option<usize>) -> (usize, f64) {
        let n = self.stride;
        let mut min = f32::INFINITY;
        // strided column part (j < i), incremental condensed offsets
        if i > 0 {
            let mut idx = i - 1; // (0, i)
            for j in 0..i {
                min = min.min(self.data[idx]);
                idx += n - j - 2;
            }
        }
        // contiguous row part (j > i) — vectorizable 8-lane min-reduction
        if i + 1 < n {
            let start = self.row_start(i);
            min = min.min(tail_min(&self.data[start..start + (n - 1 - i)]));
        }
        debug_assert!(min.is_finite(), "no active neighbour for slot {i}");
        if let Some(p) = prev {
            if self.data[self.index(i, p)] <= min {
                return (p, min as f64);
            }
        }
        if i > 0 {
            let mut idx = i - 1;
            for j in 0..i {
                if self.data[idx] <= min {
                    return (j, min as f64);
                }
                idx += n - j - 2;
            }
        }
        let start = self.row_start(i);
        let offset = self.data[start..start + (n - 1 - i)]
            .iter()
            .position(|&d| d <= min)
            .expect("row minimum must exist");
        (i + 1 + offset, min as f64)
    }

    /// Nearest neighbour of `i` among higher-index slots only (`j > i`) —
    /// the generic engine's per-row cache entry. Returns the smallest-index
    /// `j` attaining the tail minimum, or `None` when every higher slot is
    /// retired (the row's live pairs then belong to lower-index rows).
    /// Contiguous scan: one vectorizable min-reduction plus a position
    /// lookup.
    pub(super) fn nearest_in_tail(&self, i: usize) -> Option<(usize, f32)> {
        if i + 1 >= self.stride {
            return None;
        }
        let start = self.row_start(i);
        let slice = &self.data[start..start + (self.stride - 1 - i)];
        let min = tail_min(slice);
        if !min.is_finite() {
            return None;
        }
        let offset = slice
            .iter()
            .position(|&d| d <= min)
            .expect("finite minimum must exist");
        Some((i + 1 + offset, min))
    }

    /// In compacting mode, physically shrink the workspace once at most half
    /// the slots are live: rebuild the condensed matrix over the live slots
    /// in ascending order (values copied verbatim), renumber the
    /// bookkeeping, and return the slot remap (`remap[old] = new`, or
    /// `usize::MAX` for retired slots) so engines can renumber their own
    /// state. Returns `None` when no compaction happened. Order
    /// preservation is what keeps compacting runs bit-for-bit identical to
    /// non-compacting ones: every tie-break in either engine depends only
    /// on the *relative* order of live slots.
    pub(super) fn maybe_compact(&mut self) -> Option<Vec<usize>> {
        if !self.compacting || self.stride < MIN_COMPACT_STRIDE || self.live * 2 > self.stride {
            return None;
        }
        let live_slots: Vec<usize> = (0..self.stride).filter(|&i| self.active[i]).collect();
        let m = live_slots.len();
        debug_assert_eq!(m, self.live);
        let mut new_data = vec![f32::INFINITY; m * m.saturating_sub(1) / 2];
        let mut out = 0usize;
        for (p, &i) in live_slots.iter().enumerate() {
            let row = self.row_start(i);
            for &j in &live_slots[p + 1..] {
                new_data[out] = self.data[row + j - i - 1];
                out += 1;
            }
        }
        let mut remap = vec![usize::MAX; self.stride];
        for (p, &i) in live_slots.iter().enumerate() {
            // p <= i (ascending live order), so the forward in-place copy
            // never clobbers an unread source entry
            remap[i] = p;
            self.size[p] = self.size[i];
            self.cluster_id[p] = self.cluster_id[i];
        }
        self.size.truncate(m);
        self.cluster_id.truncate(m);
        self.active.clear();
        self.active.resize(m, true);
        self.data = new_data;
        self.stride = m;
        Some(remap)
    }

    /// Merge the clusters in slots `a` and `b`: rewrite `d(k, hi)` for every
    /// other slot via the Lance–Williams update for `linkage`, poison slot
    /// `lo`, and return the dendrogram [`Merge`] record. The merged cluster
    /// keeps the **higher** slot (`hi = max(a, b)`, fastcluster's
    /// convention): fresh clusters drift toward high slots, whose condensed
    /// row tails are short — which is what keeps the generic engine's
    /// mandatory post-merge rescan cheap.
    ///
    /// `on_update(k, d)` is invoked with every rewritten distance (poisoned
    /// slots see `INFINITY` in and out) — the generic engine uses it to
    /// adopt cache decreases without re-reading the matrix; the NN-chain
    /// passes a no-op, which the optimizer erases.
    ///
    /// The pass is the shared O(stride)-per-merge hot loop of both engines,
    /// so it is split into three stride-incremental sections (`k < lo`,
    /// `lo < k < hi`, `k > hi` — no per-element index multiplication) with
    /// the `lo`-column poisoning fused in, and the Lance–Williams formula
    /// is monomorphized per linkage outside the loops.
    pub(super) fn merge(
        &mut self,
        a: usize,
        b: usize,
        linkage: Linkage,
        on_update: impl FnMut(usize, f32),
    ) -> Merge {
        debug_assert!(a != b && self.active[a] && self.active[b]);
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let d_ij = self.data[self.index(lo, hi)] as f64;
        let (ni, nj) = (self.size[lo], self.size[hi]);
        match linkage {
            Linkage::Single => self.merge_loops(lo, hi, |ki, kj, _| ki.min(kj), on_update),
            Linkage::Complete => self.merge_loops(lo, hi, |ki, kj, _| ki.max(kj), on_update),
            Linkage::Average => {
                let (fi, fj) = (ni as f64, nj as f64);
                let inv = 1.0 / (fi + fj);
                self.merge_loops(lo, hi, |ki, kj, _| (fi * ki + fj * kj) * inv, on_update)
            }
            _ => self.merge_loops(
                lo,
                hi,
                |ki, kj, nk| linkage.update(ki, kj, d_ij, ni, nj, nk),
                on_update,
            ),
        }
        // the merged pair's own entry
        let pair_idx = self.row_start(lo) + hi - lo - 1;
        self.data[pair_idx] = f32::INFINITY;
        let merge = Merge {
            left: self.cluster_id[lo],
            right: self.cluster_id[hi],
            distance: d_ij,
            size: ni + nj,
        };
        self.active[lo] = false;
        self.live -= 1;
        self.size[hi] = ni + nj;
        self.cluster_id[hi] = self.n_leaves + self.merges_made;
        self.merges_made += 1;
        merge
    }

    /// The three stride-incremental Lance–Williams sections of [`merge`]:
    /// rewrite `(k, hi)` with `update(d_k_lo, d_k_hi, size[k])` and poison
    /// `(k, lo)`, for every `k` other than `lo`/`hi`.
    ///
    /// Condensed offsets: `index(k, x)` for `k < x` advances by
    /// `stride − k − 2` per step of `k` (strided); for `k > x` the entries
    /// are contiguous in row `x`.
    fn merge_loops(
        &mut self,
        lo: usize,
        hi: usize,
        update: impl Fn(f64, f64, usize) -> f64,
        mut on_update: impl FnMut(usize, f32),
    ) {
        let n = self.stride;
        // k < lo: both (k, lo) and (k, hi) strided with the same step
        let mut ilo = lo.wrapping_sub(1); // index(0, lo)
        let mut ihi = hi - 1; // index(0, hi)
        for k in 0..lo {
            let d = update(self.data[ilo] as f64, self.data[ihi] as f64, self.size[k]) as f32;
            self.data[ihi] = d;
            self.data[ilo] = f32::INFINITY;
            on_update(k, d);
            let stride = n - k - 2;
            ilo += stride;
            ihi += stride;
        }
        // lo < k < hi: (lo, k) contiguous in row lo, (k, hi) strided
        let row_lo = self.row_start(lo);
        let mut ihi = if lo + 1 < hi {
            self.index(lo + 1, hi)
        } else {
            0
        };
        for k in lo + 1..hi {
            let ilo = row_lo + k - lo - 1;
            let d = update(self.data[ilo] as f64, self.data[ihi] as f64, self.size[k]) as f32;
            self.data[ihi] = d;
            self.data[ilo] = f32::INFINITY;
            on_update(k, d);
            ihi += n - k - 2;
        }
        // k > hi: both (lo, k) and (hi, k) contiguous in their rows
        let row_hi = self.row_start(hi);
        for k in hi + 1..n {
            let ilo = row_lo + k - lo - 1;
            let ihi = row_hi + k - hi - 1;
            let d = update(self.data[ilo] as f64, self.data[ihi] as f64, self.size[k]) as f32;
            self.data[ihi] = d;
            self.data[ilo] = f32::INFINITY;
            on_update(k, d);
        }
    }
}

/// Branch-free minimum of a contiguous slice: explicit 8-lane reduction so
/// the compiler emits vector min instructions.
#[inline]
fn tail_min(slice: &[f32]) -> f32 {
    let mut lanes = [f32::INFINITY; 8];
    let mut chunks = slice.chunks_exact(8);
    for chunk in chunks.by_ref() {
        for l in 0..8 {
            lanes[l] = lanes[l].min(chunk[l]);
        }
    }
    let lane_min = lanes.iter().fold(f32::INFINITY, |m, &d| m.min(d));
    chunks.remainder().iter().fold(lane_min, |m, &d| m.min(d))
}
