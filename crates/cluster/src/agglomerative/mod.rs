//! Hierarchical agglomerative clustering.
//!
//! Two interchangeable engines cluster the same INF-poisoned
//! [`LinkageWorkspace`](workspace::LinkageWorkspace) (a condensed `f32`
//! working copy of the shared [`PairwiseMatrix`]):
//!
//! * [`nn_chain`] — the nearest-neighbour-chain algorithm: O(n²), no
//!   priority queue, but valid only for *reducible* linkages
//!   (single/complete/average/Ward);
//! * [`generic`] — the fastcluster-style cached-nearest-neighbour
//!   algorithm: a per-row nearest-neighbour cache with a lazy min-heap and
//!   lazy invalidation, which avoids the NN-chain's repeated full-row
//!   rescans (measurably faster from ~100 points, see `BENCH_cluster.json`)
//!   and handles *every* linkage, including the non-reducible
//!   centroid/median pair.
//!
//! [`AgglomerativeAlgorithm`] selects between them; `Auto` (the default)
//! picks the expected-fastest valid engine. Both engines break distance
//! ties deterministically and produce identical flat clusterings — pinned
//! by the cross-algorithm equivalence suite in
//! `tests/cluster_equivalence.rs`.
//!
//! # Capped dendrograms and compaction
//!
//! Consumers of these dendrograms only ever cut them *coarsely*: DUST cuts
//! at `k·p` clusters, alignment model-selects over `k ∈ [min_k, n]`. A full
//! n-merge build therefore does work nobody consumes. [`ClusterParams`]
//! exposes two knobs that remove it without changing any answer:
//!
//! * **`min_clusters`** (the *k-cap*) stops the engines once the merges
//!   performed are provably exactly the lowest part of the full merge tree
//!   (both engines keep merging across boundary *ties*, so the guarantee
//!   is exact): the returned partial [`Dendrogram`] yields bit-identical
//!   `cut(k)` partitions to the full build for every `k ≥ min_clusters`.
//!   The cap applies to reducible linkages; for the non-reducible
//!   centroid/median pair (whose height inversions can dip below any
//!   stopping boundary) it is ignored and a full dendrogram is built.
//! * **`compaction`** lets the workspace physically shrink as clusters
//!   retire (rebuilt over the live slots at every halving), so late merges
//!   and scans walk a dense live prefix instead of INF-poisoned full rows
//!   — bit-for-bit identical output, much smaller resident working set at
//!   n ≫ 2000.
//!
//! [`agglomerative_constrained`] is a straightforward O(n³) greedy variant
//! that honours cannot-link constraints, used by holistic column alignment
//! where `n` is the (small) number of columns and two columns of the same
//! table must never be clustered together. It doubles as the naive
//! reference implementation the engine equivalence tests compare against;
//! [`agglomerative_constrained_from_matrix`] additionally reuses a
//! caller-held matrix and accepts the same `min_clusters` cap.

mod generic;
mod nn_chain;
mod workspace;

use crate::Assignment;
use dust_embed::{Distance, PairwiseMatrix, Vector};
use serde::{Deserialize, Serialize};
use workspace::LinkageWorkspace;

/// Linkage criterion between clusters.
///
/// All variants are maintained through Lance–Williams updates on the
/// working distance matrix. `Single`/`Complete`/`Average` are graph
/// linkages defined for any dissimilarity; `Ward`/`Centroid`/`Median` use
/// the squared-distance Lance–Williams formulas, which are Euclidean
/// geometry — following fastcluster, they are applied to whatever
/// dissimilarity the matrix holds, but are only geometrically meaningful
/// for [`Distance::Euclidean`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — the paper's choice.
    #[default]
    Average,
    /// Ward's minimum-variance criterion (reducible, squared formula).
    Ward,
    /// Distance between cluster centroids (UPGMC). **Not reducible**: the
    /// NN-chain algorithm is invalid, so this linkage always runs on the
    /// generic engine, and merge heights may contain inversions.
    Centroid,
    /// Distance between cluster "median" points (WPGMC). **Not reducible**
    /// — generic engine only, inversions possible.
    Median,
}

impl Linkage {
    /// Every linkage variant (test/bench sweeps).
    pub const ALL: [Linkage; 6] = [
        Linkage::Single,
        Linkage::Complete,
        Linkage::Average,
        Linkage::Ward,
        Linkage::Centroid,
        Linkage::Median,
    ];

    /// Name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
            Linkage::Ward => "ward",
            Linkage::Centroid => "centroid",
            Linkage::Median => "median",
        }
    }

    /// Whether the linkage is *reducible*: merging a reciprocal
    /// nearest-neighbour pair can never bring a third cluster closer than
    /// the closer of the two it replaced. Reducibility is what makes the
    /// NN-chain algorithm valid, merge heights inversion-free — and the
    /// `min_clusters` cap exact.
    pub fn is_reducible(&self) -> bool {
        !matches!(self, Linkage::Centroid | Linkage::Median)
    }

    /// Lance–Williams update: distance from cluster `k` (size `nk`) to the
    /// merge of clusters `i` (size `ni`) and `j` (size `nj`), where `d_ij`
    /// is the distance between the merged pair. The squared formulas only
    /// ever subtract multiples of the *finite* `d_ij` from sums that are
    /// infinite for poisoned slots, so `INFINITY` propagates cleanly
    /// through every variant.
    fn update(&self, d_ki: f64, d_kj: f64, d_ij: f64, ni: usize, nj: usize, nk: usize) -> f64 {
        let (fi, fj, fk) = (ni as f64, nj as f64, nk as f64);
        match self {
            Linkage::Single => d_ki.min(d_kj),
            Linkage::Complete => d_ki.max(d_kj),
            Linkage::Average => (fi * d_ki + fj * d_kj) / (fi + fj),
            Linkage::Ward => {
                let num = (fi + fk) * d_ki * d_ki + (fj + fk) * d_kj * d_kj - fk * d_ij * d_ij;
                (num / (fi + fj + fk)).max(0.0).sqrt()
            }
            Linkage::Centroid => {
                let s = fi + fj;
                let sq =
                    (fi * d_ki * d_ki + fj * d_kj * d_kj) / s - fi * fj * d_ij * d_ij / (s * s);
                sq.max(0.0).sqrt()
            }
            Linkage::Median => {
                let sq = 0.5 * d_ki * d_ki + 0.5 * d_kj * d_kj - 0.25 * d_ij * d_ij;
                sq.max(0.0).sqrt()
            }
        }
    }
}

/// Which agglomerative engine clusters the workspace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum AgglomerativeAlgorithm {
    /// Pick the expected-fastest *valid* engine: the generic engine for
    /// non-reducible linkages (where NN-chain is invalid) and for large
    /// inputs (where its cached scans win); NN-chain for small reducible
    /// problems, where it avoids the heap setup cost.
    #[default]
    Auto,
    /// Force the nearest-neighbour-chain engine. Requests for a
    /// non-reducible linkage (centroid/median) are routed to the generic
    /// engine anyway — NN-chain would silently corrupt the dendrogram.
    NnChain,
    /// Force the cached-nearest-neighbour generic engine.
    Generic,
}

/// Input size from which `Auto` prefers the generic engine for reducible
/// linkages. The generic engine already wins from ~100 points (1.2× at
/// n = 100 up to ~1.4× at n = 2000, see `BENCH_cluster.json`); below this
/// threshold both engines finish in tens of microseconds and the NN-chain
/// avoids the heap allocation.
const GENERIC_AUTO_THRESHOLD: usize = 64;

/// Input size from which [`Compaction::Auto`] enables workspace compaction.
/// Below it the whole condensed matrix is cache-resident anyway and the
/// copies would be churn; above it the shrinking working set wins (see
/// `BENCH_cluster.json`, capped/compacting rows).
const COMPACTION_AUTO_THRESHOLD: usize = 256;

impl AgglomerativeAlgorithm {
    /// Name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            AgglomerativeAlgorithm::Auto => "auto",
            AgglomerativeAlgorithm::NnChain => "nn_chain",
            AgglomerativeAlgorithm::Generic => "generic",
        }
    }

    /// The engine actually run for `linkage` on an `n`-point workspace.
    fn resolve(&self, linkage: Linkage, n: usize) -> AgglomerativeAlgorithm {
        if !linkage.is_reducible() {
            return AgglomerativeAlgorithm::Generic;
        }
        match self {
            AgglomerativeAlgorithm::Auto => {
                if n >= GENERIC_AUTO_THRESHOLD {
                    AgglomerativeAlgorithm::Generic
                } else {
                    AgglomerativeAlgorithm::NnChain
                }
            }
            resolved => *resolved,
        }
    }
}

/// Whether the linkage workspace physically compacts as clusters retire
/// (see the module docs). Compaction never changes the output — compacting
/// and non-compacting runs are bit-for-bit identical, pinned by the
/// equivalence suite — only the constant factor and resident working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Compaction {
    /// Compact from [`COMPACTION_AUTO_THRESHOLD`] points up (the default).
    #[default]
    Auto,
    /// Always allow compaction (it still only triggers at halvings).
    Always,
    /// Never compact — scans keep walking INF-poisoned full rows.
    Never,
}

/// Full parameter set for an agglomerative clustering run
/// ([`agglomerative_params`]). The convenience wrappers fix the common
/// fields: [`agglomerative_with`] takes linkage/algorithm/cap and leaves
/// compaction on `Auto`; [`agglomerative_from_matrix`] builds a full
/// dendrogram with `Auto` everything.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterParams {
    /// Linkage criterion.
    pub linkage: Linkage,
    /// Engine selection.
    pub algorithm: AgglomerativeAlgorithm,
    /// Stop once every flat clustering with at least this many clusters is
    /// determined (`1` = build the full dendrogram). The resulting partial
    /// [`Dendrogram`] is bit-identical to the full one for every `cut(k)`
    /// with `k ≥ min_clusters`; cutting below [`Dendrogram::min_clusters`]
    /// panics. Ignored (full build) for non-reducible linkages.
    pub min_clusters: usize,
    /// Workspace compaction policy.
    pub compaction: Compaction,
}

impl ClusterParams {
    /// Full dendrogram, automatic engine and compaction selection.
    pub fn new(linkage: Linkage) -> Self {
        ClusterParams {
            linkage,
            algorithm: AgglomerativeAlgorithm::Auto,
            min_clusters: 1,
            compaction: Compaction::Auto,
        }
    }
}

/// One merge step of a dendrogram. Clusters are identified by id: leaves are
/// `0..n`, and the cluster created by the `i`-th merge has id `n + i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id (the one occupying the lower slot).
    pub left: usize,
    /// Second merged cluster id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// The result of hierarchical clustering: a sequence of merges over `n` leaves.
///
/// # Partial (k-capped) dendrograms
///
/// A dendrogram built with `min_clusters > 1` stops early and records the
/// smallest cut it is valid for in [`Dendrogram::min_clusters`]: the
/// engines guarantee the merges present are exactly the lowest part of the
/// full merge tree, so [`Dendrogram::cut`] is **bit-identical to the full
/// build's** for every `k ≥ min_clusters` — and **panics** for
/// `k < min_clusters`, where the answer would silently be wrong.
/// [`Dendrogram::cut_at_distance`] treats absent merges as lying above any
/// threshold, so on a capped dendrogram it never returns fewer than
/// `min_clusters` clusters. (The constrained variant's dendrograms may
/// also be incomplete because *constraints* forbade further merges; that
/// is a property of the data, not a cap, so `min_clusters` stays 1 and
/// coarse cuts simply return more clusters than requested.)
///
/// # Determinism and tie-breaking
///
/// Both engines break distance ties deterministically, lowest index wins:
/// nearest-neighbour scans return the lowest tying slot, the generic
/// engine's heap orders candidates by `(distance, row)` so the
/// lexicographically smallest `(distance, i, j)` pair merges first, the
/// NN-chain restarts at the lowest active slot (with the chain predecessor
/// winning ties, which preserves reciprocity), and a merged cluster always
/// keeps the higher of its two slots. [`Dendrogram::cut`] then applies
/// merges in ascending `(distance, cluster size, smallest contained leaf)`
/// order — a canonical key that is a function of the merge *set* alone, so
/// equal-height merges resolve identically regardless of which engine
/// produced the dendrogram or in which order it emitted them. Together
/// these rules make flat clusterings reproducible across engines and (for
/// tie-free inputs) stable under input permutation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
    min_clusters: usize,
}

impl Dendrogram {
    fn new(n_leaves: usize, merges: Vec<Merge>, min_clusters: usize) -> Self {
        Dendrogram {
            n_leaves,
            merges,
            min_clusters,
        }
    }

    /// Number of leaves (input points).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Smallest `k` this dendrogram can be cut into (1 for a full build).
    /// A k-capped build stops early; [`Dendrogram::cut`] is valid — and
    /// identical to the full build's — for every `k >= min_clusters`, and
    /// panics below it. Boundary ties can make the engines merge past the
    /// requested cap, so this may be *smaller* than the cap requested via
    /// [`ClusterParams::min_clusters`].
    pub fn min_clusters(&self) -> usize {
        self.min_clusters
    }

    /// Cut the dendrogram into (at most) `num_clusters` clusters.
    ///
    /// Merges are applied in ascending canonical order (see the type-level
    /// tie-breaking notes) until the requested number of clusters remains.
    /// When the dendrogram is incomplete because *constraints* stopped it
    /// (the constrained variant) the result may contain more than
    /// `num_clusters` clusters; when it is incomplete because of a k-cap,
    /// requesting a cut below [`Dendrogram::min_clusters`] panics instead
    /// of returning a silently wrong partition. Returns a dense assignment.
    pub fn cut(&self, num_clusters: usize) -> Assignment {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let target = num_clusters.max(1);
        assert!(
            target >= self.min_clusters,
            "cut({target}) is below this capped dendrogram's valid range \
             (min_clusters = {}); rebuild with a smaller ClusterParams::min_clusters",
            self.min_clusters
        );
        let mut uf = UnionFind::new(n);
        let mut remaining = n;
        for &m in &self.canonical_order() {
            if remaining <= target {
                break;
            }
            let merge = &self.merges[m];
            let li = self.leaf_of(merge.left);
            let ri = self.leaf_of(merge.right);
            if uf.union(li, ri) {
                remaining -= 1;
            }
        }
        uf.dense_assignment()
    }

    /// Cut the dendrogram at a distance threshold: only merges with distance
    /// `<= threshold` are applied (order-independent). Merges absent from a
    /// partial dendrogram are treated as above any threshold — on a
    /// k-capped build the result therefore never has fewer than
    /// [`Dendrogram::min_clusters`] clusters.
    pub fn cut_at_distance(&self, threshold: f64) -> Assignment {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let mut uf = UnionFind::new(n);
        for merge in &self.merges {
            if merge.distance <= threshold {
                let li = self.leaf_of(merge.left);
                let ri = self.leaf_of(merge.right);
                uf.union(li, ri);
            }
        }
        uf.dense_assignment()
    }

    /// Merge indices in ascending `(distance, size, smallest leaf)` order.
    /// The size component keeps a nested merge after the child it contains
    /// (a parent is strictly larger); the smallest-leaf component orders
    /// disjoint equal-height merges engine-independently.
    fn canonical_order(&self) -> Vec<usize> {
        let min_leaf = self.min_leaves();
        let mut order: Vec<usize> = (0..self.merges.len()).collect();
        order.sort_by(|&a, &b| {
            let (ma, mb) = (&self.merges[a], &self.merges[b]);
            ma.distance
                .total_cmp(&mb.distance)
                .then_with(|| ma.size.cmp(&mb.size))
                .then_with(|| min_leaf[a].cmp(&min_leaf[b]))
        });
        order
    }

    /// Smallest leaf index contained in each merge's cluster (children have
    /// smaller merge indices, so one forward pass suffices).
    fn min_leaves(&self) -> Vec<usize> {
        let n = self.n_leaves;
        let mut min_leaf = vec![0usize; self.merges.len()];
        for (m, merge) in self.merges.iter().enumerate() {
            let l = if merge.left < n {
                merge.left
            } else {
                min_leaf[merge.left - n]
            };
            let r = if merge.right < n {
                merge.right
            } else {
                min_leaf[merge.right - n]
            };
            min_leaf[m] = l.min(r);
        }
        min_leaf
    }

    /// Any leaf contained in the cluster with the given id.
    fn leaf_of(&self, cluster_id: usize) -> usize {
        let mut id = cluster_id;
        while id >= self.n_leaves {
            id = self.merges[id - self.n_leaves].left;
        }
        id
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }

    fn dense_assignment(&mut self) -> Assignment {
        let n = self.parent.len();
        let mut root_to_id = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(n);
        for i in 0..n {
            let root = self.find(i);
            let next = root_to_id.len();
            assignment.push(*root_to_id.entry(root).or_insert(next));
        }
        assignment
    }
}

/// Agglomerative clustering (unconstrained, full dendrogram, `Auto` engine
/// selection).
///
/// Builds the shared [`PairwiseMatrix`] (parallel for large inputs) and
/// clusters it. Returns a full dendrogram with `n - 1` merges (or an empty
/// dendrogram for fewer than two points).
pub fn agglomerative(points: &[Vector], distance: Distance, linkage: Linkage) -> Dendrogram {
    agglomerative_from_matrix(&PairwiseMatrix::compute(points, distance), linkage)
}

/// Agglomerative clustering over a precomputed pairwise matrix with `Auto`
/// engine selection (full dendrogram). The matrix is only read (the
/// Lance–Williams updates run on an internal `f32` working copy), so
/// callers can keep using it — e.g. for medoid selection — afterwards.
pub fn agglomerative_from_matrix(matrix: &PairwiseMatrix, linkage: Linkage) -> Dendrogram {
    agglomerative_with(matrix, linkage, AgglomerativeAlgorithm::Auto, 1)
}

/// Agglomerative clustering over a precomputed pairwise matrix with an
/// explicit engine choice and k-cap (`min_clusters = 1` builds the full
/// dendrogram; see [`ClusterParams::min_clusters`] for the cap's exactness
/// guarantee). `Auto` picks the expected-fastest valid engine; an explicit
/// [`AgglomerativeAlgorithm::NnChain`] request for a non-reducible linkage
/// (centroid/median) is routed to the generic engine, where the NN-chain
/// would be invalid. Compaction is on automatic selection — use
/// [`agglomerative_params`] to pin it.
pub fn agglomerative_with(
    matrix: &PairwiseMatrix,
    linkage: Linkage,
    algorithm: AgglomerativeAlgorithm,
    min_clusters: usize,
) -> Dendrogram {
    agglomerative_params(
        matrix,
        &ClusterParams {
            linkage,
            algorithm,
            min_clusters,
            compaction: Compaction::Auto,
        },
    )
}

/// Agglomerative clustering with every knob exposed ([`ClusterParams`]).
pub fn agglomerative_params(matrix: &PairwiseMatrix, params: &ClusterParams) -> Dendrogram {
    let n = matrix.len();
    if n < 2 {
        return Dendrogram::new(n, Vec::new(), 1);
    }
    // The cap's exactness argument needs future merge heights bounded below
    // by the current live minimum — reducibility. Centroid/median get a
    // full build.
    let cap = if params.linkage.is_reducible() {
        params.min_clusters.clamp(1, n)
    } else {
        1
    };
    let compacting = match params.compaction {
        Compaction::Always => true,
        Compaction::Never => false,
        Compaction::Auto => n >= COMPACTION_AUTO_THRESHOLD,
    };
    let mut ws = LinkageWorkspace::from_matrix(matrix, compacting);
    let merges = match params.algorithm.resolve(params.linkage, n) {
        AgglomerativeAlgorithm::Generic => generic::cluster(&mut ws, params.linkage, cap),
        _ => nn_chain::cluster(&mut ws, params.linkage, cap),
    };
    // Boundary ties can push a capped run past the requested cap (or all
    // the way to a full build): every cut down to the merge count actually
    // reached is valid.
    let min_clusters = if cap > 1 && merges.len() < n - 1 {
        n - merges.len()
    } else {
        1
    };
    Dendrogram::new(n, merges, min_clusters)
}

/// Constrained agglomerative clustering with cannot-link constraints.
///
/// Builds the pairwise matrix internally and produces the full
/// (constraint-limited) dendrogram; see
/// [`agglomerative_constrained_from_matrix`] for the matrix-reusing,
/// k-cappable variant this delegates to.
pub fn agglomerative_constrained(
    points: &[Vector],
    distance: Distance,
    linkage: Linkage,
    cannot_link: &[(usize, usize)],
) -> Dendrogram {
    agglomerative_constrained_from_matrix(
        &PairwiseMatrix::compute(points, distance),
        linkage,
        cannot_link,
        1,
    )
}

/// Constrained agglomerative clustering over a precomputed pairwise matrix.
///
/// `cannot_link` lists pairs of leaf indices that must never end up in the
/// same cluster; merges that would violate a constraint are skipped. The
/// resulting dendrogram may therefore be incomplete (fewer than `n - 1`
/// merges) even without a cap. Intended for small `n` (column alignment),
/// complexity O(n³): every round greedily merges the closest admissible
/// pair (lexicographic `(distance, i, j)` tie-break) and applies the same
/// Lance–Williams updates as the fast engines — without constraints it is
/// their naive reference implementation.
///
/// `min_clusters` is the same k-cap as [`ClusterParams::min_clusters`]:
/// since the greedy loop merges admissible pairs in ascending order (the
/// admissible submatrix is monotone for reducible linkages — constraints
/// only ever *remove* candidate pairs), it can stop once enough merges are
/// done and the next admissible pair is strictly farther than every merge
/// performed. Ignored for non-reducible linkages.
pub fn agglomerative_constrained_from_matrix(
    matrix: &PairwiseMatrix,
    linkage: Linkage,
    cannot_link: &[(usize, usize)],
    min_clusters: usize,
) -> Dendrogram {
    let n = matrix.len();
    if n < 2 {
        return Dendrogram::new(n, Vec::new(), 1);
    }
    let cap = if linkage.is_reducible() {
        min_clusters.clamp(1, n)
    } else {
        1
    };
    // Compaction is skipped here: the constrained scan indexes its member
    // lists by slot and n is small (table columns) by contract.
    let mut ws = LinkageWorkspace::from_matrix(matrix, false);
    // members of each cluster slot, for constraint checks
    let mut members: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    let mut merges = Vec::new();
    let mut max_height = f64::NEG_INFINITY;
    let mut capped_stop = false;

    let conflicts = |a: &[usize], b: &[usize]| -> bool {
        cannot_link
            .iter()
            .any(|&(x, y)| (a.contains(&x) && b.contains(&y)) || (a.contains(&y) && b.contains(&x)))
    };

    loop {
        // find the closest admissible pair of active clusters
        let mut best: Option<(usize, usize, f32)> = None;
        let active: Vec<usize> = ws.active_slots().collect();
        for (ai, &i) in active.iter().enumerate() {
            for &j in active.iter().skip(ai + 1) {
                if conflicts(&members[i], &members[j]) {
                    continue;
                }
                let d = ws.get32(i, j);
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        // Capped stop, same strict-boundary rule as the fast engines.
        if cap > 1 && merges.len() + cap >= n && d as f64 > max_height {
            capped_stop = true;
            break;
        }
        // `i < j`: the merged cluster keeps slot `j` (the workspace's
        // keep-the-higher-slot convention)
        let merge = ws.merge(i, j, linkage, |_, _| {});
        max_height = max_height.max(merge.distance);
        merges.push(merge);
        let moved = std::mem::take(&mut members[i]);
        members[j].extend(moved);
    }

    let min_clusters = if capped_stop { n - merges.len() } else { 1 };
    Dendrogram::new(n, merges, min_clusters)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num_clusters;

    fn two_blobs() -> Vec<Vector> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Vector::new(vec![i as f32 * 0.01, 0.0]));
        }
        for i in 0..10 {
            pts.push(Vector::new(vec![10.0 + i as f32 * 0.01, 5.0]));
        }
        pts
    }

    #[test]
    fn two_well_separated_blobs_are_recovered_by_both_engines() {
        let pts = two_blobs();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        for linkage in Linkage::ALL {
            for algorithm in [
                AgglomerativeAlgorithm::Auto,
                AgglomerativeAlgorithm::NnChain,
                AgglomerativeAlgorithm::Generic,
            ] {
                let dendro = agglomerative_with(&matrix, linkage, algorithm, 1);
                assert_eq!(dendro.merges().len(), pts.len() - 1);
                assert_eq!(dendro.min_clusters(), 1);
                let assignment = dendro.cut(2);
                assert_eq!(num_clusters(&assignment), 2, "{linkage:?}/{algorithm:?}");
                // first ten points together, last ten together
                assert!(assignment[..10].iter().all(|&c| c == assignment[0]));
                assert!(assignment[10..].iter().all(|&c| c == assignment[10]));
                assert_ne!(assignment[0], assignment[10]);
            }
        }
    }

    #[test]
    fn cut_to_one_cluster_and_to_n_clusters() {
        let pts = two_blobs();
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Average);
        assert_eq!(num_clusters(&dendro.cut(1)), 1);
        let all = dendro.cut(pts.len());
        assert_eq!(num_clusters(&all), pts.len());
    }

    #[test]
    fn capped_build_stops_early_and_matches_full_cuts() {
        let pts = two_blobs();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        for algorithm in [
            AgglomerativeAlgorithm::NnChain,
            AgglomerativeAlgorithm::Generic,
        ] {
            let full = agglomerative_with(&matrix, Linkage::Average, algorithm, 1);
            let capped = agglomerative_with(&matrix, Linkage::Average, algorithm, 4);
            assert!(capped.merges().len() < full.merges().len());
            assert!(capped.min_clusters() <= 4);
            for k in 4..=pts.len() {
                assert_eq!(capped.cut(k), full.cut(k), "{algorithm:?} cut({k})");
            }
        }
    }

    #[test]
    #[should_panic(expected = "below this capped dendrogram")]
    fn cutting_a_capped_dendrogram_below_its_cap_panics() {
        let pts = two_blobs();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        let capped = agglomerative_with(
            &matrix,
            Linkage::Average,
            AgglomerativeAlgorithm::Generic,
            4,
        );
        assert!(capped.min_clusters() > 1);
        let _ = capped.cut(capped.min_clusters() - 1);
    }

    #[test]
    fn non_reducible_linkages_ignore_the_cap() {
        let pts = two_blobs();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        for linkage in [Linkage::Centroid, Linkage::Median] {
            let capped = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::Generic, 5);
            assert_eq!(capped.merges().len(), pts.len() - 1);
            assert_eq!(capped.min_clusters(), 1);
        }
    }

    #[test]
    fn cut_at_distance_threshold() {
        let pts = vec![
            Vector::new(vec![0.0]),
            Vector::new(vec![0.1]),
            Vector::new(vec![10.0]),
        ];
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Single);
        let tight = dendro.cut_at_distance(1.0);
        assert_eq!(num_clusters(&tight), 2);
        let loose = dendro.cut_at_distance(100.0);
        assert_eq!(num_clusters(&loose), 1);
    }

    #[test]
    fn trivial_inputs() {
        let dendro = agglomerative(&[], Distance::Euclidean, Linkage::Average);
        assert_eq!(dendro.n_leaves(), 0);
        assert!(dendro.cut(3).is_empty());
        let one = agglomerative(
            &[Vector::new(vec![1.0])],
            Distance::Euclidean,
            Linkage::Average,
        );
        assert_eq!(one.cut(1), vec![0]);
    }

    #[test]
    fn merge_distances_are_nondecreasing_for_average_linkage() {
        let pts = two_blobs();
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Average);
        // Average linkage is reducible, so NN-chain produces merges that can
        // be sorted into a monotone sequence; verify sorted monotonicity.
        let mut dists: Vec<f64> = dendro.merges().iter().map(|m| m.distance).collect();
        dists.sort_by(|a, b| a.total_cmp(b));
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn constrained_clustering_respects_cannot_link() {
        // four nearly identical points; 0-1 and 2-3 must not merge
        let pts = vec![
            Vector::new(vec![0.0, 0.0]),
            Vector::new(vec![0.01, 0.0]),
            Vector::new(vec![0.02, 0.0]),
            Vector::new(vec![0.03, 0.0]),
        ];
        let constraints = vec![(0, 1), (2, 3)];
        let dendro =
            agglomerative_constrained(&pts, Distance::Euclidean, Linkage::Average, &constraints);
        for k in 1..=4 {
            let assignment = dendro.cut(k);
            assert_ne!(
                assignment[0], assignment[1],
                "constraint 0-1 violated at k={k}"
            );
            assert_ne!(
                assignment[2], assignment[3],
                "constraint 2-3 violated at k={k}"
            );
        }
    }

    #[test]
    fn constrained_clustering_without_constraints_matches_full_merge() {
        let pts = two_blobs();
        let dendro = agglomerative_constrained(&pts, Distance::Euclidean, Linkage::Average, &[]);
        assert_eq!(dendro.merges().len(), pts.len() - 1);
        let assignment = dendro.cut(2);
        assert_eq!(num_clusters(&assignment), 2);
        assert_ne!(assignment[0], assignment[10]);
    }

    #[test]
    fn capped_constrained_clustering_matches_full_in_range() {
        let pts = two_blobs();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        let constraints = vec![(0, 10), (3, 15)];
        let full =
            agglomerative_constrained_from_matrix(&matrix, Linkage::Average, &constraints, 1);
        let capped =
            agglomerative_constrained_from_matrix(&matrix, Linkage::Average, &constraints, 5);
        assert!(capped.merges().len() <= full.merges().len());
        assert!(capped.min_clusters() <= 5);
        for k in 5..=pts.len() {
            assert_eq!(capped.cut(k), full.cut(k), "constrained cut({k})");
        }
    }

    #[test]
    fn both_engines_match_naive_on_small_inputs() {
        // On small inputs each engine's result (cut to k) should agree with
        // the naive constrained implementation without constraints.
        let pts: Vec<Vector> = (0..12)
            .map(|i| {
                Vector::new(vec![
                    (i % 4) as f32 * 3.0 + (i as f32) * 0.01,
                    (i / 4) as f32 * 5.0,
                ])
            })
            .collect();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        for linkage in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let naive = agglomerative_constrained(&pts, Distance::Euclidean, linkage, &[]).cut(3);
            for algorithm in [
                AgglomerativeAlgorithm::NnChain,
                AgglomerativeAlgorithm::Generic,
            ] {
                let fast = agglomerative_with(&matrix, linkage, algorithm, 1).cut(3);
                // compare partitions up to relabelling
                assert_eq!(
                    partition_signature(&fast),
                    partition_signature(&naive),
                    "{linkage:?}/{algorithm:?}"
                );
            }
        }
    }

    fn partition_signature(assignment: &[usize]) -> Vec<Vec<usize>> {
        let mut groups = crate::clusters_from_assignment(assignment);
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();
        groups
    }

    #[test]
    fn non_reducible_linkages_always_run_on_the_generic_engine() {
        let pts = two_blobs();
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        for linkage in [Linkage::Centroid, Linkage::Median] {
            assert!(!linkage.is_reducible());
            let forced = agglomerative_with(&matrix, linkage, AgglomerativeAlgorithm::Generic, 1);
            // NnChain and Auto requests are both routed to the generic engine
            for algorithm in [
                AgglomerativeAlgorithm::Auto,
                AgglomerativeAlgorithm::NnChain,
            ] {
                let routed = agglomerative_with(&matrix, linkage, algorithm, 1);
                assert_eq!(routed, forced, "{linkage:?}/{algorithm:?}");
            }
        }
    }

    #[test]
    fn auto_resolution_prefers_the_valid_and_fast_engine() {
        use AgglomerativeAlgorithm::*;
        assert_eq!(Auto.resolve(Linkage::Average, 10), NnChain);
        assert_eq!(
            Auto.resolve(Linkage::Average, GENERIC_AUTO_THRESHOLD),
            Generic
        );
        assert_eq!(Auto.resolve(Linkage::Centroid, 10), Generic);
        assert_eq!(NnChain.resolve(Linkage::Median, 10), Generic);
        assert_eq!(NnChain.resolve(Linkage::Single, 100_000), NnChain);
        assert_eq!(Generic.resolve(Linkage::Ward, 3), Generic);
    }

    #[test]
    fn linkage_and_algorithm_names() {
        let names: Vec<&str> = Linkage::ALL.iter().map(Linkage::name).collect();
        assert_eq!(
            names,
            ["single", "complete", "average", "ward", "centroid", "median"]
        );
        assert_eq!(AgglomerativeAlgorithm::Auto.name(), "auto");
        assert_eq!(AgglomerativeAlgorithm::NnChain.name(), "nn_chain");
        assert_eq!(AgglomerativeAlgorithm::Generic.name(), "generic");
    }
}
