//! # dust-cluster
//!
//! Clustering substrate for the DUST reproduction:
//!
//! * [`agglomerative`] — hierarchical agglomerative clustering with two
//!   interchangeable engines over one shared workspace: the
//!   nearest-neighbour-chain algorithm (O(n²), reducible linkages) and a
//!   fastcluster-style cached-nearest-neighbour "generic" algorithm (lazy
//!   min-heap, all linkages, faster from ~1000 points), selected by
//!   [`AgglomerativeAlgorithm`]. Both engines support k-capped partial
//!   builds and a compacting workspace ([`ClusterParams`]) — consumers
//!   only ever cut coarsely (DUST at `k·p`, alignment at `≥ min_k`), so
//!   the engines stop once those cuts are determined and physically shrink
//!   the working matrix as clusters retire, without changing any answer.
//!   The tuple-diversification step of DUST relies on these for
//!   scalability; the constrained variant (cannot-link pairs, used by
//!   holistic column alignment so that two columns of the same table are
//!   never merged) is a small-n implementation.
//! * [`silhouette`] — Silhouette coefficient for model selection
//!   (choosing the number of clusters, Sec. 3.3); builds one pairwise
//!   matrix per sweep, not one per candidate cut.
//! * [`medoid`] — medoids of clusters (the representative-tuple choice in
//!   Sec. 5.2).
//! * [`kmeans`] — k-means with k-means++ seeding, used as an ablation
//!   alternative to hierarchical clustering.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agglomerative;
pub mod kmeans;
pub mod medoid;
pub mod silhouette;

pub use agglomerative::{
    agglomerative, agglomerative_constrained, agglomerative_constrained_from_matrix,
    agglomerative_from_matrix, agglomerative_params, agglomerative_with, AgglomerativeAlgorithm,
    ClusterParams, Compaction, Dendrogram, Linkage, Merge,
};
pub use kmeans::{kmeans, KMeansResult};
pub use medoid::{
    cluster_medoids, cluster_medoids_from_matrix, medoid, medoid_in_matrix, medoid_with_store,
};
pub use silhouette::{
    best_cut_by_silhouette, best_cut_by_silhouette_from_matrix, silhouette_score,
    silhouette_score_from_matrix,
};

/// A flat clustering: `assignment[i]` is the cluster id of point `i`.
/// Cluster ids are dense (0..num_clusters).
pub type Assignment = Vec<usize>;

/// Number of clusters in an assignment (0 for an empty assignment).
pub fn num_clusters(assignment: &[usize]) -> usize {
    assignment.iter().copied().max().map(|m| m + 1).unwrap_or(0)
}

/// Group point indices by cluster id.
pub fn clusters_from_assignment(assignment: &[usize]) -> Vec<Vec<usize>> {
    let k = num_clusters(assignment);
    let mut groups = vec![Vec::new(); k];
    for (idx, &c) in assignment.iter().enumerate() {
        groups[c].push(idx);
    }
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assignment_helpers() {
        let assignment = vec![0, 1, 0, 2, 1];
        assert_eq!(num_clusters(&assignment), 3);
        let groups = clusters_from_assignment(&assignment);
        assert_eq!(groups[0], vec![0, 2]);
        assert_eq!(groups[1], vec![1, 4]);
        assert_eq!(groups[2], vec![3]);
        assert_eq!(num_clusters(&[]), 0);
        assert!(clusters_from_assignment(&[]).is_empty());
    }
}
