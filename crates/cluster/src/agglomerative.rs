//! Hierarchical agglomerative clustering.
//!
//! Two implementations are provided:
//!
//! * [`agglomerative`] — nearest-neighbour-chain algorithm with
//!   Lance–Williams updates, O(n²) time, used to cluster (potentially many
//!   thousands of) tuple embeddings in the DUST diversifier;
//! * [`agglomerative_constrained`] — a straightforward O(n³) variant that
//!   honours cannot-link constraints, used by holistic column alignment
//!   where `n` is the (small) number of columns and two columns of the same
//!   table must never be clustered together.

use crate::Assignment;
use dust_embed::{Distance, PairwiseMatrix, Vector};
use serde::{Deserialize, Serialize};

/// Linkage criterion between clusters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA) — the paper's choice.
    #[default]
    Average,
}

impl Linkage {
    /// Name used in experiment output.
    pub fn name(&self) -> &'static str {
        match self {
            Linkage::Single => "single",
            Linkage::Complete => "complete",
            Linkage::Average => "average",
        }
    }

    /// Lance–Williams update: distance from cluster `k` to the merge of
    /// clusters `i` (size `ni`) and `j` (size `nj`).
    fn update(&self, d_ki: f64, d_kj: f64, ni: usize, nj: usize) -> f64 {
        match self {
            Linkage::Single => d_ki.min(d_kj),
            Linkage::Complete => d_ki.max(d_kj),
            Linkage::Average => {
                let ni = ni as f64;
                let nj = nj as f64;
                (ni * d_ki + nj * d_kj) / (ni + nj)
            }
        }
    }
}

/// One merge step of a dendrogram. Clusters are identified by id: leaves are
/// `0..n`, and the cluster created by the `i`-th merge has id `n + i`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First merged cluster id.
    pub left: usize,
    /// Second merged cluster id.
    pub right: usize,
    /// Linkage distance at which the merge happened.
    pub distance: f64,
    /// Number of leaves in the merged cluster.
    pub size: usize,
}

/// The result of hierarchical clustering: a sequence of merges over `n` leaves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n_leaves: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves (input points).
    pub fn n_leaves(&self) -> usize {
        self.n_leaves
    }

    /// The merge sequence.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cut the dendrogram into (at most) `num_clusters` clusters.
    ///
    /// Merges are applied in ascending distance order until the requested
    /// number of clusters remains. When the dendrogram is incomplete (the
    /// constrained variant may stop early) the result may contain more than
    /// `num_clusters` clusters. Returns a dense assignment.
    pub fn cut(&self, num_clusters: usize) -> Assignment {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let target = num_clusters.max(1);
        let mut order: Vec<&Merge> = self.merges.iter().collect();
        order.sort_by(|a, b| {
            a.distance
                .partial_cmp(&b.distance)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut uf = UnionFind::new(n);
        let mut remaining = n;
        for merge in order {
            if remaining <= target {
                break;
            }
            let li = self.leaf_of(merge.left);
            let ri = self.leaf_of(merge.right);
            if uf.union(li, ri) {
                remaining -= 1;
            }
        }
        uf.dense_assignment()
    }

    /// Cut the dendrogram at a distance threshold: only merges with distance
    /// `<= threshold` are applied.
    pub fn cut_at_distance(&self, threshold: f64) -> Assignment {
        let n = self.n_leaves;
        if n == 0 {
            return Vec::new();
        }
        let mut uf = UnionFind::new(n);
        for merge in &self.merges {
            if merge.distance <= threshold {
                let li = self.leaf_of(merge.left);
                let ri = self.leaf_of(merge.right);
                uf.union(li, ri);
            }
        }
        uf.dense_assignment()
    }

    /// Any leaf contained in the cluster with the given id.
    fn leaf_of(&self, cluster_id: usize) -> usize {
        let mut id = cluster_id;
        while id >= self.n_leaves {
            id = self.merges[id - self.n_leaves].left;
        }
        id
    }
}

struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            false
        } else {
            self.parent[ra] = rb;
            true
        }
    }

    fn dense_assignment(&mut self) -> Assignment {
        let n = self.parent.len();
        let mut root_to_id = std::collections::HashMap::new();
        let mut assignment = Vec::with_capacity(n);
        for i in 0..n {
            let root = self.find(i);
            let next = root_to_id.len();
            assignment.push(*root_to_id.entry(root).or_insert(next));
        }
        assignment
    }
}

/// The NN-chain's mutable working state: a condensed `f32` copy of the
/// pairwise matrix, seeded with one memcpy from
/// [`PairwiseMatrix::condensed_data`]. Retired cluster slots are *poisoned*
/// with `f32::INFINITY`, so the nearest-neighbour scan needs no per-element
/// activity test — the first pass is a pure min-reduction the compiler can
/// vectorize over the contiguous half of each row. This is a copy of matrix
/// data, not a second distance implementation — no distances are computed
/// here.
struct LinkageWorkspace {
    n: usize,
    data: Vec<f32>,
}

impl LinkageWorkspace {
    fn from_matrix(matrix: &PairwiseMatrix) -> Self {
        LinkageWorkspace {
            n: matrix.len(),
            data: matrix.condensed_data().to_vec(),
        }
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        a * self.n - a * (a + 1) / 2 + (b - a - 1)
    }

    #[inline]
    fn row_start(&self, i: usize) -> usize {
        i * self.n - i * (i + 1) / 2
    }

    /// Nearest neighbour of `i`: the smallest-index `j` attaining the row
    /// minimum, except that `prev` wins whenever it ties the minimum (the
    /// NN-chain's reciprocity rule). Retired slots hold `INFINITY` and can
    /// never win. Two passes: a branch-free min-reduction, then a short
    /// argmin lookup.
    fn nearest(&self, i: usize, prev: Option<usize>) -> (usize, f64) {
        let n = self.n;
        let mut min = f32::INFINITY;
        // strided column part (j < i), incremental condensed offsets
        if i > 0 {
            let mut idx = i - 1; // (0, i)
            for j in 0..i {
                min = min.min(self.data[idx]);
                idx += n - j - 2;
            }
        }
        // contiguous row part (j > i) — explicit 8-lane min-reduction so
        // the compiler emits vector min instructions
        if i + 1 < n {
            let start = self.row_start(i);
            let slice = &self.data[start..start + (n - 1 - i)];
            let mut lanes = [f32::INFINITY; 8];
            let mut chunks = slice.chunks_exact(8);
            for chunk in chunks.by_ref() {
                for l in 0..8 {
                    lanes[l] = lanes[l].min(chunk[l]);
                }
            }
            let lane_min = lanes.iter().fold(f32::INFINITY, |m, &d| m.min(d));
            min = chunks
                .remainder()
                .iter()
                .fold(min.min(lane_min), |m, &d| m.min(d));
        }
        debug_assert!(min.is_finite(), "no active neighbour for slot {i}");
        if let Some(p) = prev {
            if self.data[self.index(i, p)] <= min {
                return (p, min as f64);
            }
        }
        if i > 0 {
            let mut idx = i - 1;
            for j in 0..i {
                if self.data[idx] <= min {
                    return (j, min as f64);
                }
                idx += n - j - 2;
            }
        }
        let start = self.row_start(i);
        let offset = self.data[start..start + (n - 1 - i)]
            .iter()
            .position(|&d| d <= min)
            .expect("row minimum must exist");
        (i + 1 + offset, min as f64)
    }

    /// Lance–Williams merge update: rewrite `d(k, a)` for every `k` other
    /// than `a`/`b`. Poisoned entries stay infinite through min/max/average
    /// updates, so retired `k` need no special-casing.
    fn update_merged(&mut self, a: usize, b: usize, mut f: impl FnMut(f64, f64) -> f64) {
        for k in 0..self.n {
            if k == a || k == b {
                continue;
            }
            let ia = self.index(k, a);
            let ib = self.index(k, b);
            let v = f(self.data[ia] as f64, self.data[ib] as f64);
            self.data[ia] = v as f32;
        }
    }

    /// Retire slot `b`: poison its row and column with `INFINITY`.
    fn retire(&mut self, b: usize) {
        let n = self.n;
        if b > 0 {
            let mut idx = b - 1; // (0, b)
            for j in 0..b {
                self.data[idx] = f32::INFINITY;
                idx += n - j - 2;
            }
        }
        if b + 1 < n {
            let start = self.row_start(b);
            for d in &mut self.data[start..start + (n - 1 - b)] {
                *d = f32::INFINITY;
            }
        }
    }
}

/// Nearest-neighbour-chain agglomerative clustering (unconstrained).
///
/// Builds the shared [`PairwiseMatrix`] (parallel for large inputs) and
/// clusters it. Returns a full dendrogram with `n - 1` merges (or an empty
/// dendrogram for fewer than two points).
pub fn agglomerative(points: &[Vector], distance: Distance, linkage: Linkage) -> Dendrogram {
    agglomerative_from_matrix(&PairwiseMatrix::compute(points, distance), linkage)
}

/// Nearest-neighbour-chain agglomerative clustering over a precomputed
/// pairwise matrix. The matrix is only read (the Lance–Williams updates run
/// on an internal `f32` working copy), so callers can keep using it — e.g.
/// for medoid selection — afterwards.
pub fn agglomerative_from_matrix(matrix: &PairwiseMatrix, linkage: Linkage) -> Dendrogram {
    let n = matrix.len();
    if n < 2 {
        return Dendrogram {
            n_leaves: n,
            merges: Vec::new(),
        };
    }
    let mut dist = LinkageWorkspace::from_matrix(matrix);
    // cluster slot -> (active, current cluster id, size)
    let mut active = vec![true; n];
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut size = vec![1usize; n];
    let mut merges: Vec<Merge> = Vec::with_capacity(n - 1);
    let mut chain: Vec<usize> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        if chain.is_empty() {
            let start = (0..n)
                .find(|&i| active[i])
                .expect("at least one active cluster");
            chain.push(start);
        }
        loop {
            let current = *chain.last().expect("chain non-empty");
            let prev = if chain.len() >= 2 {
                Some(chain[chain.len() - 2])
            } else {
                None
            };
            // nearest active neighbour of `current` (retired slots are
            // poisoned with INFINITY, so no activity test per element)
            let (best, best_dist) = dist.nearest(current, prev);
            if Some(best) == prev {
                // reciprocal nearest neighbours: merge current and prev
                let a = current;
                let b = best;
                chain.pop();
                chain.pop();
                let merged_size = size[a] + size[b];
                merges.push(Merge {
                    left: cluster_id[a],
                    right: cluster_id[b],
                    distance: best_dist,
                    size: merged_size,
                });
                // keep slot `a` for the merged cluster, retire slot `b`
                let (size_a, size_b) = (size[a], size[b]);
                dist.update_merged(a, b, |d_ka, d_kb| {
                    linkage.update(d_ka, d_kb, size_a, size_b)
                });
                dist.retire(b);
                active[b] = false;
                size[a] = merged_size;
                cluster_id[a] = n + merges.len() - 1;
                remaining -= 1;
                break;
            } else {
                chain.push(best);
            }
        }
        // Drop chain entries that are no longer active (their cluster merged).
        while let Some(&last) = chain.last() {
            if active[last] {
                break;
            }
            chain.pop();
        }
    }

    Dendrogram {
        n_leaves: n,
        merges,
    }
}

/// Constrained agglomerative clustering with cannot-link constraints.
///
/// `cannot_link` lists pairs of leaf indices that must never end up in the
/// same cluster; merges that would violate a constraint are skipped. The
/// resulting dendrogram may therefore be incomplete (fewer than `n - 1`
/// merges). Intended for small `n` (column alignment), complexity O(n³).
pub fn agglomerative_constrained(
    points: &[Vector],
    distance: Distance,
    linkage: Linkage,
    cannot_link: &[(usize, usize)],
) -> Dendrogram {
    let n = points.len();
    if n < 2 {
        return Dendrogram {
            n_leaves: n,
            merges: Vec::new(),
        };
    }
    let base = PairwiseMatrix::compute(points, distance);
    // members of each active cluster
    let mut members: Vec<Option<Vec<usize>>> = (0..n).map(|i| Some(vec![i])).collect();
    let mut cluster_id: Vec<usize> = (0..n).collect();
    let mut merges = Vec::new();

    let conflicts = |a: &[usize], b: &[usize]| -> bool {
        cannot_link
            .iter()
            .any(|&(x, y)| (a.contains(&x) && b.contains(&y)) || (a.contains(&y) && b.contains(&x)))
    };

    loop {
        // find the closest admissible pair of active clusters
        let mut best: Option<(usize, usize, f64)> = None;
        let active: Vec<usize> = (0..members.len())
            .filter(|&i| members[i].is_some())
            .collect();
        for (ai, &i) in active.iter().enumerate() {
            for &j in active.iter().skip(ai + 1) {
                let (mi, mj) = (
                    members[i].as_ref().expect("active"),
                    members[j].as_ref().expect("active"),
                );
                if conflicts(mi, mj) {
                    continue;
                }
                let d = cluster_distance(&base, mi, mj, linkage);
                if best.map(|(_, _, bd)| d < bd).unwrap_or(true) {
                    best = Some((i, j, d));
                }
            }
        }
        let Some((i, j, d)) = best else { break };
        let mj = members[j].take().expect("active");
        let mi = members[i].as_mut().expect("active");
        let merged_size = mi.len() + mj.len();
        merges.push(Merge {
            left: cluster_id[i],
            right: cluster_id[j],
            distance: d,
            size: merged_size,
        });
        mi.extend(mj);
        cluster_id[i] = n + merges.len() - 1;
    }

    Dendrogram {
        n_leaves: n,
        merges,
    }
}

fn cluster_distance(base: &PairwiseMatrix, a: &[usize], b: &[usize], linkage: Linkage) -> f64 {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    let mut sum = 0.0;
    for &i in a {
        for &j in b {
            let d = base.get(i, j);
            min = min.min(d);
            max = max.max(d);
            sum += d;
        }
    }
    match linkage {
        Linkage::Single => min,
        Linkage::Complete => max,
        Linkage::Average => sum / (a.len() * b.len()) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::num_clusters;

    fn two_blobs() -> Vec<Vector> {
        let mut pts = Vec::new();
        for i in 0..10 {
            pts.push(Vector::new(vec![i as f32 * 0.01, 0.0]));
        }
        for i in 0..10 {
            pts.push(Vector::new(vec![10.0 + i as f32 * 0.01, 5.0]));
        }
        pts
    }

    #[test]
    fn two_well_separated_blobs_are_recovered() {
        let pts = two_blobs();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let dendro = agglomerative(&pts, Distance::Euclidean, linkage);
            assert_eq!(dendro.merges().len(), pts.len() - 1);
            let assignment = dendro.cut(2);
            assert_eq!(num_clusters(&assignment), 2);
            // first ten points together, last ten together
            assert!(assignment[..10].iter().all(|&c| c == assignment[0]));
            assert!(assignment[10..].iter().all(|&c| c == assignment[10]));
            assert_ne!(assignment[0], assignment[10]);
        }
    }

    #[test]
    fn cut_to_one_cluster_and_to_n_clusters() {
        let pts = two_blobs();
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Average);
        assert_eq!(num_clusters(&dendro.cut(1)), 1);
        let all = dendro.cut(pts.len());
        assert_eq!(num_clusters(&all), pts.len());
    }

    #[test]
    fn cut_at_distance_threshold() {
        let pts = vec![
            Vector::new(vec![0.0]),
            Vector::new(vec![0.1]),
            Vector::new(vec![10.0]),
        ];
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Single);
        let tight = dendro.cut_at_distance(1.0);
        assert_eq!(num_clusters(&tight), 2);
        let loose = dendro.cut_at_distance(100.0);
        assert_eq!(num_clusters(&loose), 1);
    }

    #[test]
    fn trivial_inputs() {
        let dendro = agglomerative(&[], Distance::Euclidean, Linkage::Average);
        assert_eq!(dendro.n_leaves(), 0);
        assert!(dendro.cut(3).is_empty());
        let one = agglomerative(
            &[Vector::new(vec![1.0])],
            Distance::Euclidean,
            Linkage::Average,
        );
        assert_eq!(one.cut(1), vec![0]);
    }

    #[test]
    fn merge_distances_are_nondecreasing_for_average_linkage() {
        let pts = two_blobs();
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Average);
        // Average linkage is reducible, so NN-chain produces merges that can
        // be sorted into a monotone sequence; verify sorted monotonicity.
        let mut dists: Vec<f64> = dendro.merges().iter().map(|m| m.distance).collect();
        let sorted = {
            let mut s = dists.clone();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s
        };
        dists.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(dists, sorted);
        assert!(dists.windows(2).all(|w| w[0] <= w[1] + 1e-12));
    }

    #[test]
    fn constrained_clustering_respects_cannot_link() {
        // four nearly identical points; 0-1 and 2-3 must not merge
        let pts = vec![
            Vector::new(vec![0.0, 0.0]),
            Vector::new(vec![0.01, 0.0]),
            Vector::new(vec![0.02, 0.0]),
            Vector::new(vec![0.03, 0.0]),
        ];
        let constraints = vec![(0, 1), (2, 3)];
        let dendro =
            agglomerative_constrained(&pts, Distance::Euclidean, Linkage::Average, &constraints);
        for k in 1..=4 {
            let assignment = dendro.cut(k);
            assert_ne!(
                assignment[0], assignment[1],
                "constraint 0-1 violated at k={k}"
            );
            assert_ne!(
                assignment[2], assignment[3],
                "constraint 2-3 violated at k={k}"
            );
        }
    }

    #[test]
    fn constrained_clustering_without_constraints_matches_full_merge() {
        let pts = two_blobs();
        let dendro = agglomerative_constrained(&pts, Distance::Euclidean, Linkage::Average, &[]);
        assert_eq!(dendro.merges().len(), pts.len() - 1);
        let assignment = dendro.cut(2);
        assert_eq!(num_clusters(&assignment), 2);
        assert_ne!(assignment[0], assignment[10]);
    }

    #[test]
    fn nn_chain_matches_naive_on_small_inputs() {
        // On small inputs the NN-chain result (cut to k) should agree with
        // the naive constrained implementation without constraints.
        let pts: Vec<Vector> = (0..12)
            .map(|i| {
                Vector::new(vec![
                    (i % 4) as f32 * 3.0 + (i as f32) * 0.01,
                    (i / 4) as f32 * 5.0,
                ])
            })
            .collect();
        for linkage in [Linkage::Single, Linkage::Complete, Linkage::Average] {
            let fast = agglomerative(&pts, Distance::Euclidean, linkage).cut(3);
            let naive = agglomerative_constrained(&pts, Distance::Euclidean, linkage, &[]).cut(3);
            // compare partitions up to relabelling
            assert_eq!(
                partition_signature(&fast),
                partition_signature(&naive),
                "{linkage:?}"
            );
        }
    }

    fn partition_signature(assignment: &[usize]) -> Vec<Vec<usize>> {
        let mut groups = crate::clusters_from_assignment(assignment);
        for g in &mut groups {
            g.sort_unstable();
        }
        groups.sort();
        groups
    }

    #[test]
    fn linkage_names() {
        assert_eq!(Linkage::Single.name(), "single");
        assert_eq!(Linkage::Complete.name(), "complete");
        assert_eq!(Linkage::Average.name(), "average");
    }
}
