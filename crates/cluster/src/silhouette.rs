//! Silhouette coefficient (Rousseeuw 1987), the cluster-quality measure the
//! paper uses to pick the number of clusters during column alignment.
//!
//! Model selection sweeps `k` over a whole range, so the matrix-taking
//! entry points matter: [`best_cut_by_silhouette`] builds **one**
//! [`PairwiseMatrix`] and scores every candidate cut against it (the naive
//! alternative — one matrix per candidate `k` — is an
//! O((max_k − min_k + 1) · n² · d) trap on the per-query alignment path),
//! and [`best_cut_by_silhouette_from_matrix`] reuses a matrix the caller
//! already holds, e.g. the one its dendrogram was built from.

use crate::agglomerative::Dendrogram;
use crate::{clusters_from_assignment, num_clusters, Assignment};
use dust_embed::{Distance, PairwiseMatrix, Vector};

/// Mean silhouette score of an assignment over the given points.
///
/// Builds the pairwise matrix once and delegates to
/// [`silhouette_score_from_matrix`]. Returns `None` when the score is
/// undefined: fewer than two clusters, or every cluster is a singleton, or
/// fewer than two points.
pub fn silhouette_score(
    points: &[Vector],
    assignment: &[usize],
    distance: Distance,
) -> Option<f64> {
    if points.len() < 2 || assignment.len() != points.len() {
        return None;
    }
    silhouette_score_from_matrix(&PairwiseMatrix::compute(points, distance), assignment)
}

/// Mean silhouette score of an assignment over a precomputed pairwise
/// matrix — the allocation-free core of [`silhouette_score`], for callers
/// that score many assignments over the same points (model selection).
///
/// Returns `None` when the score is undefined (see [`silhouette_score`]).
pub fn silhouette_score_from_matrix(matrix: &PairwiseMatrix, assignment: &[usize]) -> Option<f64> {
    let n = matrix.len();
    if n < 2 || assignment.len() != n {
        return None;
    }
    let k = num_clusters(assignment);
    if k < 2 || k > n {
        return None;
    }
    let groups = clusters_from_assignment(assignment);
    if groups.iter().all(|g| g.len() <= 1) {
        return None;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = &groups[assignment[i]];
        let s = if own.len() <= 1 {
            // Convention (scikit-learn): singleton clusters contribute 0.
            0.0
        } else {
            let a: f64 = own
                .iter()
                .filter(|&&j| j != i)
                .map(|&j| matrix.get(i, j))
                .sum::<f64>()
                / (own.len() - 1) as f64;
            let mut b = f64::INFINITY;
            for (c, group) in groups.iter().enumerate() {
                if c == assignment[i] || group.is_empty() {
                    continue;
                }
                let mean: f64 =
                    group.iter().map(|&j| matrix.get(i, j)).sum::<f64>() / group.len() as f64;
                b = b.min(mean);
            }
            if b.is_infinite() {
                0.0
            } else {
                let denom = a.max(b);
                if denom <= 1e-15 {
                    0.0
                } else {
                    (b - a) / denom
                }
            }
        };
        total += s;
    }
    Some(total / n as f64)
}

/// Choose the dendrogram cut (number of clusters in `[min_k, max_k]`) that
/// maximizes the silhouette score. Returns the best assignment and its score.
///
/// This is the model-selection step of Sec. 3.3: "we compute a cluster
/// quality score for each number of clusters and select the one that
/// maximizes the quality." Builds exactly **one** [`PairwiseMatrix`] for
/// the whole sweep; callers that already hold the matrix (it is usually
/// the one the dendrogram was clustered from) should use
/// [`best_cut_by_silhouette_from_matrix`] and skip even that.
pub fn best_cut_by_silhouette(
    dendrogram: &Dendrogram,
    points: &[Vector],
    distance: Distance,
    min_k: usize,
    max_k: usize,
) -> (Assignment, Option<f64>) {
    if points.is_empty() {
        return (Vec::new(), None);
    }
    best_cut_by_silhouette_from_matrix(
        dendrogram,
        &PairwiseMatrix::compute(points, distance),
        min_k,
        max_k,
    )
}

/// [`best_cut_by_silhouette`] over a precomputed pairwise matrix: zero
/// matrix builds per invocation.
///
/// Cuts below the dendrogram's valid range (a k-capped build, see
/// [`Dendrogram::min_clusters`]) are excluded from the sweep — pass a
/// `min_k` no smaller than the cap the dendrogram was built with to sweep
/// exactly the intended range. When the cap exceeds `max_k` entirely (a
/// caller mismatch — no requested cut is buildable), the result is the
/// dendrogram's smallest valid cut with a `None` score, never a scored
/// out-of-range "best".
pub fn best_cut_by_silhouette_from_matrix(
    dendrogram: &Dendrogram,
    matrix: &PairwiseMatrix,
    min_k: usize,
    max_k: usize,
) -> (Assignment, Option<f64>) {
    let n = matrix.len();
    if n == 0 {
        return (Vec::new(), None);
    }
    let lo = min_k.max(1).max(dendrogram.min_clusters());
    let hi = max_k.min(n);
    if lo > hi {
        return (dendrogram.cut(lo), None);
    }
    let mut best: Option<(Assignment, f64)> = None;
    for k in lo..=hi {
        let assignment = dendrogram.cut(k);
        if let Some(score) = silhouette_score_from_matrix(matrix, &assignment) {
            let better = best.as_ref().map(|(_, s)| score > *s).unwrap_or(true);
            if better {
                best = Some((assignment, score));
            }
        }
    }
    match best {
        Some((assignment, score)) => (assignment, Some(score)),
        // No valid silhouette anywhere (e.g. all cuts degenerate): fall back
        // to the smallest requested cut.
        None => (dendrogram.cut(lo), None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agglomerative::{agglomerative, Linkage};

    fn blobs(counts: &[usize], centers: &[(f32, f32)]) -> Vec<Vector> {
        let mut pts = Vec::new();
        for (&count, &(cx, cy)) in counts.iter().zip(centers) {
            for i in 0..count {
                pts.push(Vector::new(vec![
                    cx + i as f32 * 0.01,
                    cy - i as f32 * 0.01,
                ]));
            }
        }
        pts
    }

    #[test]
    fn good_clustering_scores_higher_than_bad_clustering() {
        let pts = blobs(&[5, 5], &[(0.0, 0.0), (10.0, 10.0)]);
        let good: Assignment = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let bad: Assignment = vec![0, 1, 0, 1, 0, 1, 0, 1, 0, 1];
        let sg = silhouette_score(&pts, &good, Distance::Euclidean).unwrap();
        let sb = silhouette_score(&pts, &bad, Distance::Euclidean).unwrap();
        assert!(sg > 0.9);
        assert!(sg > sb);
    }

    #[test]
    fn matrix_entry_point_matches_the_point_entry_point() {
        let pts = blobs(&[5, 5], &[(0.0, 0.0), (10.0, 10.0)]);
        let assignment: Assignment = vec![0, 0, 0, 0, 0, 1, 1, 1, 1, 1];
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        assert_eq!(
            silhouette_score(&pts, &assignment, Distance::Euclidean),
            silhouette_score_from_matrix(&matrix, &assignment)
        );
    }

    #[test]
    fn undefined_cases_return_none() {
        let pts = blobs(&[4], &[(0.0, 0.0)]);
        // single cluster
        assert!(silhouette_score(&pts, &[0, 0, 0, 0], Distance::Euclidean).is_none());
        // all singletons
        assert!(silhouette_score(&pts, &[0, 1, 2, 3], Distance::Euclidean).is_none());
        // length mismatch
        assert!(silhouette_score(&pts, &[0, 1], Distance::Euclidean).is_none());
        // fewer than two points
        assert!(silhouette_score(&pts[..1], &[0], Distance::Euclidean).is_none());
    }

    #[test]
    fn best_cut_recovers_true_number_of_clusters() {
        let pts = blobs(&[6, 6, 6], &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]);
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Average);
        let (assignment, score) = best_cut_by_silhouette(&dendro, &pts, Distance::Euclidean, 2, 10);
        assert_eq!(num_clusters(&assignment), 3);
        assert!(score.unwrap() > 0.8);
    }

    #[test]
    fn best_cut_from_matrix_matches_and_respects_capped_dendrograms() {
        use crate::agglomerative::{agglomerative_with, AgglomerativeAlgorithm};
        let pts = blobs(&[6, 6, 6], &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]);
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        let full = agglomerative(&pts, Distance::Euclidean, Linkage::Average);
        let by_points = best_cut_by_silhouette(&full, &pts, Distance::Euclidean, 2, 10);
        let by_matrix = best_cut_by_silhouette_from_matrix(&full, &matrix, 2, 10);
        assert_eq!(by_points, by_matrix);

        // a dendrogram capped at the sweep's min_k selects the same cut
        let capped = agglomerative_with(&matrix, Linkage::Average, AgglomerativeAlgorithm::Auto, 2);
        let by_capped = best_cut_by_silhouette_from_matrix(&capped, &matrix, 2, 10);
        assert_eq!(by_capped, by_matrix);
    }

    #[test]
    fn cap_above_the_requested_range_yields_no_score() {
        use crate::agglomerative::{agglomerative_with, AgglomerativeAlgorithm};
        // Dendrogram capped at 6 clusters, sweep requested over [2, 4]:
        // no requested cut is buildable — the smallest valid cut comes
        // back unscored instead of a silently out-of-range "best".
        let pts = blobs(&[6, 6, 6], &[(0.0, 0.0), (10.0, 0.0), (0.0, 10.0)]);
        let matrix = PairwiseMatrix::compute(&pts, Distance::Euclidean);
        // Generic engine: merges strictly ascending, so the cap binds
        // exactly (NN-chain's chain order can legitimately merge past it).
        let capped = agglomerative_with(
            &matrix,
            Linkage::Average,
            AgglomerativeAlgorithm::Generic,
            6,
        );
        assert!(capped.min_clusters() > 4);
        let (assignment, score) = best_cut_by_silhouette_from_matrix(&capped, &matrix, 2, 4);
        assert!(score.is_none());
        assert_eq!(assignment, capped.cut(capped.min_clusters()));
    }

    #[test]
    fn best_cut_handles_empty_and_degenerate_input() {
        let dendro = agglomerative(&[], Distance::Euclidean, Linkage::Average);
        let (assignment, score) = best_cut_by_silhouette(&dendro, &[], Distance::Euclidean, 2, 5);
        assert!(assignment.is_empty());
        assert!(score.is_none());

        // identical points: silhouette undefined or 0; fall back to min_k cut
        let pts = vec![Vector::new(vec![1.0, 1.0]); 4];
        let dendro = agglomerative(&pts, Distance::Euclidean, Linkage::Average);
        let (assignment, _) = best_cut_by_silhouette(&dendro, &pts, Distance::Euclidean, 1, 4);
        assert_eq!(assignment.len(), 4);
    }

    #[test]
    fn singleton_clusters_contribute_zero() {
        let pts = blobs(&[3, 1], &[(0.0, 0.0), (5.0, 5.0)]);
        let assignment = vec![0, 0, 0, 1];
        let s = silhouette_score(&pts, &assignment, Distance::Euclidean).unwrap();
        // three tight points with a far singleton: positive but diluted by the
        // singleton's zero contribution
        assert!(s > 0.5 && s < 1.0);
    }
}
