//! `dust-lint` CLI.
//!
//! ```text
//! cargo run -p dust-lint                      # lint the workspace, exit 1 on violations
//! cargo run -p dust-lint -- --update-baseline # grandfather current violations
//! cargo run -p dust-lint -- --root <dir>      # lint a different tree (fixtures)
//! ```
//!
//! Exit codes: 0 clean, 1 violations, 2 usage/IO/config error.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut update = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = Some(PathBuf::from(dir)),
                None => {
                    eprintln!("dust-lint: --root needs a directory");
                    return ExitCode::from(2);
                }
            },
            "--update-baseline" => update = true,
            "--help" | "-h" => {
                println!("usage: dust-lint [--root <dir>] [--update-baseline]");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("dust-lint: unknown argument `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let root = match root.map(Ok).unwrap_or_else(discover_root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dust-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if update {
        return match dust_lint::update_baseline(&root) {
            Ok(n) => {
                println!(
                    "dust-lint: wrote {n} baseline entr{} to lint/baseline.toml",
                    plural_y(n)
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("dust-lint: {e}");
                ExitCode::from(2)
            }
        };
    }

    match dust_lint::run(&root) {
        Ok(report) if report.is_clean() => {
            println!(
                "dust-lint: clean — {} files, {} pragma-suppressed, {} baselined",
                report.files_checked, report.suppressed_by_pragma, report.suppressed_by_baseline
            );
            ExitCode::SUCCESS
        }
        Ok(report) => {
            for d in &report.diagnostics {
                println!("{d}");
            }
            println!();
            println!(
                "dust-lint: {} violation{} across {} files:",
                report.diagnostics.len(),
                plural_s(report.diagnostics.len()),
                report.files_checked
            );
            for (rule, hits) in report.per_rule() {
                println!("  {rule:<24} {hits}");
            }
            println!(
                "(justify in place with `// dust-lint: allow(<rule>) -- <reason>` or \
                 grandfather with `--update-baseline`)"
            );
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("dust-lint: {e}");
            ExitCode::from(2)
        }
    }
}

/// The workspace root: the nearest ancestor (starting from the crate's
/// own manifest when run via cargo, else the current directory) that
/// holds both a `Cargo.toml` and a `crates/` directory.
fn discover_root() -> Result<PathBuf, String> {
    let start = match std::env::var_os("CARGO_MANIFEST_DIR") {
        Some(dir) => PathBuf::from(dir),
        None => std::env::current_dir().map_err(|e| e.to_string())?,
    };
    let mut dir = start.as_path();
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Ok(dir.to_path_buf());
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => {
                return Err(format!(
                    "no workspace root (Cargo.toml + crates/) above {}",
                    start.display()
                ))
            }
        }
    }
}

fn plural_s(n: usize) -> &'static str {
    if n == 1 {
        ""
    } else {
        "s"
    }
}

fn plural_y(n: usize) -> &'static str {
    if n == 1 {
        "y"
    } else {
        "ies"
    }
}
