//! Lexical view of one Rust source file.
//!
//! The rules never look at raw text: they match against a **masked** copy
//! in which the contents of string literals, char literals, and comments
//! are blanked out (delimiters kept). That is what lets the linter's own
//! source — full of quoted patterns like `".lock().unwrap()"` — pass its
//! own rules, and keeps doc comments from tripping token checks.
//!
//! Two derived views are exposed:
//!
//! * per-line masked text, for word-level checks, and
//! * a **condensed** stream (all whitespace removed, with a byte → line
//!   map), for call-chain patterns that may be split across lines, e.g.
//!
//!   ```text
//!   self.current
//!       .read()
//!       .unwrap()
//!   ```
//!
//!   which condenses to `self.current.read().unwrap()` and still matches.
//!   Statement terminators survive condensing, so a pattern can never
//!   accidentally bridge two statements.
//!
//! Comment *text* is kept per line (it is where `dust-lint:` pragmas and
//! `SAFETY:` justifications live).

/// One parsed source file.
pub struct SourceFile {
    /// Workspace-relative path, forward slashes.
    pub rel: String,
    /// Raw lines, as read.
    pub raw: Vec<String>,
    /// Lines with string/char/comment contents replaced by spaces.
    pub masked: Vec<String>,
    /// Per line: concatenated text of its line comments (empty if none).
    pub comments: Vec<String>,
    condensed: String,
    condensed_line: Vec<usize>,
}

#[derive(PartialEq)]
enum State {
    Normal,
    LineComment,
    Block(u32),
    Str,
    RawStr(u32),
    Char,
}

impl SourceFile {
    pub fn parse(rel: impl Into<String>, text: &str) -> SourceFile {
        let chars: Vec<char> = text.chars().collect();
        let mut masked = String::with_capacity(text.len());
        let mut comments: Vec<String> = vec![String::new()];
        let mut line = 0usize;
        let mut state = State::Normal;
        let mut prev_ident = false; // was the previous Normal char part of an identifier?
        let mut i = 0usize;
        while i < chars.len() {
            let c = chars[i];
            if c == '\n' {
                masked.push('\n');
                comments.push(String::new());
                line += 1;
                if state == State::LineComment {
                    state = State::Normal;
                }
                prev_ident = false;
                i += 1;
                continue;
            }
            match state {
                State::Normal => {
                    let next = chars.get(i + 1).copied();
                    if c == '/' && next == Some('/') {
                        state = State::LineComment;
                        masked.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        state = State::Block(1);
                        masked.push_str("  ");
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        state = State::Str;
                        masked.push('"');
                        i += 1;
                        continue;
                    }
                    // Raw (byte) strings: r"..." / r#"..."# / br#"..."#.
                    if !prev_ident && (c == 'r' || (c == 'b' && next == Some('r'))) {
                        let mut j = i + if c == 'b' { 2 } else { 1 };
                        let mut hashes = 0u32;
                        while chars.get(j) == Some(&'#') {
                            hashes += 1;
                            j += 1;
                        }
                        if chars.get(j) == Some(&'"') {
                            for _ in i..=j {
                                masked.push(' ');
                            }
                            masked.pop();
                            masked.push('"');
                            state = State::RawStr(hashes);
                            i = j + 1;
                            prev_ident = false;
                            continue;
                        }
                    }
                    if c == '\'' {
                        // Lifetime or char literal? A char literal closes
                        // within a couple of chars ('x', or '\..' escape).
                        let is_char = match next {
                            Some('\\') => true,
                            Some(n) => n != '\'' && chars.get(i + 2) == Some(&'\''),
                            None => false,
                        };
                        if is_char {
                            masked.push('\'');
                            state = State::Char;
                            i += 1;
                            prev_ident = false;
                            continue;
                        }
                    }
                    masked.push(c);
                    prev_ident = c.is_alphanumeric() || c == '_';
                    i += 1;
                }
                State::LineComment => {
                    comments[line].push(c);
                    masked.push(' ');
                    i += 1;
                }
                State::Block(depth) => {
                    let next = chars.get(i + 1).copied();
                    if c == '*' && next == Some('/') {
                        masked.push_str("  ");
                        i += 2;
                        state = if depth == 1 {
                            State::Normal
                        } else {
                            State::Block(depth - 1)
                        };
                    } else if c == '/' && next == Some('*') {
                        masked.push_str("  ");
                        i += 2;
                        state = State::Block(depth + 1);
                    } else {
                        masked.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        masked.push_str("  ");
                        i += 2;
                        // A escaped newline still ends the visual line.
                        if chars.get(i - 1) == Some(&'\n') {
                            masked.pop();
                            masked.push('\n');
                            comments.push(String::new());
                            line += 1;
                        }
                    } else if c == '"' {
                        masked.push('"');
                        state = State::Normal;
                        i += 1;
                    } else {
                        masked.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(hashes) => {
                    if c == '"' {
                        let mut ok = true;
                        for h in 0..hashes {
                            if chars.get(i + 1 + h as usize) != Some(&'#') {
                                ok = false;
                                break;
                            }
                        }
                        if ok {
                            masked.push('"');
                            for _ in 0..hashes {
                                masked.push(' ');
                            }
                            i += 1 + hashes as usize;
                            state = State::Normal;
                            continue;
                        }
                    }
                    masked.push(' ');
                    i += 1;
                }
                State::Char => {
                    if c == '\\' {
                        masked.push_str("  ");
                        i += 2;
                    } else if c == '\'' {
                        masked.push('\'');
                        state = State::Normal;
                        i += 1;
                    } else {
                        masked.push(' ');
                        i += 1;
                    }
                }
            }
        }

        let raw: Vec<String> = text.lines().map(str::to_string).collect();
        let mut masked_lines: Vec<String> = masked.lines().map(str::to_string).collect();
        while masked_lines.len() < raw.len() {
            masked_lines.push(String::new());
        }
        while comments.len() < raw.len() {
            comments.push(String::new());
        }
        comments.truncate(raw.len().max(1));

        let mut condensed = String::new();
        let mut condensed_line = Vec::new();
        for (idx, ml) in masked_lines.iter().enumerate() {
            for ch in ml.chars() {
                if !ch.is_whitespace() {
                    condensed.push(ch);
                    for _ in 0..ch.len_utf8() {
                        condensed_line.push(idx + 1);
                    }
                }
            }
        }

        SourceFile {
            rel: rel.into(),
            raw,
            masked: masked_lines,
            comments,
            condensed,
            condensed_line,
        }
    }

    pub fn num_lines(&self) -> usize {
        self.raw.len()
    }

    /// All occurrences of a whitespace-free pattern in the condensed
    /// stream, as 1-based line numbers of the match start.
    pub fn find_pattern(&self, pat: &str) -> Vec<usize> {
        self.condensed
            .match_indices(pat)
            .map(|(i, _)| self.condensed_line[i])
            .collect()
    }

    /// Lines whose masked text contains `word` with identifier boundaries
    /// on both sides.
    pub fn find_word(&self, word: &str) -> Vec<usize> {
        let mut out = Vec::new();
        for (idx, ml) in self.masked.iter().enumerate() {
            if line_has_word(ml, word) {
                out.push(idx + 1);
            }
        }
        out
    }
}

/// Does `line` contain `word` delimited by non-identifier characters?
pub fn line_has_word(line: &str, word: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, _) in line.match_indices(word) {
        let before_ok = i == 0 || !is_ident_byte(bytes[i - 1]);
        let after = i + word.len();
        let after_ok = after >= bytes.len() || !is_ident_byte(bytes[after]);
        if before_ok && after_ok {
            return true;
        }
    }
    false
}

fn is_ident_byte(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_masked() {
        let f = SourceFile::parse(
            "t.rs",
            "let x = \".lock().unwrap()\"; // .lock().unwrap()\nx.lock().unwrap();\n",
        );
        assert_eq!(f.find_pattern(".lock().unwrap()"), vec![2]);
        assert!(f.comments[0].contains(".lock().unwrap()"));
    }

    #[test]
    fn multiline_chains_condense_across_lines() {
        let f = SourceFile::parse("t.rs", "self.current\n    .read()\n    .unwrap();\n");
        assert_eq!(f.find_pattern(".read().unwrap()"), vec![2]);
    }

    #[test]
    fn statement_boundaries_survive_condensing() {
        let f = SourceFile::parse("t.rs", "a.lock();\nb.unwrap();\n");
        assert!(f.find_pattern(".lock().unwrap()").is_empty());
    }

    #[test]
    fn raw_strings_are_masked() {
        let f = SourceFile::parse("t.rs", "let p = r#\"x.partial_cmp(y)\"#;\n");
        assert!(f.find_pattern(".partial_cmp(").is_empty());
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let f = SourceFile::parse("t.rs", "fn f<'a>(x: &'a str) { x.partial_cmp(x); }\n");
        assert_eq!(f.find_pattern(".partial_cmp("), vec![1]);
    }

    #[test]
    fn char_literals_are_masked() {
        let f = SourceFile::parse("t.rs", "let c = 'u'; let d = '\\n'; c.partial_cmp(&d);\n");
        assert_eq!(f.find_pattern(".partial_cmp("), vec![1]);
    }

    #[test]
    fn nested_block_comments() {
        let f = SourceFile::parse("t.rs", "/* a /* HashMap */ HashSet */ let x = 1;\n");
        assert!(f.find_word("HashMap").is_empty());
        assert!(f.find_word("HashSet").is_empty());
    }

    #[test]
    fn word_boundaries() {
        assert!(line_has_word("use std::collections::HashMap;", "HashMap"));
        assert!(!line_has_word("type MyHashMapLike = ();", "HashMap"));
        assert!(!line_has_word("unsafe_code", "unsafe"));
        assert!(line_has_word("unsafe {", "unsafe"));
    }
}
