//! The grandfather file, `lint/baseline.toml`.
//!
//! A baseline entry suppresses one existing violation so a new rule can
//! land before every historical hit is fixed. Matching is by rule, file,
//! and a **snippet** of the offending line — not a line number — so
//! unrelated edits above the hit don't invalidate the baseline. Each
//! entry consumes at most one diagnostic, and an entry that consumes
//! nothing is itself reported (`baseline` rule): the file can only ever
//! shrink, never rot.
//!
//! `cargo run -p dust-lint -- --update-baseline` rewrites the file from
//! the current set of unsuppressed violations.

use crate::diag::{Diagnostic, Rule};
use crate::toml;
use std::fs;
use std::path::Path;

/// Where the baseline lives, relative to the workspace root.
pub const BASELINE_PATH: &str = "lint/baseline.toml";

/// Longest snippet recorded per entry; a prefix keeps matching after the
/// truncation because matching is by substring.
const SNIPPET_LEN: usize = 80;

#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    pub rule: Rule,
    pub file: String,
    pub snippet: String,
}

#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<Entry>,
}

impl Baseline {
    /// Partition `diags` into (kept, suppressed-count) and report stale
    /// entries. Consumes each entry at most once, in file order.
    pub fn apply(
        &self,
        diags: Vec<Diagnostic>,
        line_text: impl Fn(&str, usize) -> String,
    ) -> (Vec<Diagnostic>, usize) {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = 0usize;
        for d in diags {
            let text = line_text(&d.file, d.line);
            let matched = self.entries.iter().enumerate().find(|(i, e)| {
                !used[*i] && e.rule == d.rule && e.file == d.file && text.contains(&e.snippet)
            });
            match matched {
                Some((i, _)) => {
                    used[i] = true;
                    suppressed += 1;
                }
                None => kept.push(d),
            }
        }
        for (i, e) in self.entries.iter().enumerate() {
            if !used[i] {
                kept.push(Diagnostic::new(
                    Rule::Baseline,
                    &e.file,
                    0,
                    format!(
                        "stale baseline entry for {} (snippet `{}`) — remove it from {BASELINE_PATH}",
                        e.rule.id(),
                        e.snippet
                    ),
                ));
            }
        }
        (kept, suppressed)
    }
}

/// Load the baseline; missing file = empty baseline.
pub fn load(root: &Path) -> Result<Baseline, String> {
    let path = root.join(BASELINE_PATH);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Baseline::default()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let doc = toml::parse(&text).map_err(|e| format!("{BASELINE_PATH}: {e}"))?;
    let mut entries = Vec::new();
    for t in doc.tables_named("entry") {
        let rule = t
            .get_str("rule")
            .and_then(Rule::from_id)
            .ok_or_else(|| format!("{BASELINE_PATH}: entry with missing/unknown rule"))?;
        let file = t
            .get_str("file")
            .ok_or_else(|| format!("{BASELINE_PATH}: entry missing file"))?
            .to_string();
        let snippet = t
            .get_str("snippet")
            .ok_or_else(|| format!("{BASELINE_PATH}: entry missing snippet"))?
            .to_string();
        entries.push(Entry {
            rule,
            file,
            snippet,
        });
    }
    Ok(Baseline { entries })
}

/// Serialize entries for the current violations.
pub fn render(diags: &[Diagnostic], line_text: impl Fn(&str, usize) -> String) -> String {
    let mut out = String::from(
        "# dust-lint baseline — grandfathered violations.\n\
         # Each entry suppresses exactly one hit (matched by rule + file + line\n\
         # snippet). Stale entries are themselves violations: this file only\n\
         # shrinks. Regenerate with `cargo run -p dust-lint -- --update-baseline`.\n",
    );
    for d in diags {
        let text = line_text(&d.file, d.line);
        let snippet: String = text.trim().chars().take(SNIPPET_LEN).collect();
        out.push_str(&format!(
            "\n[[entry]]\nrule = \"{}\"\nfile = \"{}\"\nsnippet = \"{}\"\n",
            d.rule.id(),
            toml::escape(&d.file),
            toml::escape(&snippet)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diag(rule: Rule, file: &str, line: usize) -> Diagnostic {
        Diagnostic::new(rule, file, line, "msg")
    }

    #[test]
    fn matching_entry_suppresses_once() {
        let b = Baseline {
            entries: vec![Entry {
                rule: Rule::NanOrdering,
                file: "a.rs".into(),
                snippet: "x.partial_cmp".into(),
            }],
        };
        let diags = vec![
            diag(Rule::NanOrdering, "a.rs", 3),
            diag(Rule::NanOrdering, "a.rs", 9),
        ];
        let (kept, suppressed) = b.apply(diags, |_, _| "let o = x.partial_cmp(&y);".into());
        assert_eq!(suppressed, 1);
        // Second hit survives: one entry, one suppression.
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].line, 9);
    }

    #[test]
    fn stale_entry_is_reported() {
        let b = Baseline {
            entries: vec![Entry {
                rule: Rule::LockHygiene,
                file: "gone.rs".into(),
                snippet: "whatever".into(),
            }],
        };
        let (kept, suppressed) = b.apply(Vec::new(), |_, _| String::new());
        assert_eq!(suppressed, 0);
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].rule, Rule::Baseline);
        assert!(kept[0].message.contains("stale"));
    }

    #[test]
    fn render_parses_back() {
        let diags = vec![diag(Rule::NoWallClock, "crates/x/src/a.rs", 4)];
        let text = render(&diags, |_, _| "    let t = Instant::now(); // \"q\"".into());
        std::fs::create_dir_all(std::env::temp_dir().join("dust-lint-bl/lint")).unwrap();
        let root = std::env::temp_dir().join("dust-lint-bl");
        std::fs::write(root.join(BASELINE_PATH), &text).unwrap();
        let b = load(&root).unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].rule, Rule::NoWallClock);
        assert!(b.entries[0].snippet.contains("Instant::now"));
        assert!(b.entries[0].snippet.contains("\"q\""));
    }
}
