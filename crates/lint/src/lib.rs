//! `dust-lint` — a workspace-native invariant checker.
//!
//! Eight PRs of correctness work accumulated a set of hard-won,
//! cross-cutting invariants: NaN total-order comparators on every ranking
//! path, poison-recovering locks only, deterministic byte output from
//! every `persist` encoder, the no-float-subtraction rule on delta paths,
//! a SAFETY-commented + ledgered `unsafe` budget, and a declared lock
//! acquisition order. Until this crate, every one of them was enforced by
//! prose in CHANGES.md and by whichever test happened to exercise the
//! violating line. `dust-lint` enforces them mechanically.
//!
//! It is deliberately **not** a `syn`-based analyzer: the workspace builds
//! offline against vendored stand-in dependencies, so the linter is a
//! hand-rolled line-and-token scanner with zero dependencies that
//! compiles in well under a second and runs as the first CI step. String
//! literals and comments are masked before any pattern matching, so a
//! rule name quoted in a doc comment (or in this crate's own source)
//! never trips the rule itself.
//!
//! # Rules
//!
//! | id | invariant (origin) |
//! |----|--------------------|
//! | `nan-ordering` | no `partial_cmp` ranking outside `embed::order` (PR 3/4) |
//! | `lock-hygiene` | poison-recovering locks only (PR 7) |
//! | `deterministic-encode` | no `HashMap`/`HashSet` in `core::persist` (PR 6) |
//! | `no-wall-clock` | no `Instant::now`/`SystemTime` outside `crates/bench` (PR 6) |
//! | `delta-float-subtraction` | integer-only deltas on mutation paths (PR 5) |
//! | `unsafe-ledger` | every `unsafe` carries `// SAFETY:` and a ledger entry |
//! | `lock-order` | annotated lock sites must respect the declared order (PR 7) |
//!
//! # Escape hatches
//!
//! A violation can be justified in place with a pragma **with a mandatory
//! reason**:
//!
//! ```text
//! // dust-lint: allow(no-wall-clock) -- phase timing diagnostic only
//! ```
//!
//! or grandfathered in `lint/baseline.toml` (see [`baseline`]). Stale
//! baseline entries and stale ledger entries are themselves violations,
//! so both files shrink monotonically.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod config;
pub mod diag;
pub mod engine;
pub mod ledger;
pub mod pragma;
pub mod rules;
pub mod source;
pub mod toml;

pub use diag::{Diagnostic, Rule};
pub use engine::{run, update_baseline, Report};
