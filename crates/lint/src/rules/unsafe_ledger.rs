//! Rule `unsafe-ledger` — every `unsafe` is commented and ledgered.
//!
//! Origin: the buffer-reconstruction work in PR 6 (length-cross-checked
//! `from_raw_parts`-style decode paths) and the counting allocator in the
//! serving benchmark. Library crates all carry `#![forbid(unsafe_code)]`,
//! but binary targets do not inherit a library's crate attributes, so
//! "we have no unsafe" was only ever true by inspection. This rule makes
//! it mechanical: each `unsafe` token must sit next to a `// SAFETY:`
//! comment *and* be matched by an entry in `lint/unsafe_ledger.toml`, so
//! any new unsafe shows up as an explicit diff to a checked-in file.
//! Stale ledger entries are reported by the engine, keeping the ledger
//! exact in both directions.

use crate::diag::{Diagnostic, Rule};
use crate::ledger::{Ledger, LEDGER_PATH};
use crate::source::SourceFile;

/// How many lines above an `unsafe` token the SAFETY comment may sit.
const SAFETY_WINDOW: usize = 5;

/// Check one file. Returns diagnostics plus the indices of ledger
/// entries consumed by this file (the engine reports unconsumed entries
/// as stale once every file has been scanned).
pub fn check(file: &SourceFile, ledger: &Ledger) -> (Vec<Diagnostic>, Vec<usize>) {
    let mut diags = Vec::new();
    let mut used = Vec::new();
    for line in file.find_word("unsafe") {
        let has_safety = file
            .raw
            .iter()
            .take(line)
            .skip(line.saturating_sub(SAFETY_WINDOW + 1))
            .any(|raw| raw.contains("SAFETY:"));
        if !has_safety {
            diags.push(Diagnostic::new(
                Rule::UnsafeLedger,
                &file.rel,
                line,
                "unsafe without a `// SAFETY:` comment justifying why it is sound",
            ));
        }
        let raw_line = &file.raw[line - 1];
        let entry = ledger.entries.iter().enumerate().find(|(i, e)| {
            !used.contains(i) && e.file == file.rel && raw_line.contains(&e.contains)
        });
        match entry {
            Some((i, _)) => used.push(i),
            None => diags.push(Diagnostic::new(
                Rule::UnsafeLedger,
                &file.rel,
                line,
                format!("unsafe not recorded in {LEDGER_PATH} — add an entry for this site"),
            )),
        }
    }
    (diags, used)
}

/// Engine hook: report ledger entries no site consumed.
pub fn stale_entries(ledger: &Ledger, used: &[usize]) -> Vec<Diagnostic> {
    ledger
        .entries
        .iter()
        .enumerate()
        .filter(|(i, _)| !used.contains(i))
        .map(|(_, e)| {
            Diagnostic::new(
                Rule::UnsafeLedger,
                &e.file,
                0,
                format!(
                    "stale ledger entry (contains `{}`) — no matching unsafe remains; remove it from {LEDGER_PATH}",
                    e.contains
                ),
            )
        })
        .collect()
}

// The `line_has_word` import is exercised through SourceFile::find_word;
// keep a direct assertion that attribute tokens never count as unsafe.
#[cfg(test)]
mod tests {
    use super::*;
    use crate::ledger::LedgerEntry;
    use crate::source::line_has_word;

    fn ledger(file: &str, contains: &str) -> Ledger {
        Ledger {
            entries: vec![LedgerEntry {
                file: file.into(),
                contains: contains.into(),
                reason: "test".into(),
            }],
        }
    }

    #[test]
    fn commented_and_ledgered_unsafe_passes() {
        let f = SourceFile::parse(
            "crates/b/src/bin/x.rs",
            "// SAFETY: delegates to System\nunsafe impl GlobalAlloc for A {\n}\n",
        );
        let (d, used) = check(
            &f,
            &ledger("crates/b/src/bin/x.rs", "unsafe impl GlobalAlloc"),
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(used, vec![0]);
    }

    #[test]
    fn missing_safety_comment_is_flagged() {
        let f = SourceFile::parse("crates/b/src/bin/x.rs", "unsafe { ptr.read() }\n");
        let (d, _) = check(&f, &ledger("crates/b/src/bin/x.rs", "unsafe {"));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("SAFETY"));
    }

    #[test]
    fn unledgered_unsafe_is_flagged() {
        let f = SourceFile::parse(
            "crates/b/src/bin/x.rs",
            "// SAFETY: fine\nunsafe { ptr.read() }\n",
        );
        let (d, _) = check(&f, &Ledger::default());
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("ledger"));
    }

    #[test]
    fn forbid_attribute_is_not_unsafe() {
        assert!(!line_has_word("#![forbid(unsafe_code)]", "unsafe"));
        let f = SourceFile::parse("crates/b/src/lib.rs", "#![forbid(unsafe_code)]\n");
        let (d, _) = check(&f, &Ledger::default());
        assert!(d.is_empty());
    }

    #[test]
    fn stale_entries_are_reported() {
        let l = ledger("crates/gone.rs", "unsafe fn alloc");
        let d = stale_entries(&l, &[]);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("stale"));
    }
}
