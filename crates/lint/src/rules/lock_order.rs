//! Rule `lock-order` — annotated lock sites, checked against the
//! declared acquisition hierarchy.
//!
//! Origin: PR 7/8. The serving stack holds locks across other lock
//! acquisitions in exactly one sanctioned shape: serve's durability lock
//! → the session mutate mutex → the published-pointer `RwLock` → the
//! per-snapshot column `OnceLock` → leaf slot mutexes. That hierarchy
//! used to live in comments; this rule extracts it from code. Every
//! acquisition site (the poison-recovering `.lock()/.read()/.write()`
//! forms and `OnceLock::get_or_init`) inside `crates/{core,bench}/src`
//! must carry a `// dust-lint: lock(<name>)` annotation naming a lock
//! from `lock_order` in `lint/dust_lint.toml` (outermost first). The
//! rule then checks, per function, that a second acquisition while a
//! let-bound guard is still in scope only ever moves *inward* — and
//! accumulates the observed held→acquired edges across the whole
//! workspace so a cycle between functions is caught even when no single
//! function misorders.
//!
//! Guard liveness is lexical and conservative: a `let`-bound guard is
//! held to the end of its block; a guard inside a plain expression
//! statement dies at its semicolon. Both approximations are documented
//! limitations of a token-level scanner; `allow(lock-order)` with a
//! reason is the escape hatch.
//!
//! PR 10 closes the guard-escape hole: a helper whose return type names
//! a `Guard` and whose body contains an annotated acquisition hands its
//! caller a held lock that no `ACQUIRE_PATTERNS` match would reveal.
//! [`guard_returning_fns`] collects such helpers across the workspace
//! (engine pre-pass); [`check`] then treats every call site of one as an
//! acquisition of the mapped lock, so `let g = self.lock_inner();` holds
//! `inner` to scope end exactly like a direct annotated acquisition —
//! feeding the same inversion, re-acquisition, and cross-function cycle
//! machinery.

use crate::config::Config;
use crate::diag::{Diagnostic, Rule};
use crate::pragma::Pragmas;
use crate::rules::scan_scopes;
use crate::source::SourceFile;

/// Where annotated locking is required.
const SCOPE_PREFIXES: &[&str] = &["crates/core/src/", "crates/bench/src/"];

/// Call shapes that acquire a lock. Only the poison-recovering forms
/// appear here: the raw `.unwrap()` forms are already `lock-hygiene`
/// violations, and `io::stdin().lock()` takes no recovery combinator so
/// it never matches.
const ACQUIRE_PATTERNS: &[&str] = &[
    ".lock().unwrap_or_else(",
    ".read().unwrap_or_else(",
    ".write().unwrap_or_else(",
    ".get_or_init(",
];

/// How many lines above the acquisition the annotation may sit (a
/// multi-line chain is annotated on its statement's first line).
const ANNOTATION_WINDOW: usize = 3;

/// One observed held→acquired pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
}

/// Guard-returning helpers found in one file: `(fn name, lock name)`.
/// A helper qualifies when its signature's return type names a `Guard`
/// and its body owns an annotated acquisition — calling it hands the
/// caller that lock, held for as long as the returned guard lives.
pub fn guard_returning_fns(file: &SourceFile, pragmas: &Pragmas) -> Vec<(String, String)> {
    if !SCOPE_PREFIXES.iter().any(|p| file.rel.starts_with(p)) {
        return Vec::new();
    }
    let acquisitions = direct_acquisitions(file);
    if acquisitions.is_empty() {
        return Vec::new();
    }
    let (spans, _) = scan_scopes(file);
    let mut out = Vec::new();
    for span in &spans {
        // The signature runs from the `fn` keyword line to the body
        // brace; truncate at the brace so a one-line body can't leak
        // `Guard` mentions into the return-type test.
        let sig = file.masked[span.start - 1..span.body_start]
            .iter()
            .map(|l| l.trim())
            .collect::<Vec<_>>()
            .join(" ");
        let sig = &sig[..sig.find('{').unwrap_or(sig.len())];
        let returns_guard = sig
            .rfind("->")
            .is_some_and(|pos| sig[pos..].contains("Guard"));
        if !returns_guard {
            continue;
        }
        let lock = acquisitions
            .iter()
            .filter(|&&l| span.contains(l) && !claimed_by_inner_span(&spans, span, l))
            .find_map(|&l| pragmas.lock_name(l, ANNOTATION_WINDOW));
        if let Some(lock) = lock {
            out.push((span.name.clone(), lock.to_string()));
        }
    }
    out
}

/// Lines matching a direct `ACQUIRE_PATTERNS` hit, sorted and deduped.
fn direct_acquisitions(file: &SourceFile) -> Vec<usize> {
    let mut acquisitions: Vec<usize> = ACQUIRE_PATTERNS
        .iter()
        .flat_map(|p| file.find_pattern(p))
        .collect();
    acquisitions.sort_unstable();
    acquisitions.dedup();
    acquisitions
}

/// Inner fns own their acquisitions; a line a more deeply nested span
/// claims is not `span`'s.
fn claimed_by_inner_span(
    spans: &[crate::rules::FnSpan],
    span: &crate::rules::FnSpan,
    line: usize,
) -> bool {
    spans
        .iter()
        .any(|s| s != span && s.contains(line) && s.body_start > span.body_start)
}

/// Lines calling `helper(` (word-bounded, not its `fn` definition).
fn call_sites(file: &SourceFile, helper: &str) -> Vec<usize> {
    let needle = format!("{helper}(");
    file.find_word(helper)
        .into_iter()
        .filter(|&l| {
            let line = &file.masked[l - 1];
            line.contains(&needle) && !line.contains("fn ")
        })
        .collect()
}

pub fn check(
    file: &SourceFile,
    pragmas: &Pragmas,
    config: &Config,
    guard_fns: &[(String, String)],
) -> (Vec<Diagnostic>, Vec<Edge>) {
    if !SCOPE_PREFIXES.iter().any(|p| file.rel.starts_with(p)) {
        return (Vec::new(), Vec::new());
    }
    // Acquisition events in line order: direct pattern hits, plus call
    // sites of guard-returning helpers (`Some(index into guard_fns)`).
    // A direct hit wins on a shared line: `(l, None)` sorts first.
    let mut events: Vec<(usize, Option<usize>)> = direct_acquisitions(file)
        .into_iter()
        .map(|l| (l, None))
        .collect();
    for (idx, (helper, _)) in guard_fns.iter().enumerate() {
        for line in call_sites(file, helper) {
            events.push((line, Some(idx)));
        }
    }
    events.sort_unstable();
    events.dedup_by_key(|e| e.0);
    if events.is_empty() {
        return (Vec::new(), Vec::new());
    }

    let (spans, line_depth) = scan_scopes(file);
    let mut diags = Vec::new();
    let mut edges = Vec::new();

    for span in &spans {
        // Held let-bound guards: (name, scope-end line, via-helper).
        let mut held: Vec<(String, usize, Option<String>)> = Vec::new();
        for &(line, via) in events.iter().filter(|(l, _)| span.contains(*l)) {
            if claimed_by_inner_span(&spans, span, line) {
                continue;
            }
            held.retain(|(_, end, _)| *end > line);
            let (name, via_helper): (&str, Option<&str>) = match via {
                None => {
                    let Some(name) = pragmas.lock_name(line, ANNOTATION_WINDOW) else {
                        diags.push(Diagnostic::new(
                            Rule::LockOrder,
                            &file.rel,
                            line,
                            "unannotated lock acquisition — name it with `// dust-lint: lock(<name>)` \
                             so the acquisition order stays checkable",
                        ));
                        continue;
                    };
                    if !config.lock_order.is_empty() && config.rank(name).is_none() {
                        diags.push(Diagnostic::new(
                            Rule::LockOrder,
                            &file.rel,
                            line,
                            format!("lock `{name}` is not in lock_order (lint/dust_lint.toml) — declare its place in the hierarchy"),
                        ));
                        continue;
                    }
                    (name, None)
                }
                Some(idx) => {
                    let (helper, lock) = &guard_fns[idx];
                    // A helper's own span already owns the direct,
                    // annotated acquisition — don't double-count a
                    // recursive or shadowed mention inside it. The
                    // helper's lock name was rank-checked at that
                    // direct site, so no unknown-name repeat here.
                    if span.name == *helper {
                        continue;
                    }
                    (lock.as_str(), Some(helper.as_str()))
                }
            };
            let acq_via = via_helper
                .map(|h| format!(" via `{h}()`"))
                .unwrap_or_default();
            for (held_name, _, held_via) in &held {
                let held_note = held_via
                    .as_deref()
                    .map(|h| format!(" (returned by `{h}()`)"))
                    .unwrap_or_default();
                if held_name.as_str() == name {
                    diags.push(Diagnostic::new(
                        Rule::LockOrder,
                        &file.rel,
                        line,
                        format!(
                            "`{name}` re-acquired{acq_via} while already held{held_note} — self-deadlock"
                        ),
                    ));
                    continue;
                }
                edges.push(Edge {
                    from: held_name.clone(),
                    to: name.to_string(),
                    file: file.rel.clone(),
                    line,
                });
                if let (Some(outer), Some(inner)) = (config.rank(held_name), config.rank(name)) {
                    if inner <= outer {
                        diags.push(Diagnostic::new(
                            Rule::LockOrder,
                            &file.rel,
                            line,
                            format!(
                                "`{name}` acquired{acq_via} while holding `{held_name}`{held_note} — \
                                 declared order requires `{name}` to be taken first \
                                 (outermost-first in lock_order)"
                            ),
                        ));
                    }
                }
            }
            if is_let_bound(file, span.body_start, line) {
                let depth = line_depth.get(line - 1).copied().unwrap_or(span.body_depth);
                let scope_end = (line + 1..=span.end)
                    .find(|&l| line_depth.get(l - 1).copied().unwrap_or(0) < depth)
                    .unwrap_or(span.end);
                held.push((name.to_string(), scope_end, via_helper.map(str::to_string)));
            }
        }
    }
    (diags, edges)
}

/// Does the statement containing `line` start with `let`? Walks up a few
/// lines to the statement start (the previous line ending a statement or
/// opening a block/call marks the boundary).
fn is_let_bound(file: &SourceFile, body_start: usize, line: usize) -> bool {
    let mut stmt = line;
    for _ in 0..6 {
        if stmt <= body_start {
            break;
        }
        let prev = file.masked[stmt - 2].trim_end();
        let boundary = prev.is_empty()
            || prev.ends_with(';')
            || prev.ends_with('{')
            || prev.ends_with('}')
            || prev.ends_with(',')
            || prev.ends_with('(');
        if boundary {
            break;
        }
        stmt -= 1;
    }
    file.masked[stmt - 1].trim_start().starts_with("let ")
}

/// Cross-function deadlock check over every observed edge: report the
/// first cycle found in the held→acquired graph.
pub fn check_cycles(edges: &[Edge]) -> Vec<Diagnostic> {
    let mut names: Vec<&str> = Vec::new();
    for e in edges {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    // DFS from every node; 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; names.len()];
    fn dfs(
        v: usize,
        names: &[&str],
        edges: &[Edge],
        state: &mut [u8],
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state[v] = 1;
        path.push(v);
        for e in edges.iter().filter(|e| e.from == names[v]) {
            let w = names.iter().position(|m| *m == e.to).expect("known");
            match state[w] {
                1 => {
                    let start = path.iter().position(|&p| p == w).expect("on path");
                    return Some(path[start..].to_vec());
                }
                0 => {
                    if let Some(c) = dfs(w, names, edges, state, path) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        path.pop();
        state[v] = 2;
        None
    }
    for v in 0..names.len() {
        if state[v] != 0 {
            continue;
        }
        let mut path = Vec::new();
        if let Some(cycle) = dfs(v, &names, edges, &mut state, &mut path) {
            let chain: Vec<&str> = cycle
                .iter()
                .chain(std::iter::once(&cycle[0]))
                .map(|&i| names[i])
                .collect();
            let witness = edges
                .iter()
                .find(|e| e.from == names[cycle[0]])
                .expect("cycle has an edge");
            return vec![Diagnostic::new(
                Rule::LockOrder,
                &witness.file,
                witness.line,
                format!(
                    "lock-order cycle across functions: {} — two threads taking these \
                     paths can deadlock",
                    chain.join(" -> ")
                ),
            )];
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;

    fn setup(text: &str, order: &[&str]) -> (Vec<Diagnostic>, Vec<Edge>) {
        let f = SourceFile::parse("crates/core/src/session.rs", text);
        let (pragmas, pd) = pragma::collect(&f);
        assert!(pd.is_empty(), "{pd:?}");
        let config = Config {
            lock_order: order.iter().map(|s| s.to_string()).collect(),
        };
        check(&f, &pragmas, &config, &[])
    }

    /// Like `setup`, but with the guard-returning-helper pre-pass wired
    /// in the way the engine does it.
    fn setup_with_guards(
        text: &str,
        order: &[&str],
    ) -> (Vec<(String, String)>, Vec<Diagnostic>, Vec<Edge>) {
        let f = SourceFile::parse("crates/core/src/session.rs", text);
        let (pragmas, pd) = pragma::collect(&f);
        assert!(pd.is_empty(), "{pd:?}");
        let config = Config {
            lock_order: order.iter().map(|s| s.to_string()).collect(),
        };
        let guards = guard_returning_fns(&f, &pragmas);
        let (d, e) = check(&f, &pragmas, &config, &guards);
        (guards, d, e)
    }

    #[test]
    fn annotated_ordered_nesting_passes() {
        let (d, e) = setup(
            "fn add(&self) {\n    // dust-lint: lock(mutate)\n    let _g = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(current)\n    *self.current.write().unwrap_or_else(PoisonError::into_inner) = next;\n}\n",
            &["mutate", "current"],
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "mutate");
        assert_eq!(e[0].to, "current");
    }

    #[test]
    fn inverted_nesting_is_flagged() {
        let (d, _) = setup(
            "fn bad(&self) {\n    // dust-lint: lock(current)\n    let _g = self.current.write().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(mutate)\n    let _h = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate", "current"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("declared order"));
    }

    #[test]
    fn unannotated_acquisition_is_flagged() {
        let (d, _) = setup(
            "fn f(&self) {\n    let _g = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unannotated"));
    }

    #[test]
    fn unknown_name_is_flagged() {
        let (d, _) = setup(
            "fn f(&self) {\n    // dust-lint: lock(mystery)\n    let _g = self.m.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not in lock_order"));
    }

    #[test]
    fn temporary_guard_does_not_hold() {
        // Two statement-expression acquisitions of the same lock: each
        // guard dies at its semicolon, so no re-acquisition is reported.
        let (d, e) = setup(
            "fn f(&self) {\n    // dust-lint: lock(slot)\n    *slots[0].lock().unwrap_or_else(PoisonError::into_inner) = one;\n    // dust-lint: lock(slot)\n    *slots[1].lock().unwrap_or_else(PoisonError::into_inner) = two;\n}\n",
            &["slot"],
        );
        assert!(d.is_empty(), "{d:?}");
        assert!(e.is_empty());
    }

    #[test]
    fn reacquisition_while_held_is_flagged() {
        let (d, _) = setup(
            "fn f(&self) {\n    // dust-lint: lock(mutate)\n    let _a = self.m.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(mutate)\n    let _b = self.m.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("self-deadlock"));
    }

    #[test]
    fn guard_scope_ends_with_its_block() {
        let (d, e) = setup(
            "fn f(&self) {\n    {\n        // dust-lint: lock(current)\n        let _g = self.current.read().unwrap_or_else(PoisonError::into_inner);\n    }\n    // dust-lint: lock(mutate)\n    let _h = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate", "current"],
        );
        assert!(d.is_empty(), "{d:?}");
        assert!(e.is_empty());
    }

    #[test]
    fn cycles_across_functions_are_caught() {
        let (d1, e1) = setup(
            "fn a(&self) {\n    // dust-lint: lock(x)\n    let _g = self.x.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(y)\n    let _h = self.y.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &[],
        );
        let (d2, e2) = setup(
            "fn b(&self) {\n    // dust-lint: lock(y)\n    let _g = self.y.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(x)\n    let _h = self.x.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &[],
        );
        assert!(d1.is_empty() && d2.is_empty());
        let edges: Vec<Edge> = e1.into_iter().chain(e2).collect();
        let cycles = check_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("cycle"));
    }

    #[test]
    fn guard_escaping_helper_is_seen_at_call_sites() {
        let (guards, d, e) = setup_with_guards(
            "impl S {\n    fn lock_inner(&self) -> MutexGuard<'_, u32> {\n        // dust-lint: lock(inner)\n        self.inner.lock().unwrap_or_else(PoisonError::into_inner)\n    }\n\n    fn bad(&self) {\n        let g = self.lock_inner();\n        // dust-lint: lock(outer)\n        let h = self.outer.lock().unwrap_or_else(PoisonError::into_inner);\n        let _ = (*g, *h);\n    }\n}\n",
            &["outer", "inner"],
        );
        assert_eq!(
            guards,
            vec![("lock_inner".to_string(), "inner".to_string())]
        );
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("declared order"), "{}", d[0].message);
        assert!(
            d[0].message.contains("returned by `lock_inner()`"),
            "{}",
            d[0].message
        );
        // The held→acquired edge is recorded for cycle detection too.
        assert!(e.iter().any(|e| e.from == "inner" && e.to == "outer"));
    }

    #[test]
    fn guard_call_while_held_reports_acquisition_via_helper() {
        // Acquiring *through* the helper while holding a leaf lock: the
        // diagnostic points at the call line, which shows no lock at all.
        let (guards, d, _) = setup_with_guards(
            "impl S {\n    fn lock_outer(&self) -> MutexGuard<'_, u32> {\n        // dust-lint: lock(outer)\n        self.outer.lock().unwrap_or_else(PoisonError::into_inner)\n    }\n\n    fn bad(&self) {\n        // dust-lint: lock(inner)\n        let g = self.inner.lock().unwrap_or_else(PoisonError::into_inner);\n        let h = self.lock_outer();\n        let _ = (*g, *h);\n    }\n}\n",
            &["outer", "inner"],
        );
        assert_eq!(guards.len(), 1);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(
            d[0].message.contains("via `lock_outer()`"),
            "{}",
            d[0].message
        );
    }

    #[test]
    fn non_guard_helper_is_not_treated_as_acquisition() {
        // Returns a value copied out under the lock — the guard dies
        // inside the helper, so call sites hold nothing.
        let (guards, d, e) = setup_with_guards(
            "impl S {\n    fn read_inner(&self) -> u32 {\n        // dust-lint: lock(inner)\n        *self.inner.lock().unwrap_or_else(PoisonError::into_inner)\n    }\n\n    fn fine(&self) {\n        let v = self.read_inner();\n        // dust-lint: lock(outer)\n        let h = self.outer.lock().unwrap_or_else(PoisonError::into_inner);\n        let _ = (v, *h);\n    }\n}\n",
            &["outer", "inner"],
        );
        assert!(guards.is_empty(), "{guards:?}");
        assert!(d.is_empty(), "{d:?}");
        assert!(e.is_empty(), "{e:?}");
    }

    #[test]
    fn guard_helper_edges_feed_cross_function_cycles() {
        // One fn calls the helper then takes `outer`; another takes
        // `outer` then calls the helper. No declared order, but the
        // observed edges form a cycle the DFS must catch.
        let (guards, d, e) = setup_with_guards(
            "impl S {\n    fn lock_inner(&self) -> MutexGuard<'_, u32> {\n        // dust-lint: lock(inner)\n        self.inner.lock().unwrap_or_else(PoisonError::into_inner)\n    }\n\n    fn a(&self) {\n        let g = self.lock_inner();\n        // dust-lint: lock(outer)\n        let h = self.outer.lock().unwrap_or_else(PoisonError::into_inner);\n        let _ = (*g, *h);\n    }\n\n    fn b(&self) {\n        // dust-lint: lock(outer)\n        let h = self.outer.lock().unwrap_or_else(PoisonError::into_inner);\n        let g = self.lock_inner();\n        let _ = (*g, *h);\n    }\n}\n",
            &[],
        );
        assert_eq!(guards.len(), 1);
        assert!(d.is_empty(), "{d:?}");
        let cycles = check_cycles(&e);
        assert_eq!(cycles.len(), 1, "{cycles:?}");
        assert!(cycles[0].message.contains("cycle"));
    }

    #[test]
    fn multiline_chain_annotated_at_statement_start() {
        let (d, _) = setup(
            "fn f(&self) {\n    // dust-lint: lock(current)\n    let snap = self\n        .current\n        .read()\n        .unwrap_or_else(PoisonError::into_inner)\n        .clone();\n}\n",
            &["current"],
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
