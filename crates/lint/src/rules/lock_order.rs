//! Rule `lock-order` — annotated lock sites, checked against the
//! declared acquisition hierarchy.
//!
//! Origin: PR 7/8. The serving stack holds locks across other lock
//! acquisitions in exactly one sanctioned shape: serve's durability lock
//! → the session mutate mutex → the published-pointer `RwLock` → the
//! per-snapshot column `OnceLock` → leaf slot mutexes. That hierarchy
//! used to live in comments; this rule extracts it from code. Every
//! acquisition site (the poison-recovering `.lock()/.read()/.write()`
//! forms and `OnceLock::get_or_init`) inside `crates/{core,bench}/src`
//! must carry a `// dust-lint: lock(<name>)` annotation naming a lock
//! from `lock_order` in `lint/dust_lint.toml` (outermost first). The
//! rule then checks, per function, that a second acquisition while a
//! let-bound guard is still in scope only ever moves *inward* — and
//! accumulates the observed held→acquired edges across the whole
//! workspace so a cycle between functions is caught even when no single
//! function misorders.
//!
//! Guard liveness is lexical and conservative: a `let`-bound guard is
//! held to the end of its block; a guard inside a plain expression
//! statement dies at its semicolon. Both approximations are documented
//! limitations of a token-level scanner; `allow(lock-order)` with a
//! reason is the escape hatch.

use crate::config::Config;
use crate::diag::{Diagnostic, Rule};
use crate::pragma::Pragmas;
use crate::rules::scan_scopes;
use crate::source::SourceFile;

/// Where annotated locking is required.
const SCOPE_PREFIXES: &[&str] = &["crates/core/src/", "crates/bench/src/"];

/// Call shapes that acquire a lock. Only the poison-recovering forms
/// appear here: the raw `.unwrap()` forms are already `lock-hygiene`
/// violations, and `io::stdin().lock()` takes no recovery combinator so
/// it never matches.
const ACQUIRE_PATTERNS: &[&str] = &[
    ".lock().unwrap_or_else(",
    ".read().unwrap_or_else(",
    ".write().unwrap_or_else(",
    ".get_or_init(",
];

/// How many lines above the acquisition the annotation may sit (a
/// multi-line chain is annotated on its statement's first line).
const ANNOTATION_WINDOW: usize = 3;

/// One observed held→acquired pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Edge {
    pub from: String,
    pub to: String,
    pub file: String,
    pub line: usize,
}

pub fn check(
    file: &SourceFile,
    pragmas: &Pragmas,
    config: &Config,
) -> (Vec<Diagnostic>, Vec<Edge>) {
    if !SCOPE_PREFIXES.iter().any(|p| file.rel.starts_with(p)) {
        return (Vec::new(), Vec::new());
    }
    let mut acquisitions: Vec<usize> = ACQUIRE_PATTERNS
        .iter()
        .flat_map(|p| file.find_pattern(p))
        .collect();
    acquisitions.sort_unstable();
    acquisitions.dedup();
    if acquisitions.is_empty() {
        return (Vec::new(), Vec::new());
    }

    let (spans, line_depth) = scan_scopes(file);
    let mut diags = Vec::new();
    let mut edges = Vec::new();

    for span in &spans {
        // Held let-bound guards: (name, scope-end line).
        let mut held: Vec<(String, usize)> = Vec::new();
        for &line in acquisitions.iter().filter(|&&l| span.contains(l)) {
            // Inner fns own their acquisitions; skip lines that a more
            // deeply nested span claims.
            if spans
                .iter()
                .any(|s| s != span && s.contains(line) && s.body_start > span.body_start)
            {
                continue;
            }
            held.retain(|(_, end)| *end > line);
            let Some(name) = pragmas.lock_name(line, ANNOTATION_WINDOW) else {
                diags.push(Diagnostic::new(
                    Rule::LockOrder,
                    &file.rel,
                    line,
                    "unannotated lock acquisition — name it with `// dust-lint: lock(<name>)` \
                     so the acquisition order stays checkable",
                ));
                continue;
            };
            if !config.lock_order.is_empty() && config.rank(name).is_none() {
                diags.push(Diagnostic::new(
                    Rule::LockOrder,
                    &file.rel,
                    line,
                    format!("lock `{name}` is not in lock_order (lint/dust_lint.toml) — declare its place in the hierarchy"),
                ));
                continue;
            }
            for (held_name, _) in &held {
                if held_name.as_str() == name {
                    diags.push(Diagnostic::new(
                        Rule::LockOrder,
                        &file.rel,
                        line,
                        format!("`{name}` re-acquired while already held — self-deadlock"),
                    ));
                    continue;
                }
                edges.push(Edge {
                    from: held_name.clone(),
                    to: name.to_string(),
                    file: file.rel.clone(),
                    line,
                });
                if let (Some(outer), Some(inner)) = (config.rank(held_name), config.rank(name)) {
                    if inner <= outer {
                        diags.push(Diagnostic::new(
                            Rule::LockOrder,
                            &file.rel,
                            line,
                            format!(
                                "`{name}` acquired while holding `{held_name}` — declared order \
                                 requires `{name}` to be taken first (outermost-first in lock_order)"
                            ),
                        ));
                    }
                }
            }
            if is_let_bound(file, span.body_start, line) {
                let depth = line_depth.get(line - 1).copied().unwrap_or(span.body_depth);
                let scope_end = (line + 1..=span.end)
                    .find(|&l| line_depth.get(l - 1).copied().unwrap_or(0) < depth)
                    .unwrap_or(span.end);
                held.push((name.to_string(), scope_end));
            }
        }
    }
    (diags, edges)
}

/// Does the statement containing `line` start with `let`? Walks up a few
/// lines to the statement start (the previous line ending a statement or
/// opening a block/call marks the boundary).
fn is_let_bound(file: &SourceFile, body_start: usize, line: usize) -> bool {
    let mut stmt = line;
    for _ in 0..6 {
        if stmt <= body_start {
            break;
        }
        let prev = file.masked[stmt - 2].trim_end();
        let boundary = prev.is_empty()
            || prev.ends_with(';')
            || prev.ends_with('{')
            || prev.ends_with('}')
            || prev.ends_with(',')
            || prev.ends_with('(');
        if boundary {
            break;
        }
        stmt -= 1;
    }
    file.masked[stmt - 1].trim_start().starts_with("let ")
}

/// Cross-function deadlock check over every observed edge: report the
/// first cycle found in the held→acquired graph.
pub fn check_cycles(edges: &[Edge]) -> Vec<Diagnostic> {
    let mut names: Vec<&str> = Vec::new();
    for e in edges {
        for n in [e.from.as_str(), e.to.as_str()] {
            if !names.contains(&n) {
                names.push(n);
            }
        }
    }
    // DFS from every node; 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; names.len()];
    fn dfs(
        v: usize,
        names: &[&str],
        edges: &[Edge],
        state: &mut [u8],
        path: &mut Vec<usize>,
    ) -> Option<Vec<usize>> {
        state[v] = 1;
        path.push(v);
        for e in edges.iter().filter(|e| e.from == names[v]) {
            let w = names.iter().position(|m| *m == e.to).expect("known");
            match state[w] {
                1 => {
                    let start = path.iter().position(|&p| p == w).expect("on path");
                    return Some(path[start..].to_vec());
                }
                0 => {
                    if let Some(c) = dfs(w, names, edges, state, path) {
                        return Some(c);
                    }
                }
                _ => {}
            }
        }
        path.pop();
        state[v] = 2;
        None
    }
    for v in 0..names.len() {
        if state[v] != 0 {
            continue;
        }
        let mut path = Vec::new();
        if let Some(cycle) = dfs(v, &names, edges, &mut state, &mut path) {
            let chain: Vec<&str> = cycle
                .iter()
                .chain(std::iter::once(&cycle[0]))
                .map(|&i| names[i])
                .collect();
            let witness = edges
                .iter()
                .find(|e| e.from == names[cycle[0]])
                .expect("cycle has an edge");
            return vec![Diagnostic::new(
                Rule::LockOrder,
                &witness.file,
                witness.line,
                format!(
                    "lock-order cycle across functions: {} — two threads taking these \
                     paths can deadlock",
                    chain.join(" -> ")
                ),
            )];
        }
    }
    Vec::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pragma;

    fn setup(text: &str, order: &[&str]) -> (Vec<Diagnostic>, Vec<Edge>) {
        let f = SourceFile::parse("crates/core/src/session.rs", text);
        let (pragmas, pd) = pragma::collect(&f);
        assert!(pd.is_empty(), "{pd:?}");
        let config = Config {
            lock_order: order.iter().map(|s| s.to_string()).collect(),
        };
        check(&f, &pragmas, &config)
    }

    #[test]
    fn annotated_ordered_nesting_passes() {
        let (d, e) = setup(
            "fn add(&self) {\n    // dust-lint: lock(mutate)\n    let _g = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(current)\n    *self.current.write().unwrap_or_else(PoisonError::into_inner) = next;\n}\n",
            &["mutate", "current"],
        );
        assert!(d.is_empty(), "{d:?}");
        assert_eq!(e.len(), 1);
        assert_eq!(e[0].from, "mutate");
        assert_eq!(e[0].to, "current");
    }

    #[test]
    fn inverted_nesting_is_flagged() {
        let (d, _) = setup(
            "fn bad(&self) {\n    // dust-lint: lock(current)\n    let _g = self.current.write().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(mutate)\n    let _h = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate", "current"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("declared order"));
    }

    #[test]
    fn unannotated_acquisition_is_flagged() {
        let (d, _) = setup(
            "fn f(&self) {\n    let _g = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unannotated"));
    }

    #[test]
    fn unknown_name_is_flagged() {
        let (d, _) = setup(
            "fn f(&self) {\n    // dust-lint: lock(mystery)\n    let _g = self.m.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("not in lock_order"));
    }

    #[test]
    fn temporary_guard_does_not_hold() {
        // Two statement-expression acquisitions of the same lock: each
        // guard dies at its semicolon, so no re-acquisition is reported.
        let (d, e) = setup(
            "fn f(&self) {\n    // dust-lint: lock(slot)\n    *slots[0].lock().unwrap_or_else(PoisonError::into_inner) = one;\n    // dust-lint: lock(slot)\n    *slots[1].lock().unwrap_or_else(PoisonError::into_inner) = two;\n}\n",
            &["slot"],
        );
        assert!(d.is_empty(), "{d:?}");
        assert!(e.is_empty());
    }

    #[test]
    fn reacquisition_while_held_is_flagged() {
        let (d, _) = setup(
            "fn f(&self) {\n    // dust-lint: lock(mutate)\n    let _a = self.m.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(mutate)\n    let _b = self.m.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate"],
        );
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("self-deadlock"));
    }

    #[test]
    fn guard_scope_ends_with_its_block() {
        let (d, e) = setup(
            "fn f(&self) {\n    {\n        // dust-lint: lock(current)\n        let _g = self.current.read().unwrap_or_else(PoisonError::into_inner);\n    }\n    // dust-lint: lock(mutate)\n    let _h = self.mutate.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &["mutate", "current"],
        );
        assert!(d.is_empty(), "{d:?}");
        assert!(e.is_empty());
    }

    #[test]
    fn cycles_across_functions_are_caught() {
        let (d1, e1) = setup(
            "fn a(&self) {\n    // dust-lint: lock(x)\n    let _g = self.x.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(y)\n    let _h = self.y.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &[],
        );
        let (d2, e2) = setup(
            "fn b(&self) {\n    // dust-lint: lock(y)\n    let _g = self.y.lock().unwrap_or_else(PoisonError::into_inner);\n    // dust-lint: lock(x)\n    let _h = self.x.lock().unwrap_or_else(PoisonError::into_inner);\n}\n",
            &[],
        );
        assert!(d1.is_empty() && d2.is_empty());
        let edges: Vec<Edge> = e1.into_iter().chain(e2).collect();
        let cycles = check_cycles(&edges);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].message.contains("cycle"));
    }

    #[test]
    fn multiline_chain_annotated_at_statement_start() {
        let (d, _) = setup(
            "fn f(&self) {\n    // dust-lint: lock(current)\n    let snap = self\n        .current\n        .read()\n        .unwrap_or_else(PoisonError::into_inner)\n        .clone();\n}\n",
            &["current"],
        );
        assert!(d.is_empty(), "{d:?}");
    }
}
