//! Rule `delta-float-subtraction` — integer deltas only on mutation
//! paths.
//!
//! Origin: PR 5's documented no-float-subtraction rule. Incremental
//! `add_table`/`remove_table` must leave the session **bit-identical** to
//! a fresh rebuild. Integer document-frequency deltas are exact inverses;
//! float subtraction is not (`(a + b) - b != a` in general), so anything
//! float-valued and lake-global must be *recomputed*, never adjusted by
//! subtraction. This rule guards the delta modules: inside their
//! mutation functions, a binary `-`/`-=` that looks float-typed is
//! flagged.
//!
//! "Looks float-typed" is a heuristic, not a type check (this linter is
//! a token scanner by design): the statement line must mention a float
//! (an `f32`/`f64` token, a float literal, or one of the module's
//! float-valued vocabulary words like `idf`/`weight`/`norm`). Integer
//! subtraction (`df - 1`, `self.live -= 1`) passes untouched. A justified
//! exception takes a `// dust-lint: allow(delta-float-subtraction)`
//! pragma.

use crate::diag::{Diagnostic, Rule};
use crate::rules::scan_scopes;
use crate::source::{line_has_word, SourceFile};
use std::collections::BTreeSet;

/// The delta/mutation modules (where PR 5's rule applies).
const SCOPE_FILES: &[&str] = &[
    "crates/core/src/session.rs",
    "crates/embed/src/tokenize.rs",
    "crates/embed/src/store.rs",
    "crates/search/src/lib.rs",
    "crates/search/src/index.rs",
    "crates/search/src/starmie.rs",
    "crates/search/src/d3l.rs",
];

/// Mutation-path functions within those modules.
const DELTA_FNS: &[&str] = &[
    "add_table",
    "remove_table",
    "add_document",
    "remove_document",
    "insert",
    "remove",
    "push",
    "remove_row",
    "compact",
];

/// Identifiers that are float-valued throughout these modules.
const FLOAT_VOCAB: &[&str] = &[
    "idf",
    "tfidf",
    "weight",
    "score",
    "dist",
    "norm",
    "sim",
    "mean",
    "embedding",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !SCOPE_FILES.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    let (spans, _) = scan_scopes(file);
    let mut lines = BTreeSet::new();
    for span in spans
        .iter()
        .filter(|s| DELTA_FNS.contains(&s.name.as_str()))
    {
        for line in span.body_start..=span.end.min(file.masked.len()) {
            let ml = &file.masked[line - 1];
            if has_binary_minus(ml) && looks_float(ml) {
                lines.insert(line);
            }
        }
    }
    lines
        .into_iter()
        .map(|line| {
            Diagnostic::new(
                Rule::DeltaFloatSubtraction,
                &file.rel,
                line,
                "float subtraction on a delta path: recompute the value instead — only \
                 exact integer deltas keep mutation bit-identical to a rebuild (PR 5 rule)",
            )
        })
        .collect()
}

/// Any `-` used as a binary (or compound-assign) operator?
fn has_binary_minus(line: &str) -> bool {
    let bytes = line.as_bytes();
    for (i, &b) in bytes.iter().enumerate() {
        if b != b'-' {
            continue;
        }
        // `->` return arrows are not subtraction.
        if bytes.get(i + 1) == Some(&b'>') {
            continue;
        }
        // Binary iff something value-like ends right before it.
        let prev = bytes[..i].iter().rev().find(|b| !b.is_ascii_whitespace());
        match prev {
            Some(&p) if p == b')' || p == b']' || p == b'_' || p.is_ascii_alphanumeric() => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Does the line mention anything float-typed?
fn looks_float(line: &str) -> bool {
    if line_has_word(line, "f32") || line_has_word(line, "f64") {
        return true;
    }
    // Float literal: digit '.' digit.
    let bytes = line.as_bytes();
    for i in 1..bytes.len().saturating_sub(1) {
        if bytes[i] == b'.' && bytes[i - 1].is_ascii_digit() && bytes[i + 1].is_ascii_digit() {
            return true;
        }
    }
    let lower = line.to_ascii_lowercase();
    FLOAT_VOCAB.iter().any(|w| lower.contains(w))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn in_scope(body: &str) -> SourceFile {
        SourceFile::parse(
            "crates/embed/src/tokenize.rs",
            &format!("impl C {{\n    pub fn remove_document(&mut self) {{\n{body}    }}\n}}\n"),
        )
    }

    #[test]
    fn integer_delta_passes() {
        let f = in_scope("        self.documents -= 1;\n        let d = df - 1;\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn float_subtraction_is_flagged() {
        let f = in_scope("        let delta = new_idf - old_idf;\n");
        assert_eq!(check(&f).len(), 1);
        let f = in_scope("        total -= w as f64;\n");
        assert_eq!(check(&f).len(), 1);
        let f = in_scope("        let x = a - 0.5;\n");
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn only_delta_fns_are_scoped() {
        let f = SourceFile::parse(
            "crates/embed/src/tokenize.rs",
            "fn idf(&self) -> f64 {\n    let x = self.a_idf - self.b_idf;\n    x\n}\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn other_files_are_out_of_scope() {
        let f = SourceFile::parse(
            "crates/search/src/signals.rs",
            "fn remove(&mut self) { let u = ma - da; }\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn arrows_and_unary_minus_are_not_subtraction() {
        let f = in_scope("        let w: f64 = -1.0;\n        let g = |x: f64| -> f64 { x };\n");
        assert!(check(&f).is_empty());
    }
}
