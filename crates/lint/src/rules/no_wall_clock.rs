//! Rule `no-wall-clock` — time is an input only the bench crate may
//! read.
//!
//! Origin: PR 6's bit-for-bit recovery pins. Query results and snapshot
//! bytes must be pure functions of the lake; a wall-clock read anywhere
//! on those paths is either dead weight or a determinism bug waiting to
//! be interpolated into output. Measurement belongs to `crates/bench`.
//! The single sanctioned library helper is `crates/core/src/clock.rs`,
//! which exists so diagnostic stage timings (never part of ranked
//! results or encoded bytes) have one auditable chokepoint.

use crate::diag::{Diagnostic, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

const ALLOWED_PREFIX: &str = "crates/bench/";
const ALLOWED_FILES: &[&str] = &["crates/core/src/clock.rs"];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if file.rel.starts_with(ALLOWED_PREFIX) || ALLOWED_FILES.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    let mut lines = BTreeSet::new();
    lines.extend(file.find_pattern("Instant::now("));
    lines.extend(file.find_word("SystemTime"));
    lines
        .into_iter()
        .map(|line| {
            Diagnostic::new(
                Rule::NoWallClock,
                &file.rel,
                line,
                "wall-clock read outside crates/bench: results and snapshot bytes must be \
                 time-independent — route diagnostic timings through core::clock",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_core_but_not_bench() {
        let text = "let start = Instant::now();\n";
        assert_eq!(
            check(&SourceFile::parse("crates/core/src/pipeline.rs", text)).len(),
            1
        );
        assert!(check(&SourceFile::parse("crates/bench/src/bin/serve.rs", text)).is_empty());
        assert!(check(&SourceFile::parse("crates/core/src/clock.rs", text)).is_empty());
    }

    #[test]
    fn flags_system_time() {
        let f = SourceFile::parse("crates/table/src/lake.rs", "let t = SystemTime::now();\n");
        assert_eq!(check(&f).len(), 1);
    }
}
