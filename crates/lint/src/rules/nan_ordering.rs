//! Rule `nan-ordering` — forbid `partial_cmp`-based ranking outside the
//! one sanctioned module.
//!
//! Origin: the PR 3/4 bug class. `partial_cmp(..).unwrap_or(Equal)`
//! makes `NaN` compare `Equal` to *everything*, so a single poisoned
//! score leaves the whole order dependent on input order; `.unwrap()`
//! turns the same NaN into a panic on a serving path. Every ranking must
//! go through `dust_embed::order::{desc_nan_last, asc_nan_last}` (or
//! `total_cmp` where NaN is impossible by construction). The comparator
//! module itself is the only place allowed to talk about partial
//! comparison.

use crate::diag::{Diagnostic, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

/// The one module that implements the sanctioned comparators.
const ALLOWED_FILES: &[&str] = &["crates/embed/src/order.rs"];

const PATTERNS: &[&str] = &[
    ".partial_cmp(",
    "unwrap_or(Ordering::Equal)",
    "unwrap_or(cmp::Ordering::Equal)",
    "unwrap_or(std::cmp::Ordering::Equal)",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if ALLOWED_FILES.contains(&file.rel.as_str()) {
        return Vec::new();
    }
    let mut lines = BTreeSet::new();
    for pat in PATTERNS {
        lines.extend(file.find_pattern(pat));
    }
    lines
        .into_iter()
        .map(|line| {
            Diagnostic::new(
                Rule::NanOrdering,
                &file.rel,
                line,
                "float ranking via partial_cmp: use dust_embed::order::{desc,asc}_nan_last \
                 (or total_cmp) so one NaN score cannot corrupt or panic the order",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_call_sites_not_definitions() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn partial_cmp(&self, o: &Self) -> Option<Ordering> { Some(self.cmp(o)) }\nscores.sort_by(|a, b| a.partial_cmp(b).unwrap());\n",
        );
        let d = check(&f);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn flags_equal_fallback() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "v.sort_by(|a, b| cmp(a, b).unwrap_or(std::cmp::Ordering::Equal));\n",
        );
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn order_module_is_exempt() {
        let f = SourceFile::parse("crates/embed/src/order.rs", "a.partial_cmp(&b);\n");
        assert!(check(&f).is_empty());
    }

    #[test]
    fn one_diagnostic_per_line() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));\n",
        );
        assert_eq!(check(&f).len(), 1);
    }
}
