//! Rule `deterministic-encode` — no hash-ordered collections inside the
//! persistence layer.
//!
//! Origin: PR 6. Snapshot segments are CRC-sealed and recovery is pinned
//! **bit-for-bit** against fresh rebuilds, which only holds if encoders
//! iterate deterministically. `HashMap`/`HashSet` iteration order is
//! arbitrary, so inside `crates/core/src/persist/` the types themselves
//! are banned: encoders must walk the sorted export methods
//! (`entries()`, `to_sorted_vec()`, …) or `BTreeMap`. Decode-side uses
//! that never feed encoded bytes can be pragma-justified in place.

use crate::diag::{Diagnostic, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

const SCOPE_PREFIX: &str = "crates/core/src/persist/";
const BANNED: &[&str] = &["HashMap", "HashSet"];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    if !file.rel.starts_with(SCOPE_PREFIX) {
        return Vec::new();
    }
    let mut lines = BTreeSet::new();
    for word in BANNED {
        lines.extend(file.find_word(word));
    }
    lines
        .into_iter()
        .map(|line| {
            Diagnostic::new(
                Rule::DeterministicEncode,
                &file.rel,
                line,
                "hash-ordered collection in the persist layer: snapshot bytes must come \
                 from sorted exports (BTreeMap / sorted Vec), or justify a decode-only use",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_only_inside_persist() {
        let text = "use std::collections::HashMap;\n";
        let inside = SourceFile::parse("crates/core/src/persist/snapshot.rs", text);
        let outside = SourceFile::parse("crates/core/src/session.rs", text);
        assert_eq!(check(&inside).len(), 1);
        assert!(check(&outside).is_empty());
    }

    #[test]
    fn doc_comment_mentions_are_fine() {
        let f = SourceFile::parse(
            "crates/core/src/persist/codec.rs",
            "//! Unlike a HashMap walk, entries() is sorted.\nlet m = BTreeMap::new();\n",
        );
        assert!(check(&f).is_empty());
    }
}
