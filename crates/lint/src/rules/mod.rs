//! The seven invariant rules, plus the lexical scope scanner two of them
//! share (function spans and brace depths, derived from masked text).

pub mod delta_float_sub;
pub mod deterministic_encode;
pub mod lock_hygiene;
pub mod lock_order;
pub mod nan_ordering;
pub mod no_wall_clock;
pub mod unsafe_ledger;

use crate::source::SourceFile;

/// One `fn` item's lexical extent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnSpan {
    pub name: String,
    /// Line of the `fn` keyword (1-based).
    pub start: usize,
    /// Line of the body's opening `{`.
    pub body_start: usize,
    /// Line of the body's closing `}`.
    pub end: usize,
    /// Brace depth *inside* the body.
    pub body_depth: usize,
}

impl FnSpan {
    pub fn contains(&self, line: usize) -> bool {
        line >= self.body_start && line <= self.end
    }
}

/// Scan a file for function spans and per-line brace depth (depth at the
/// start of each line). Closures and inner blocks stay attributed to the
/// enclosing `fn` — exactly the conservative attribution the lock-order
/// rule wants. Bodyless trait-method declarations (`fn f();`) are
/// cancelled by their `;` and produce no span.
pub fn scan_scopes(file: &SourceFile) -> (Vec<FnSpan>, Vec<usize>) {
    let mut spans: Vec<FnSpan> = Vec::new();
    let mut open: Vec<FnSpan> = Vec::new();
    let mut pending: Option<(String, usize)> = None;
    let mut depth = 0usize;
    let mut line_depth = Vec::with_capacity(file.masked.len());
    for (idx, ml) in file.masked.iter().enumerate() {
        let line = idx + 1;
        line_depth.push(depth);
        let bytes = ml.as_bytes();
        let mut i = 0usize;
        while i < bytes.len() {
            let b = bytes[i];
            match b {
                b'{' => {
                    depth += 1;
                    if let Some((name, start)) = pending.take() {
                        open.push(FnSpan {
                            name,
                            start,
                            body_start: line,
                            end: line,
                            body_depth: depth,
                        });
                    }
                    i += 1;
                }
                b'}' => {
                    while let Some(f) = open.last() {
                        if f.body_depth == depth {
                            let mut f = open.pop().expect("non-empty");
                            f.end = line;
                            spans.push(f);
                        } else {
                            break;
                        }
                    }
                    depth = depth.saturating_sub(1);
                    i += 1;
                }
                b';' => {
                    // `fn f(...);` — declaration without a body.
                    pending = None;
                    i += 1;
                }
                b'f' if is_word_at(bytes, i, b"fn") => {
                    i += 2;
                    while i < bytes.len() && bytes[i].is_ascii_whitespace() {
                        i += 1;
                    }
                    let name_start = i;
                    while i < bytes.len() && (bytes[i] == b'_' || bytes[i].is_ascii_alphanumeric())
                    {
                        i += 1;
                    }
                    if i > name_start {
                        pending = Some((ml[name_start..i].to_string(), line));
                    }
                }
                _ => i += 1,
            }
        }
    }
    // Unterminated spans (truncated file): close at EOF.
    for mut f in open {
        f.end = file.masked.len();
        spans.push(f);
    }
    spans.sort_by_key(|f| f.start);
    (spans, line_depth)
}

fn is_word_at(bytes: &[u8], i: usize, word: &[u8]) -> bool {
    if i + word.len() > bytes.len() || &bytes[i..i + word.len()] != word {
        return false;
    }
    let before_ok = i == 0 || !is_ident(bytes[i - 1]);
    let after = i + word.len();
    let after_ok = after >= bytes.len() || !is_ident(bytes[after]);
    before_ok && after_ok
}

fn is_ident(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphanumeric()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_cover_bodies_and_skip_declarations() {
        let f = SourceFile::parse(
            "t.rs",
            "trait T {\n    fn decl(&self);\n}\nimpl S {\n    fn add_table(&mut self) {\n        let x = 1;\n    }\n}\n",
        );
        let (spans, depths) = scan_scopes(&f);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "add_table");
        assert_eq!(spans[0].body_start, 5);
        assert_eq!(spans[0].end, 7);
        assert!(spans[0].contains(6));
        assert_eq!(depths[0], 0);
        assert_eq!(depths[5], 2); // inside add_table's body
    }

    #[test]
    fn closures_belong_to_the_enclosing_fn() {
        let f = SourceFile::parse(
            "t.rs",
            "fn outer() {\n    jobs.for_each(|i| {\n        work(i);\n    });\n}\n",
        );
        let (spans, _) = scan_scopes(&f);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "outer");
        assert!(spans[0].contains(3));
    }
}
