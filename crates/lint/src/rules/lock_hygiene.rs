//! Rule `lock-hygiene` — poison-recovering locks only.
//!
//! Origin: PR 7. A panic while holding a `Mutex`/`RwLock` poisons it;
//! `.lock().unwrap()` then converts every *later* access into a panic,
//! turning one bad request into a dead server. Everywhere in this
//! workspace the guarded value is a fully-formed value (never
//! half-written), so the sanctioned form recovers:
//!
//! ```text
//! lock.lock().unwrap_or_else(PoisonError::into_inner)
//! ```
//!
//! The rule has no exempt files — tests included, since a poisoned lock
//! in a test helper hides the very failure the test was written to see.

use crate::diag::{Diagnostic, Rule};
use crate::source::SourceFile;
use std::collections::BTreeSet;

const PATTERNS: &[&str] = &[
    ".lock().unwrap()",
    ".lock().expect(",
    ".read().unwrap()",
    ".read().expect(",
    ".write().unwrap()",
    ".write().expect(",
];

pub fn check(file: &SourceFile) -> Vec<Diagnostic> {
    let mut lines = BTreeSet::new();
    for pat in PATTERNS {
        lines.extend(file.find_pattern(pat));
    }
    lines
        .into_iter()
        .map(|line| {
            Diagnostic::new(
                Rule::LockHygiene,
                &file.rel,
                line,
                "poison-propagating lock: use .unwrap_or_else(PoisonError::into_inner) — \
                 one panicked holder must not turn every later access into a panic",
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_unwrap_and_expect() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "let a = m.lock().unwrap();\nlet b = r.read().expect(\"poisoned\");\n",
        );
        assert_eq!(check(&f).len(), 2);
    }

    #[test]
    fn recovering_form_passes() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "let a = m.lock().unwrap_or_else(PoisonError::into_inner);\nlet b = m.lock().unwrap_or_else(|e| e.into_inner());\n",
        );
        assert!(check(&f).is_empty());
    }

    #[test]
    fn multiline_chain_is_still_caught() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "let a = m\n    .write()\n    .unwrap();\n",
        );
        assert_eq!(check(&f).len(), 1);
    }

    #[test]
    fn stdin_lock_lines_is_not_a_mutex() {
        let f = SourceFile::parse("crates/x/src/lib.rs", "let l = stdin.lock().lines();\n");
        assert!(check(&f).is_empty());
    }
}
