//! Linter configuration, read from `lint/dust_lint.toml` at the
//! workspace root.
//!
//! Today the only knob is the declared lock-acquisition order; rule
//! scopes are deliberately code, not config — they encode this
//! workspace's layout and should change via a reviewed diff of the rule,
//! not a config tweak.

use crate::toml;
use std::fs;
use std::path::Path;

/// Where the config file lives, relative to the workspace root.
pub const CONFIG_PATH: &str = "lint/dust_lint.toml";

#[derive(Debug, Default, Clone)]
pub struct Config {
    /// Lock names, outermost first. An annotated acquisition may only
    /// nest locks in strictly increasing rank order. Empty list = no
    /// declared order (the lock-order rule then only checks annotations
    /// and cross-function cycles).
    pub lock_order: Vec<String>,
}

impl Config {
    /// Rank of a lock name in the declared order.
    pub fn rank(&self, name: &str) -> Option<usize> {
        self.lock_order.iter().position(|n| n == name)
    }
}

/// Load the config; a missing file is an empty config, a malformed file
/// is an error (the config is checked in — failing loudly beats silently
/// linting with the wrong rules).
pub fn load(root: &Path) -> Result<Config, String> {
    let path = root.join(CONFIG_PATH);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Config::default()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let doc = toml::parse(&text).map_err(|e| format!("{CONFIG_PATH}: {e}"))?;
    let lock_order = match doc.root.get("lock_order") {
        Some(toml::Value::Array(names)) => names.clone(),
        Some(toml::Value::Str(_)) => {
            return Err(format!("{CONFIG_PATH}: lock_order must be an array"))
        }
        None => Vec::new(),
    };
    Ok(Config { lock_order })
}
