//! A minimal TOML subset, hand-rolled (the workspace builds offline; the
//! linter takes no dependencies).
//!
//! Supported — which is exactly what `lint/*.toml` use:
//!
//! * `#` comments and blank lines,
//! * `key = "string"` with `\\`, `\"`, `\n`, `\t` escapes,
//! * `key = ["a", "b", ...]` string arrays, single- or multi-line,
//! * `[[name]]` array-of-tables headers.
//!
//! Anything else is a hard parse error: the lint config is checked in, so
//! failing loudly beats guessing.

/// A parsed value: string or array of strings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    Str(String),
    Array(Vec<String>),
}

impl Value {
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Array(_) => None,
        }
    }
}

/// An ordered list of `key = value` pairs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Table {
    pub entries: Vec<(String, Value)>,
}

impl Table {
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    pub fn get_str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Value::as_str)
    }
}

/// A parsed document: root-level pairs plus `[[name]]` tables in order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Doc {
    pub root: Table,
    pub tables: Vec<(String, Table)>,
}

impl Doc {
    /// All `[[name]]` tables with the given name.
    pub fn tables_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Table> {
        self.tables
            .iter()
            .filter(move |(n, _)| n == name)
            .map(|(_, t)| t)
    }
}

/// Parse a document; errors carry a 1-based line number.
pub fn parse(text: &str) -> Result<Doc, String> {
    let mut doc = Doc::default();
    let mut current: Option<Table> = None;
    let mut current_name = String::new();
    let lines: Vec<&str> = text.lines().collect();
    let mut i = 0usize;
    while i < lines.len() {
        let line = lines[i].trim();
        i += 1;
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(name) = line.strip_prefix("[[").and_then(|r| r.strip_suffix("]]")) {
            if let Some(t) = current.take() {
                doc.tables.push((current_name.clone(), t));
            }
            current_name = name.trim().to_string();
            current = Some(Table::default());
            continue;
        }
        let (key, rest) = line
            .split_once('=')
            .ok_or_else(|| format!("line {i}: expected `key = value`, got `{line}`"))?;
        let key = key.trim().to_string();
        let mut rest = strip_comment(rest.trim()).to_string();
        // Multi-line array: keep consuming lines until brackets balance.
        if rest.starts_with('[') {
            while !array_closed(&rest) {
                if i >= lines.len() {
                    return Err(format!("line {i}: unterminated array for `{key}`"));
                }
                rest.push(' ');
                rest.push_str(strip_comment(lines[i].trim()));
                i += 1;
            }
        }
        let value = parse_value(&rest).map_err(|e| format!("line {i}: {e}"))?;
        match &mut current {
            Some(t) => t.entries.push((key, value)),
            None => doc.root.entries.push((key, value)),
        }
    }
    if let Some(t) = current.take() {
        doc.tables.push((current_name, t));
    }
    Ok(doc)
}

/// Drop a trailing `#` comment (respecting quoted strings).
fn strip_comment(s: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return s[..i].trim_end(),
            _ => {}
        }
    }
    s
}

/// Does this (possibly accumulated) array line close its bracket outside
/// of any string?
fn array_closed(s: &str) -> bool {
    let mut in_str = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            ']' if !in_str => return true,
            '#' if !in_str => return false, // trailing comment
            _ => {}
        }
    }
    false
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .rfind(']')
            .map(|end| &body[..end])
            .ok_or("unterminated array")?;
        let mut items = Vec::new();
        let mut rest = body.trim();
        while !rest.is_empty() {
            if rest.starts_with(',') {
                rest = rest[1..].trim_start();
                continue;
            }
            if rest.starts_with('#') {
                break;
            }
            let (item, len) = parse_string(rest)?;
            items.push(item);
            rest = rest[len..].trim_start();
        }
        return Ok(Value::Array(items));
    }
    let (string, len) = parse_string(s)?;
    let tail = s[len..].trim();
    if !tail.is_empty() && !tail.starts_with('#') {
        return Err(format!("trailing content after string: `{tail}`"));
    }
    Ok(Value::Str(string))
}

/// Parse one quoted string at the start of `s`; returns (unescaped, bytes
/// consumed including quotes).
fn parse_string(s: &str) -> Result<(String, usize), String> {
    let mut chars = s.char_indices();
    match chars.next() {
        Some((_, '"')) => {}
        _ => return Err(format!("expected string, got `{s}`")),
    }
    let mut out = String::new();
    let mut escaped = false;
    for (i, c) in chars {
        if escaped {
            out.push(match c {
                'n' => '\n',
                't' => '\t',
                other => other,
            });
            escaped = false;
            continue;
        }
        match c {
            '\\' => escaped = true,
            '"' => return Ok((out, i + c.len_utf8())),
            other => out.push(other),
        }
    }
    Err("unterminated string".to_string())
}

/// Escape a string for writing back into a TOML file.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            other => out.push(other),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_root_and_tables() {
        let doc = parse(
            "# comment\nlock_order = [\"a\", \"b\"]\n\n[[entry]]\nrule = \"nan-ordering\"\nfile = \"crates/x.rs\"\n\n[[entry]]\nrule = \"lock-hygiene\"\n",
        )
        .unwrap();
        assert_eq!(
            doc.root.get("lock_order"),
            Some(&Value::Array(vec!["a".into(), "b".into()]))
        );
        let entries: Vec<_> = doc.tables_named("entry").collect();
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].get_str("rule"), Some("nan-ordering"));
    }

    #[test]
    fn multiline_arrays() {
        let doc = parse("order = [\n  \"x\",\n  \"y\",\n]\n").unwrap();
        assert_eq!(
            doc.root.get("order"),
            Some(&Value::Array(vec!["x".into(), "y".into()]))
        );
    }

    #[test]
    fn multiline_arrays_with_per_element_comments() {
        let doc =
            parse("order = [\n  \"x\", # outermost (held across calls)\n  \"y#z\", # leaf\n]\n")
                .unwrap();
        assert_eq!(
            doc.root.get("order"),
            Some(&Value::Array(vec!["x".into(), "y#z".into()]))
        );
    }

    #[test]
    fn escapes_round_trip() {
        let original = "a \"quoted\" \\ backslash";
        let text = format!("snippet = \"{}\"\n", escape(original));
        let doc = parse(&text).unwrap();
        assert_eq!(doc.root.get_str("snippet"), Some(original));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("not a kv line\n").is_err());
        assert!(parse("x = unquoted\n").is_err());
    }
}
