//! The driver: walk the workspace, run every rule on every file, apply
//! pragmas and the baseline, and fold in the cross-file checks (stale
//! ledger entries, lock-order cycles).
//!
//! The walk is rooted at the workspace root and covers `crates/`, the
//! root package's `src/`, `tests/`, `examples/`, and `benches/`. It
//! skips build output (`target/`), vendored stand-ins (`vendor/`),
//! hidden directories, and any directory named `fixtures` — fixture
//! trees contain violations *on purpose* and are linted by pointing
//! `run` at the fixture root instead.

use crate::baseline::{self, Baseline, BASELINE_PATH};
use crate::config::{self, Config};
use crate::diag::Diagnostic;
use crate::ledger::{self, Ledger};
use crate::pragma;
use crate::rules::{
    delta_float_sub, deterministic_encode, lock_hygiene, lock_order, nan_ordering, no_wall_clock,
    unsafe_ledger,
};
use crate::source::SourceFile;
use std::fs;
use std::path::{Path, PathBuf};

/// Directories under the root that may contain lintable Rust sources.
const WALK_ROOTS: &[&str] = &["crates", "src", "tests", "examples", "benches"];

/// Directory names never descended into.
const SKIP_DIRS: &[&str] = &["target", "vendor", "fixtures"];

/// Outcome of one lint run.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed violations, sorted by (file, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    pub files_checked: usize,
    pub suppressed_by_pragma: usize,
    pub suppressed_by_baseline: usize,
}

impl Report {
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// `(rule-id, hits)` pairs for every rule with at least one hit.
    pub fn per_rule(&self) -> Vec<(&'static str, usize)> {
        let mut counts: Vec<(&'static str, usize)> = Vec::new();
        for d in &self.diagnostics {
            match counts.iter_mut().find(|(id, _)| *id == d.rule.id()) {
                Some((_, n)) => *n += 1,
                None => counts.push((d.rule.id(), 1)),
            }
        }
        counts
    }
}

/// Everything one walk of the tree produced, before baseline handling.
struct Scan {
    /// Rule violations that survived pragmas (includes cross-file,
    /// line-0 diagnostics: stale ledger entries).
    check_diags: Vec<Diagnostic>,
    /// Malformed-pragma diagnostics — never suppressible.
    meta_diags: Vec<Diagnostic>,
    files: Vec<SourceFile>,
    suppressed_by_pragma: usize,
}

fn scan(root: &Path) -> Result<Scan, String> {
    let cfg: Config = config::load(root)?;
    let ledg: Ledger = ledger::load(root)?;

    let mut paths: Vec<PathBuf> = Vec::new();
    for top in WALK_ROOTS {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut paths)?;
        }
    }
    paths.sort();

    let mut files = Vec::with_capacity(paths.len());
    for path in &paths {
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path
            .strip_prefix(root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace('\\', "/");
        files.push(SourceFile::parse(&rel, &text));
    }

    let mut check_diags = Vec::new();
    let mut meta_diags = Vec::new();
    let mut suppressed_by_pragma = 0usize;
    let mut ledger_used: Vec<usize> = Vec::new();
    let mut edges: Vec<lock_order::Edge> = Vec::new();

    // Pre-pass: pragmas for every file, plus the workspace-wide map of
    // guard-returning helpers. A guard handed out by a helper in one
    // file is held by callers in *other* files, so lock-order needs the
    // full map before it can check any single file.
    let mut pragmas_per_file = Vec::with_capacity(files.len());
    let mut guard_fns: Vec<(String, String)> = Vec::new();
    for file in &files {
        let (pragmas, pragma_diags) = pragma::collect(file);
        meta_diags.extend(pragma_diags);
        for pair in lock_order::guard_returning_fns(file, &pragmas) {
            if !guard_fns.iter().any(|(name, _)| *name == pair.0) {
                guard_fns.push(pair);
            }
        }
        pragmas_per_file.push(pragmas);
    }

    for (file, pragmas) in files.iter().zip(&pragmas_per_file) {
        let mut diags = Vec::new();
        diags.extend(nan_ordering::check(file));
        diags.extend(lock_hygiene::check(file));
        diags.extend(deterministic_encode::check(file));
        diags.extend(no_wall_clock::check(file));
        diags.extend(delta_float_sub::check(file));
        let (unsafe_diags, used) = unsafe_ledger::check(file, &ledg);
        diags.extend(unsafe_diags);
        ledger_used.extend(used);
        let (lock_diags, file_edges) = lock_order::check(file, pragmas, &cfg, &guard_fns);
        diags.extend(lock_diags);
        edges.extend(file_edges);

        for d in diags {
            if pragmas.allows(d.line, d.rule) {
                suppressed_by_pragma += 1;
            } else {
                check_diags.push(d);
            }
        }
    }

    check_diags.extend(unsafe_ledger::stale_entries(&ledg, &ledger_used));
    check_diags.extend(lock_order::check_cycles(&edges));

    Ok(Scan {
        check_diags,
        meta_diags,
        files,
        suppressed_by_pragma,
    })
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name.starts_with('.') || SKIP_DIRS.contains(&name.as_ref()) {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Text of `file:line`, for baseline snippet matching (empty for
/// file-level diagnostics and anything out of range).
fn line_text(files: &[SourceFile]) -> impl Fn(&str, usize) -> String + '_ {
    move |file: &str, line: usize| {
        files
            .iter()
            .find(|f| f.rel == file)
            .and_then(|f| line.checked_sub(1).and_then(|i| f.raw.get(i)))
            .cloned()
            .unwrap_or_default()
    }
}

/// Lint the workspace rooted at `root`.
pub fn run(root: &Path) -> Result<Report, String> {
    let scan = scan(root)?;
    let bl: Baseline = baseline::load(root)?;
    let files_checked = scan.files.len();

    // Only line-anchored rule violations are baselinable; file-level
    // diagnostics (stale entries) and meta diagnostics must be fixed.
    let (baselinable, file_level): (Vec<_>, Vec<_>) =
        scan.check_diags.into_iter().partition(|d| d.line > 0);
    let (mut kept, suppressed_by_baseline) = bl.apply(baselinable, line_text(&scan.files));
    kept.extend(file_level);
    kept.extend(scan.meta_diags);
    kept.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.rule.id()))
    });

    Ok(Report {
        diagnostics: kept,
        files_checked,
        suppressed_by_pragma: scan.suppressed_by_pragma,
        suppressed_by_baseline,
    })
}

/// Rewrite `lint/baseline.toml` to grandfather every current violation.
/// Returns the number of entries written.
pub fn update_baseline(root: &Path) -> Result<usize, String> {
    let scan = scan(root)?;
    let mut baselinable: Vec<Diagnostic> = scan
        .check_diags
        .into_iter()
        .filter(|d| d.line > 0)
        .collect();
    baselinable.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule.id()).cmp(&(b.file.as_str(), b.line, b.rule.id()))
    });
    let text = baseline::render(&baselinable, line_text(&scan.files));
    let path = root.join(BASELINE_PATH);
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent).map_err(|e| format!("{}: {e}", parent.display()))?;
    }
    fs::write(&path, text).map_err(|e| format!("{}: {e}", path.display()))?;
    Ok(baselinable.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Rule;

    fn mini_root(files: &[(&str, &str)]) -> PathBuf {
        // Deterministic per-test-name temp dirs; no wall clock, no RNG.
        let name = files
            .first()
            .map(|(p, _)| p.replace('/', "_"))
            .unwrap_or_default();
        let root = std::env::temp_dir().join(format!("dust-lint-engine-{name}"));
        let _ = fs::remove_dir_all(&root);
        for (rel, text) in files {
            let path = root.join(rel);
            fs::create_dir_all(path.parent().unwrap()).unwrap();
            fs::write(path, text).unwrap();
        }
        root
    }

    #[test]
    fn clean_tree_reports_clean() {
        let root = mini_root(&[(
            "crates/x/src/lib.rs",
            "pub fn id(x: u32) -> u32 {\n    x\n}\n",
        )]);
        let report = run(&root).unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.files_checked, 1);
    }

    #[test]
    fn violation_pragma_and_baseline_flow() {
        let root = mini_root(&[(
            "crates/y/src/lib.rs",
            "pub fn f(a: f64, b: f64) {\n    let _ = a.partial_cmp(&b);\n}\n",
        )]);
        let report = run(&root).unwrap();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, Rule::NanOrdering);

        // Grandfather it, then the tree is clean-with-suppression.
        let n = update_baseline(&root).unwrap();
        assert_eq!(n, 1);
        let report = run(&root).unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.suppressed_by_baseline, 1);

        // Fix the violation: the baseline entry is now stale.
        fs::write(
            root.join("crates/y/src/lib.rs"),
            "pub fn f(a: f64, b: f64) {\n    let _ = a.total_cmp(&b);\n}\n",
        )
        .unwrap();
        let report = run(&root).unwrap();
        assert_eq!(report.diagnostics.len(), 1);
        assert_eq!(report.diagnostics[0].rule, Rule::Baseline);
    }

    #[test]
    fn fixtures_dirs_are_skipped() {
        let root = mini_root(&[
            (
                "crates/z/tests/fixtures/bad.rs",
                "fn f(a: f64, b: f64) { let _ = a.partial_cmp(&b); }\n",
            ),
            ("crates/z/src/lib.rs", "pub fn ok() {}\n"),
        ]);
        let report = run(&root).unwrap();
        assert!(report.is_clean(), "{:?}", report.diagnostics);
        assert_eq!(report.files_checked, 1);
    }

    #[test]
    fn per_rule_counts_hits() {
        let root = mini_root(&[(
            "crates/w/src/lib.rs",
            "fn f(a: f64, b: f64) {\n    let _ = a.partial_cmp(&b);\n    let _ = b.partial_cmp(&a);\n    let t = std::time::SystemTime::now();\n}\n",
        )]);
        let report = run(&root).unwrap();
        let per_rule = report.per_rule();
        assert!(per_rule.contains(&("nan-ordering", 2)), "{per_rule:?}");
        assert!(per_rule.contains(&("no-wall-clock", 1)), "{per_rule:?}");
    }
}
