//! Rule identities and the diagnostic they emit.

use std::fmt;

/// Every check the linter performs. The first seven are the project
/// invariants (each traceable to a bug class fixed in PRs 1–8 — see the
/// README's rule table); the last two are meta-checks keeping the escape
/// hatches themselves honest.
// The derived PartialOrd orders unit variants — no floats — so the
// workspace partial_cmp ban does not apply here.
#[allow(clippy::disallowed_methods)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `partial_cmp`-based ranking outside `crates/embed/src/order.rs`.
    NanOrdering,
    /// `.lock().unwrap()`-style poison propagation instead of the
    /// poison-recovering `unwrap_or_else(PoisonError::into_inner)` form.
    LockHygiene,
    /// `HashMap`/`HashSet` inside `crates/core/src/persist/` — snapshot
    /// bytes must come from sorted exports only.
    DeterministicEncode,
    /// `Instant::now`/`SystemTime` outside `crates/bench` (and the one
    /// sanctioned helper, `crates/core/src/clock.rs`).
    NoWallClock,
    /// Float subtraction inside a delta/mutation function — integer df
    /// deltas are the only sanctioned subtraction there.
    DeltaFloatSubtraction,
    /// `unsafe` without a `// SAFETY:` comment or a ledger entry.
    UnsafeLedger,
    /// Lock acquisition sites must be annotated and respect the declared
    /// acquisition order (`lock_order` in `lint/dust_lint.toml`).
    LockOrder,
    /// Malformed `dust-lint:` pragma (unknown rule, missing reason, …).
    Pragma,
    /// Stale `lint/baseline.toml` entry that no longer matches anything.
    Baseline,
}

impl Rule {
    /// The seven invariant checks a pragma may name in `allow(..)`.
    pub const CHECKS: [Rule; 7] = [
        Rule::NanOrdering,
        Rule::LockHygiene,
        Rule::DeterministicEncode,
        Rule::NoWallClock,
        Rule::DeltaFloatSubtraction,
        Rule::UnsafeLedger,
        Rule::LockOrder,
    ];

    /// Stable kebab-case id used in output, pragmas, and the baseline.
    pub fn id(self) -> &'static str {
        match self {
            Rule::NanOrdering => "nan-ordering",
            Rule::LockHygiene => "lock-hygiene",
            Rule::DeterministicEncode => "deterministic-encode",
            Rule::NoWallClock => "no-wall-clock",
            Rule::DeltaFloatSubtraction => "delta-float-subtraction",
            Rule::UnsafeLedger => "unsafe-ledger",
            Rule::LockOrder => "lock-order",
            Rule::Pragma => "pragma",
            Rule::Baseline => "baseline",
        }
    }

    /// Inverse of [`Rule::id`] over every rule (including the meta rules,
    /// so baseline files can round-trip any diagnostic).
    pub fn from_id(id: &str) -> Option<Rule> {
        let all = [
            Rule::NanOrdering,
            Rule::LockHygiene,
            Rule::DeterministicEncode,
            Rule::NoWallClock,
            Rule::DeltaFloatSubtraction,
            Rule::UnsafeLedger,
            Rule::LockOrder,
            Rule::Pragma,
            Rule::Baseline,
        ];
        all.into_iter().find(|r| r.id() == id)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.id())
    }
}

/// One violation: rule, location, and a message that tells the reader
/// what the sanctioned alternative is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    pub rule: Rule,
    /// Workspace-relative path with forward slashes (`crates/...`).
    pub file: String,
    /// 1-based; 0 for file-level diagnostics (stale ledger entries).
    pub line: usize,
    pub message: String,
}

impl Diagnostic {
    pub fn new(
        rule: Rule,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic {
            rule,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}:{} {}",
            self.rule.id(),
            self.file,
            self.line,
            self.message
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip() {
        for rule in Rule::CHECKS {
            assert_eq!(Rule::from_id(rule.id()), Some(rule));
        }
        assert_eq!(Rule::from_id("pragma"), Some(Rule::Pragma));
        assert_eq!(Rule::from_id("nonsense"), None);
    }

    #[test]
    fn display_is_grep_friendly() {
        let d = Diagnostic::new(
            Rule::NanOrdering,
            "crates/x/src/lib.rs",
            7,
            "use embed::order",
        );
        assert_eq!(
            d.to_string(),
            "nan-ordering crates/x/src/lib.rs:7 use embed::order"
        );
    }
}
