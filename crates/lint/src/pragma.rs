//! `dust-lint:` pragmas — the in-place escape hatch and the lock-site
//! annotation, both living in ordinary line comments.
//!
//! Two forms are recognised:
//!
//! * `// dust-lint: allow(<rule-id>) -- <reason>` — suppress that rule on
//!   this line (trailing comment) or on the next line (standalone
//!   comment). The reason is **mandatory**: an allow without a
//!   justification is itself a `pragma` violation, so the tree can never
//!   accumulate bare waivers.
//! * `// dust-lint: lock(<name>)` — names the lock acquired on this (or
//!   the following) line for the `lock-order` rule.
//!
//! Anything that starts with `dust-lint:` but parses as neither is a
//! `pragma` violation — a typo'd pragma that silently did nothing would
//! be worse than no pragma at all.

use crate::diag::{Diagnostic, Rule};
use crate::source::SourceFile;

/// All pragmas of one file, resolved to the lines they apply to.
#[derive(Debug, Default)]
pub struct Pragmas {
    /// `(line, rule)` pairs a diagnostic may be suppressed by.
    allows: Vec<(usize, Rule, String)>,
    /// `(line, lock-name)` annotations for the lock-order rule.
    locks: Vec<(usize, String)>,
}

impl Pragmas {
    /// Is `rule` allowed (with a reason) on `line`?
    pub fn allows(&self, line: usize, rule: Rule) -> bool {
        self.allows.iter().any(|(l, r, _)| *l == line && *r == rule)
    }

    /// The lock name annotated for `line`, searching the line itself and
    /// up to `above` lines immediately before it (a chain's annotation
    /// usually sits on the statement's first line).
    pub fn lock_name(&self, line: usize, above: usize) -> Option<&str> {
        let lo = line.saturating_sub(above);
        self.locks
            .iter()
            .filter(|(l, _)| *l >= lo && *l <= line)
            .map(|(_, name)| name.as_str())
            .next_back()
    }
}

/// Extract every pragma from a file's comments. Returns the resolved
/// pragmas plus diagnostics for malformed ones.
pub fn collect(file: &SourceFile) -> (Pragmas, Vec<Diagnostic>) {
    let mut pragmas = Pragmas::default();
    let mut diags = Vec::new();
    for (idx, comment) in file.comments.iter().enumerate() {
        let line = idx + 1;
        // A pragma comment *starts* with the marker (`// dust-lint: ...`);
        // doc comments merely mentioning `dust-lint:` carry a `/`/`!`
        // doc-marker or prose first and are never parsed as pragmas.
        let Some(body) = comment.trim_start().strip_prefix("dust-lint:") else {
            continue;
        };
        let body = body.trim();
        // A standalone comment line annotates the line below; a trailing
        // comment annotates its own line.
        let standalone = file
            .masked
            .get(idx)
            .map(|m| m.trim().is_empty())
            .unwrap_or(true);
        let target = if standalone { line + 1 } else { line };
        match parse_body(body) {
            Ok(Parsed::Allow(rule, reason)) => pragmas.allows.push((target, rule, reason)),
            Ok(Parsed::Lock(name)) => pragmas.locks.push((target, name)),
            Err(msg) => diags.push(Diagnostic::new(Rule::Pragma, &file.rel, line, msg)),
        }
    }
    (pragmas, diags)
}

enum Parsed {
    Allow(Rule, String),
    Lock(String),
}

fn parse_body(body: &str) -> Result<Parsed, String> {
    if let Some(rest) = body.strip_prefix("allow(") {
        let (id, rest) = rest
            .split_once(')')
            .ok_or("malformed pragma: missing `)` in `allow(<rule>)`")?;
        let rule = Rule::from_id(id.trim())
            .filter(|r| Rule::CHECKS.contains(r))
            .ok_or_else(|| format!("unknown rule `{}` in allow pragma", id.trim()))?;
        let reason = rest
            .trim()
            .strip_prefix("--")
            .map(str::trim)
            .unwrap_or_default();
        if reason.is_empty() {
            return Err(format!(
                "allow({}) needs a justification: `-- <reason>`",
                rule.id()
            ));
        }
        return Ok(Parsed::Allow(rule, reason.to_string()));
    }
    if let Some(rest) = body.strip_prefix("lock(") {
        let name = rest
            .split_once(')')
            .map(|(n, _)| n.trim())
            .filter(|n| !n.is_empty())
            .ok_or("malformed pragma: expected `lock(<name>)`")?;
        return Ok(Parsed::Lock(name.to_string()));
    }
    Err(format!(
        "unrecognised dust-lint pragma `{body}` (expected `allow(<rule>) -- <reason>` or `lock(<name>)`)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(text: &str) -> SourceFile {
        SourceFile::parse("t.rs", text)
    }

    #[test]
    fn trailing_allow_applies_to_its_own_line() {
        let f = file("x.partial_cmp(&y); // dust-lint: allow(nan-ordering) -- test fixture\n");
        let (p, d) = collect(&f);
        assert!(d.is_empty());
        assert!(p.allows(1, Rule::NanOrdering));
        assert!(!p.allows(2, Rule::NanOrdering));
    }

    #[test]
    fn standalone_allow_applies_to_next_line() {
        let f = file(
            "// dust-lint: allow(no-wall-clock) -- diagnostic only\nlet t = Instant::now();\n",
        );
        let (p, d) = collect(&f);
        assert!(d.is_empty());
        assert!(p.allows(2, Rule::NoWallClock));
        assert!(!p.allows(1, Rule::NoWallClock));
    }

    #[test]
    fn allow_without_reason_is_a_violation() {
        let f = file("x(); // dust-lint: allow(nan-ordering)\n");
        let (p, d) = collect(&f);
        assert!(!p.allows(1, Rule::NanOrdering));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, Rule::Pragma);
        assert!(d[0].message.contains("justification"));
    }

    #[test]
    fn unknown_rule_is_a_violation() {
        let (_, d) = collect(&file("// dust-lint: allow(made-up) -- because\n"));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unknown rule"));
    }

    #[test]
    fn meta_rules_cannot_be_allowed() {
        let (_, d) = collect(&file("// dust-lint: allow(pragma) -- sneaky\n"));
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn lock_annotation_resolves_nearby_lines() {
        let f = file("// dust-lint: lock(session-mutate)\nlet _g = self.mutate.lock();\n");
        let (p, d) = collect(&f);
        assert!(d.is_empty());
        assert_eq!(p.lock_name(2, 3), Some("session-mutate"));
        assert_eq!(p.lock_name(3, 0), None);
    }

    #[test]
    fn garbage_pragma_is_flagged() {
        let (_, d) = collect(&file("// dust-lint: allw(nan-ordering) -- oops\n"));
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("unrecognised"));
    }
}
