//! The unsafe ledger, `lint/unsafe_ledger.toml`.
//!
//! Every `unsafe` token in the workspace must be matched by one checked-in
//! ledger entry, so introducing (or moving) unsafe code is always an
//! explicit, reviewable diff to this file — never a silent side effect of
//! an otherwise plausible change. Entries are matched by file plus a
//! `contains` snippet of the unsafe line; a stale entry (matching no
//! remaining site) is itself a violation, keeping the ledger exact.

use crate::toml;
use std::fs;
use std::path::Path;

/// Where the ledger lives, relative to the workspace root.
pub const LEDGER_PATH: &str = "lint/unsafe_ledger.toml";

#[derive(Debug, Clone)]
pub struct LedgerEntry {
    pub file: String,
    /// Substring of the raw line holding the `unsafe` token.
    pub contains: String,
    /// Why this unsafe exists (documentation; not matched against code).
    pub reason: String,
}

#[derive(Debug, Default)]
pub struct Ledger {
    pub entries: Vec<LedgerEntry>,
}

/// Load the ledger; missing file = empty ledger (any unsafe then fails).
pub fn load(root: &Path) -> Result<Ledger, String> {
    let path = root.join(LEDGER_PATH);
    let text = match fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Ledger::default()),
        Err(e) => return Err(format!("{}: {e}", path.display())),
    };
    let doc = toml::parse(&text).map_err(|e| format!("{LEDGER_PATH}: {e}"))?;
    let mut entries = Vec::new();
    for t in doc.tables_named("unsafe") {
        entries.push(LedgerEntry {
            file: t
                .get_str("file")
                .ok_or_else(|| format!("{LEDGER_PATH}: entry missing file"))?
                .to_string(),
            contains: t
                .get_str("contains")
                .ok_or_else(|| format!("{LEDGER_PATH}: entry missing contains"))?
                .to_string(),
            reason: t.get_str("reason").unwrap_or_default().to_string(),
        });
    }
    Ok(Ledger { entries })
}
